"""repro — a full reproduction of *WARio: Efficient Code Generation for
Intermittent Computing* (Kortbeek et al., PLDI 2022).

The package contains every system the paper builds or depends on:

* :mod:`repro.frontend` — a mini-C front end;
* :mod:`repro.ir` — a typed SSA IR with a ``checkpoint`` intrinsic;
* :mod:`repro.analysis` — dominators, loops, alias analysis (three
  precision modes), whole-program points-to, and WAR detection (the PDG);
* :mod:`repro.transforms` — mem2reg, inlining, simplify-cfg, DCE, and
  single-block loop unrolling;
* :mod:`repro.core` — WARio itself: Loop Write Clusterer, Write
  Clusterer, Expander, the PDG Checkpoint Inserter with its greedy
  hitting set, and the ``iclang`` driver with the paper's software
  environments (Ratchet, R-PDG, WARio, ...);
* :mod:`repro.backend` — a Thumb-2-flavoured back end: instruction
  selection, linear-scan register allocation with dedicated spill slots,
  spill-WAR checkpoint inserters, pop conversion, and the Epilog
  Optimizer;
* :mod:`repro.emulator` — the intermittent-computing emulator: NVM
  memory, cycle model, double-buffered register checkpoints, power
  failures, interrupts, and WAR-violation verification;
* :mod:`repro.benchsuite` — the paper's six benchmarks with Python
  reference implementations;
* :mod:`repro.eval` — the harness regenerating every figure and table.

Quickstart::

    from repro import iclang, Machine

    program = iclang(C_SOURCE, env="wario")
    machine = Machine(program)
    stats = machine.run()
    print(stats.summary())
"""

from .core import ENVIRONMENTS, EnvironmentConfig, iclang
from .emulator import (
    ContinuousPower,
    FixedPeriodPower,
    Machine,
    TracePower,
    trace_a,
    trace_b,
)

__version__ = "1.0.0"

__all__ = [
    "iclang", "ENVIRONMENTS", "EnvironmentConfig",
    "Machine",
    "ContinuousPower", "FixedPeriodPower", "TracePower", "trace_a", "trace_b",
    "__version__",
]
