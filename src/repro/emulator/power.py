"""Power supply models (paper §5.1.4).

A supply is an iterator of *on-durations* in clock cycles: the device
runs for that many cycles, then the capacitor is empty and the device
browns out until the next period.  Three models:

* :class:`ContinuousPower` — never fails (execution-time measurements).
* :class:`FixedPeriodPower` — a fixed on-duration, repeated (the paper's
  50k/100k/1M/5M-cycle rows of Table 3).
* :class:`TracePower` — a seeded synthetic stand-in for the Mementos RF
  energy-harvesting voltage traces [47]: log-uniform bursty on-times.
  ``trace_a`` is the choppier of the two (short on-times dominate);
  ``trace_b`` has longer charge cycles.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional


class PowerSupply:
    """Base class: iterate on-durations (cycles)."""

    name = "abstract"

    def on_durations(self) -> Iterator[int]:
        raise NotImplementedError

    @property
    def is_continuous(self) -> bool:
        return False


class ContinuousPower(PowerSupply):
    name = "continuous"

    def on_durations(self) -> Iterator[int]:
        while True:
            yield 1 << 62

    @property
    def is_continuous(self) -> bool:
        return True


class FixedPeriodPower(PowerSupply):
    """A fixed power-on period, repeated until the program completes."""

    def __init__(self, cycles: int):
        if cycles <= 0:
            raise ValueError("power-on period must be positive")
        self.cycles = cycles
        self.name = f"fixed-{cycles}"

    def on_durations(self) -> Iterator[int]:
        while True:
            yield self.cycles


class TracePower(PowerSupply):
    """Synthetic energy-harvesting trace.

    On-durations are drawn log-uniformly from [min_cycles, max_cycles]
    with a deterministic seed, replicating the bursty mix of very short
    and long on-times seen in the Mementos RF traces.
    """

    def __init__(
        self,
        seed: int,
        min_cycles: int = 20_000,
        max_cycles: int = 2_000_000,
        name: str = "trace",
    ):
        self.seed = seed
        self.min_cycles = min_cycles
        self.max_cycles = max_cycles
        self.name = name

    def on_durations(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        lo, hi = math.log(self.min_cycles), math.log(self.max_cycles)
        while True:
            yield int(math.exp(rng.uniform(lo, hi)))

    def sample(self, count: int) -> List[int]:
        gen = self.on_durations()
        return [next(gen) for _ in range(count)]


class SuddenDropPower(PowerSupply):
    """A mostly-regular supply with occasional abrupt brown-outs.

    Models the paper's §6 observation about Just-In-Time checkpointing:
    "the incoming energy can be highly unpredictable ... the configured
    voltage level does not directly correlate to the amount of execution
    time left".  Every ``drop_every``-th period ends after only
    ``drop_cycles`` instead of ``base_cycles`` — faster than a
    comparator threshold calibrated for the regular periods can fire.
    """

    def __init__(self, base_cycles: int, drop_every: int = 4, drop_cycles: int = 2000):
        if drop_cycles >= base_cycles:
            raise ValueError("the drop must be shorter than the base period")
        if drop_every <= 0:
            raise ValueError("drop_every must be positive")
        self.base_cycles = base_cycles
        self.drop_every = drop_every
        self.drop_cycles = drop_cycles
        # Canonical key: every parameter is part of the name, so two
        # supplies with the same base/drop but different cadence can
        # never collide in result or cache keys, and
        # ``power_from_key(name)`` round-trips.
        self.name = f"sudden-drop-{base_cycles}-{drop_every}-{drop_cycles}"

    def on_durations(self) -> Iterator[int]:
        n = 0
        while True:
            n += 1
            yield self.drop_cycles if n % self.drop_every == 0 else self.base_cycles


class SchedulePower(PowerSupply):
    """Replay an explicit, finite failure schedule.

    ``durations`` is the sequence of power-on periods, in cycles, each of
    which ends in a power failure; after the schedule is exhausted the
    supply is continuous, so the program always runs to completion.  This
    is the deterministic building block of the fault-injection campaign
    (:mod:`repro.faultinject`): a schedule of ``k`` durations aims
    exactly ``k`` failures at chosen cumulative on-time offsets.

    Note that after each failure the boot + restore path consumes
    ``boot_cycles + restore_cycles`` out of the *next* period, so a
    second failure "δ cycles after the restore" is the two-point schedule
    ``(c, boot + restore + δ)``.
    """

    def __init__(self, durations):
        durations = tuple(int(d) for d in durations)
        if not durations:
            raise ValueError("a failure schedule needs at least one period")
        if any(d <= 0 for d in durations):
            raise ValueError("power-on periods must be positive")
        self.durations = durations
        self.name = "schedule-" + "-".join(str(d) for d in durations)

    def on_durations(self) -> Iterator[int]:
        yield from self.durations
        while True:
            yield 1 << 62


def trace_a() -> TracePower:
    """The choppier measured-trace stand-in (short charge cycles)."""
    return TracePower(seed=0xA11CE, min_cycles=30_000, max_cycles=1_500_000, name="trace-a")


def trace_b() -> TracePower:
    """The calmer measured-trace stand-in (long charge cycles)."""
    return TracePower(seed=0xB0B, min_cycles=200_000, max_cycles=8_000_000, name="trace-b")
