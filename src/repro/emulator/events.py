"""Execution event tracing for the fault-injection campaign engine.

A continuous-power *harvest* run records the cycle offset of every
consistency-critical instant of an execution — the places where §2/§4 of
the paper argue a power failure is dangerous:

* ``checkpoint`` — a checkpoint instruction committed (the cycle is the
  cumulative on-time *before* the commit's ``checkpoint_cycles`` are
  charged, so the commit occupies ``[cycle, cycle + checkpoint_cycles)``);
* ``restore`` — a post-failure checkpoint restoration completed (never
  present in a continuous-power trace; recorded during schedule replays);
* ``war-write`` — the first NVM store of an idempotent region (the
  moment the region stops being trivially re-executable);
* ``war-violation`` — the dynamic WAR checker flagged this store (only
  ever present for seeded-fault builds; the prime failure target);
* ``mask`` / ``unmask`` — ``cpsid`` / ``cpsie`` executed (the
  interrupt-masked epilogue window of the WARio frame-release protocol).

The trace is the input of :mod:`repro.faultinject.plan`, which aims
deterministic failure schedules at each recorded instant.

Tracing requires WAR checking (``war_check=True``): the fast
interpreter's unchecked store paths bypass the :meth:`Machine.write_mem`
hook, so an untraced-store trace would silently miss ``war-write``
events.  :class:`~repro.emulator.machine.Machine` enforces this.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

#: Event kinds, in the order the planner iterates them.
EVENT_KINDS = (
    "checkpoint",
    "restore",
    "war-write",
    "war-violation",
    "mask",
    "unmask",
)


class Event(NamedTuple):
    """One recorded instant of an execution."""

    kind: str
    cycle: int      #: cumulative on-time cycles before the instruction
    pc: int         #: instruction index (the emulator's program counter)
    detail: str = ""  #: checkpoint cause, store address, ...


class EventTrace:
    """Collects :class:`Event` values during one :class:`Machine` run.

    The machine calls the ``on_*`` hooks from both interpreter loops at
    points where ``stats.cycles`` is synchronised, so fast and reference
    runs of the same program produce identical traces (see the parity
    tests in ``tests/test_faultinject.py``).
    """

    def __init__(self) -> None:
        self.events: List[Event] = []
        #: armed until the first store of the current idempotent region
        self._war_armed = True

    # -- hooks (called by Machine) ---------------------------------------
    def record(self, kind: str, cycle: int, pc: int, detail: str = "") -> None:
        self.events.append(Event(kind, cycle, pc, detail))

    def on_checkpoint(self, cycle: int, pc: int, cause: str) -> None:
        self.record("checkpoint", cycle, pc, cause)
        self._war_armed = True

    def on_restore(self, cycle: int, pc: int) -> None:
        self.record("restore", cycle, pc)
        self._war_armed = True

    def on_store(self, cycle: int, pc: int, address: int) -> None:
        if self._war_armed:
            self._war_armed = False
            self.record("war-write", cycle, pc, f"0x{address:x}")

    def on_war_violation(self, cycle: int, pc: int, address: int) -> None:
        self.record("war-violation", cycle, pc, f"0x{address:x}")

    # -- queries ---------------------------------------------------------
    def by_kind(self) -> Dict[str, List[Event]]:
        grouped: Dict[str, List[Event]] = {}
        for event in self.events:
            grouped.setdefault(event.kind, []).append(event)
        return grouped

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def as_tuples(self) -> List[Tuple[str, int, int, str]]:
        """A picklable, cache-stable rendering of the trace."""
        return [tuple(e) for e in self.events]

    def checkpoint_gaps(self, end_cycle: int = None) -> List[int]:
        """Observed inter-checkpoint gaps, in cycles.

        Each gap runs from the previous region boundary (start of
        execution, a committed checkpoint, or a post-failure restore) to
        the next checkpoint commit; pass ``end_cycle`` (the run's final
        ``stats.cycles``) to also count the trailing partial region.  A
        ``restore`` resets the boundary without closing a gap — the
        segment it ends contains boot/restore charges, not region work."""
        gaps: List[int] = []
        prev = 0
        for event in self.events:
            if event.kind == "checkpoint":
                gaps.append(event.cycle - prev)
                prev = event.cycle
            elif event.kind == "restore":
                prev = event.cycle
        if end_cycle is not None:
            gaps.append(end_cycle - prev)
        return gaps

    def max_checkpoint_gap(self, end_cycle: int = None) -> int:
        """Largest observed inter-checkpoint gap (see
        :meth:`checkpoint_gaps`); 0 for an empty trace."""
        gaps = self.checkpoint_gaps(end_cycle)
        return max(gaps) if gaps else 0


__all__ = ["EVENT_KINDS", "Event", "EventTrace"]
