"""repro.emulator — the custom processor emulator (paper §5.1.1): NVM
memory model, cycle accounting with pipeline refills, double-buffered
register checkpoints, power-failure injection, interrupt stacking, and
WAR-violation absence verification."""

from .costs import DEFAULT_COSTS, CostModel
from .events import EVENT_KINDS, Event, EventTrace
from .machine import (
    EmulationError,
    EmulationLimit,
    Machine,
    NoForwardProgress,
)
from .power import (
    ContinuousPower,
    FixedPeriodPower,
    PowerSupply,
    SchedulePower,
    SuddenDropPower,
    TracePower,
    trace_a,
    trace_b,
)
from .stats import ExecutionStats
from .warcheck import Violation, WARChecker

__all__ = [
    "CostModel", "DEFAULT_COSTS",
    "Machine", "EmulationError", "EmulationLimit", "NoForwardProgress",
    "PowerSupply", "ContinuousPower", "FixedPeriodPower", "TracePower",
    "SchedulePower", "SuddenDropPower",
    "trace_a", "trace_b",
    "ExecutionStats",
    "EVENT_KINDS", "Event", "EventTrace",
    "WARChecker", "Violation",
]
