"""Cycle cost model: a three-stage-pipeline Cortex-M4 approximation.

The emulator mirrors the paper's §5.1.1: per-instruction cycle counts
with pipeline refills charged on taken branches, plus the costs of the
checkpoint runtime (double-buffered register save), checkpoint
restoration, and the boot path after a power failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CostModel:
    """Cycle costs per opcode plus runtime-event costs."""

    #: cycles added when a branch is taken (3-stage pipeline refill)
    pipeline_refill: int = 2
    #: register-only, double-buffered checkpoint: 16 words stored twice
    #: buffered plus the index flip and the call into the routine
    checkpoint_cycles: int = 50
    #: restoring the register file from the active checkpoint buffer
    restore_cycles: int = 40
    #: the boot path from power-on to checkpoint restoration
    boot_cycles: int = 1000
    #: interrupt entry/exit (hardware stacking) and the ISR body
    interrupt_entry_cycles: int = 12
    interrupt_exit_cycles: int = 12
    isr_cycles: int = 8

    base_costs: Dict[str, int] = field(
        default_factory=lambda: {
            "mov": 1, "adr": 2, "lea": 1,
            "add": 1, "sub": 1, "and": 1, "orr": 1, "eor": 1,
            "lsl": 1, "lsr": 1, "asr": 1,
            "mul": 1, "udiv": 8, "sdiv": 8,
            "sxtb": 1, "uxtb": 1, "sxth": 1, "uxth": 1,
            "cmp": 1, "cmov": 2,
            "ldr": 2, "ldrb": 2, "ldrh": 2,
            "str": 2, "strb": 2, "strh": 2,
            "b": 1, "bcc": 1, "bl": 2, "bx_lr": 1,
            "push": 1, "pop": 1,
            "addsp": 1, "subsp": 1,
            "cpsid": 1, "cpsie": 1,
            "nop": 1,
            "checkpoint": 0,  # charged as checkpoint_cycles
        }
    )

    def cost_of(self, instr) -> int:
        op = instr.opcode
        if op == "checkpoint":
            return self.checkpoint_cycles
        base = self.base_costs[op]
        if op in ("push", "pop"):
            return base + len(instr.regs)
        return base


DEFAULT_COSTS = CostModel()
