"""The intermittent-computing emulator (paper §5.1.1).

Executes an encoded :class:`~repro.backend.encoder.Program` on a model of
an ARM Cortex-M-class MCU with non-volatile main memory: globals and the
stack live in NVM (they survive power failures); the register file is
volatile and is saved only by the double-buffered checkpoint runtime.

The emulator optionally drives a :class:`~repro.emulator.power.PowerSupply`
(power failures clear the registers and charge the boot + restore path),
fires a periodic timer interrupt (hardware stacking through the WAR
checker), and verifies the absence of WAR violations on every access.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..backend.encoder import HALT_ADDRESS, Program, STACK_TOP
from .costs import DEFAULT_COSTS, CostModel
from .events import EventTrace
from .power import PowerSupply
from .stats import ExecutionStats
from .warcheck import WARChecker

M32 = 0xFFFFFFFF

_U32 = struct.Struct("<I").unpack_from
_P32 = struct.Struct("<I").pack_into
_U16 = struct.Struct("<H").unpack_from
_P16 = struct.Struct("<H").pack_into


class EmulationError(Exception):
    pass


class EmulationLimit(EmulationError):
    """Raised when the instruction budget is exhausted."""


class NoForwardProgress(EmulationError):
    """Raised when the power supply cannot sustain boot + restore."""


def _signed(v: int) -> int:
    v &= M32
    return v - (1 << 32) if v >= 1 << 31 else v


_COND = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: _signed(a) < _signed(b),
    "le": lambda a, b: _signed(a) <= _signed(b),
    "gt": lambda a, b: _signed(a) > _signed(b),
    "ge": lambda a, b: _signed(a) >= _signed(b),
    "lo": lambda a, b: a < b,
    "ls": lambda a, b: a <= b,
    "hi": lambda a, b: a > b,
    "hs": lambda a, b: a >= b,
}

_ALU = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "orr": lambda a, b: a | b,
    "eor": lambda a, b: a ^ b,
}


# ---------------------------------------------------------------------------
# Predecoded instruction stream (the emulator fast path)
#
# ``Machine.run`` dominates every evaluation: each emulated instruction
# used to pay for attribute walks (``instr.opcode``, ``instr.ops``),
# string-compare dispatch, a ``CostModel.cost_of`` call, and
# ``isinstance`` checks on every operand.  All of that is resolvable
# once per program: ``_decode_program`` turns each ``MInstr`` into a
# flat tuple ``(kind, cost, ...)`` with
#
# * an integer opcode *kind* specialised on operand shapes (register vs
#   immediate, base register vs stack slot),
# * the cycle cost resolved through the cost model (branch kinds also
#   carry the taken cost including the pipeline refill),
# * operands reduced to physical register names, pre-masked immediates,
#   pre-folded stack offsets, resolved condition-code predicates, and
#   branch targets biased by -1 (the main loop always increments pc).
#
# The decoded stream is cached on the Program keyed by the cost model,
# so repeated Machine constructions over one program decode once.
# ---------------------------------------------------------------------------

K_LDR4, K_LDR1, K_LDR2 = 0, 1, 2
K_STR4_R, K_STR1_R, K_STR2_R = 3, 4, 5
K_STR4_I, K_STR1_I, K_STR2_I = 6, 7, 8
K_ADD_RR, K_ADD_RI, K_SUB_RR, K_SUB_RI = 9, 10, 11, 12
K_ALU_RR, K_ALU_RI, K_ALU_IR, K_ALU_II = 13, 14, 15, 16
K_CMP_RR, K_CMP_RI, K_CMP_IR, K_CMP_II = 17, 18, 19, 20
K_BCC, K_B = 21, 22
K_MOV_I, K_MOV_R = 23, 24
K_BL, K_BX_LR = 25, 26
K_PUSH, K_POP = 27, 28
K_SHIFT, K_DIV = 29, 30
K_CMOV_R, K_CMOV_I = 31, 32
K_LEA, K_ADDSP = 33, 34
K_EXT = 35
K_CKPT = 36
K_CPSID, K_CPSIE, K_NOP = 37, 38, 39
K_BAD = 40

_LOAD_KINDS = {"ldr": K_LDR4, "ldrb": K_LDR1, "ldrh": K_LDR2}
_STORE_KINDS_R = {"str": K_STR4_R, "strb": K_STR1_R, "strh": K_STR2_R}
_STORE_KINDS_I = {"str": K_STR4_I, "strb": K_STR1_I, "strh": K_STR2_I}
_SHIFT_IDS = {"lsl": 0, "lsr": 1, "asr": 2}
_EXT_IDS = {"sxtb": 0, "uxtb": 1, "sxth": 2, "uxth": 3}


def _operand(op):
    """(is_immediate, register-name-or-masked-immediate) for a value op."""
    if isinstance(op, int):
        return True, op & M32
    return False, op.phys


def _base_and_offset(base, offset):
    """Fold an addressing operand into (register name, byte offset)."""
    if isinstance(base, str):  # 'sp'
        return base, offset
    if hasattr(base, "offset"):  # StackSlot
        return "sp", base.offset + offset
    return base.phys, offset  # VReg


def _decode_program(program: Program, costs: CostModel) -> List[tuple]:
    decoded = []
    refill = costs.pipeline_refill
    for instr in program.instrs:
        op = instr.opcode
        try:
            cost = costs.cost_of(instr)
        except KeyError:
            # Unknown opcode: keep the reference behaviour of failing
            # only if the instruction is actually executed.
            decoded.append((K_BAD, 0, instr))
            continue
        ops = instr.ops
        if op in ("ldr", "ldrb", "ldrh"):
            base, off = _base_and_offset(ops[0], ops[1])
            entry = (_LOAD_KINDS[op], cost, instr.dst.phys, base, off)
        elif op in ("str", "strb", "strh"):
            imm, src = _operand(ops[0])
            base, off = _base_and_offset(ops[1], ops[2])
            kinds = _STORE_KINDS_I if imm else _STORE_KINDS_R
            entry = (kinds[op], cost, src, base, off)
        elif op in ("add", "sub"):
            a_imm, a = _operand(ops[0])
            b_imm, b = _operand(ops[1])
            if not a_imm:
                if b_imm:
                    kind = K_ADD_RI if op == "add" else K_SUB_RI
                else:
                    kind = K_ADD_RR if op == "add" else K_SUB_RR
                entry = (kind, cost, instr.dst.phys, a, b)
            else:  # immediate left operand: fall back to the generic form
                kind = K_ALU_II if b_imm else K_ALU_IR
                entry = (kind, cost, instr.dst.phys, a, b, _ALU[op])
        elif op in ("mul", "and", "orr", "eor"):
            a_imm, a = _operand(ops[0])
            b_imm, b = _operand(ops[1])
            kind = {
                (False, False): K_ALU_RR, (False, True): K_ALU_RI,
                (True, False): K_ALU_IR, (True, True): K_ALU_II,
            }[(a_imm, b_imm)]
            entry = (kind, cost, instr.dst.phys, a, b, _ALU[op])
        elif op == "cmp":
            a_imm, a = _operand(ops[0])
            b_imm, b = _operand(ops[1])
            kind = {
                (False, False): K_CMP_RR, (False, True): K_CMP_RI,
                (True, False): K_CMP_IR, (True, True): K_CMP_II,
            }[(a_imm, b_imm)]
            entry = (kind, cost, a, b)
        elif op == "bcc":
            entry = (K_BCC, cost, _COND[instr.cond], ops[0] - 1, cost + refill)
        elif op == "b":
            entry = (K_B, cost, ops[0] - 1, cost + refill)
        elif op == "mov":
            imm, src = _operand(ops[0])
            entry = (K_MOV_I if imm else K_MOV_R, cost, instr.dst.phys, src)
        elif op == "adr":
            # the encoder resolved the address to an absolute immediate
            entry = (K_MOV_I, cost, instr.dst.phys, ops[0] & M32)
        elif op == "bl":
            callee = program.function_of_index[ops[0]]
            entry = (K_BL, cost, ops[0] - 1, callee, cost + refill)
        elif op == "bx_lr":
            entry = (K_BX_LR, cost, cost + refill)
        elif op == "push":
            entry = (K_PUSH, cost, tuple(instr.regs))
        elif op == "pop":
            entry = (K_POP, cost, tuple(instr.regs))
        elif op in ("lsl", "lsr", "asr"):
            a_imm, a = _operand(ops[0])
            b_imm, b = _operand(ops[1])
            entry = (K_SHIFT, cost, _SHIFT_IDS[op], a_imm, a, b_imm, b,
                     instr.dst.phys)
        elif op in ("udiv", "sdiv"):
            a_imm, a = _operand(ops[0])
            b_imm, b = _operand(ops[1])
            entry = (K_DIV, cost, op == "sdiv", a_imm, a, b_imm, b,
                     instr.dst.phys)
        elif op == "cmov":
            imm, src = _operand(ops[0])
            entry = (K_CMOV_I if imm else K_CMOV_R, cost, _COND[instr.cond],
                     instr.dst.phys, src)
        elif op == "lea":
            entry = (K_LEA, cost, instr.dst.phys, ops[0].offset)
        elif op == "addsp":
            entry = (K_ADDSP, cost, ops[0])
        elif op == "subsp":
            entry = (K_ADDSP, cost, -ops[0])
        elif op in ("sxtb", "uxtb", "sxth", "uxth"):
            imm, src = _operand(ops[0])
            entry = (K_EXT, cost, _EXT_IDS[op], instr.dst.phys, imm, src)
        elif op == "checkpoint":
            entry = (K_CKPT, cost, instr.cause)
        elif op == "cpsid":
            entry = (K_CPSID, cost)
        elif op == "cpsie":
            entry = (K_CPSIE, cost)
        elif op == "nop":
            entry = (K_NOP, cost)
        else:
            entry = (K_BAD, cost, instr)
        decoded.append(entry)
    return decoded


def _decoded_for(program: Program, costs: CostModel) -> List[tuple]:
    cached = getattr(program, "_decoded_cache", None)
    if cached is not None and cached[0] is costs:
        return cached[1]
    decoded = _decode_program(program, costs)
    program._decoded_cache = (costs, decoded)
    return decoded


class Machine:
    """One emulated device executing one program."""

    def __init__(
        self,
        program: Program,
        cost_model: Optional[CostModel] = None,
        war_check: bool = True,
        interrupt_interval: Optional[int] = None,
        jit_checkpoint_threshold: Optional[int] = None,
        fast_interp: bool = True,
        trace: Optional[EventTrace] = None,
    ):
        self.program = program
        self.costs = cost_model or DEFAULT_COSTS
        #: optional :class:`EventTrace` recording consistency-critical
        #: instants (checkpoint commits, restores, first region stores,
        #: epilogue mask/unmask) for the fault-injection planner.  The
        #: ``war-write`` hook lives in :meth:`write_mem`, which the fast
        #: interpreter only routes stores through when WAR checking is
        #: on — so tracing requires ``war_check=True``.
        if trace is not None and not war_check:
            raise ValueError("event tracing requires war_check=True")
        self._trace = trace
        #: ``fast_interp=False`` selects the reference interpreter (the
        #: original per-MInstr dispatch loop); the parity tests compare
        #: its ExecutionStats against the predecoded fast path.
        self.fast_interp = fast_interp
        self._decoded = _decoded_for(program, self.costs) if fast_interp else None
        self.war = WARChecker() if war_check else None
        self.interrupt_interval = interrupt_interval
        #: Just-In-Time checkpointing (paper §6): a Hibernus-style
        #: voltage-comparator model.  When the remaining on-time of a
        #: discharge falls below the threshold the device checkpoints and
        #: sleeps until power returns.  Periods shorter than the
        #: threshold collapse faster than the comparator can react — the
        #: paper's "imprecise" hardware systems — so no checkpoint fires
        #: and the partial execution is re-run from the previous
        #: checkpoint.  Only meaningful with a non-continuous supply.
        self.jit_checkpoint_threshold = jit_checkpoint_threshold
        self._jit_fired = False
        self.stats = ExecutionStats()

        self.memory = bytearray(program.initial_memory)
        self.regs: Dict[str, int] = {f"r{i}": 0 for i in range(13)}
        self.regs["sp"] = STACK_TOP - 64
        self.regs["lr"] = HALT_ADDRESS & M32
        self.pc = program.entry
        self.last_cmp: Tuple[int, int] = (0, 0)
        self.interrupts_enabled = True
        self.pending_interrupt = False
        self.region_cycles = 0
        self._next_interrupt = interrupt_interval if interrupt_interval else None
        # double-buffered checkpoint: the initial (boot) checkpoint holds
        # the pristine entry state
        self._ckpt_active = (dict(self.regs), self.pc, self.last_cmp)
        self._halt_sentinel = HALT_ADDRESS & M32
        self._failures_since_checkpoint = 0

    # -- memory -----------------------------------------------------------
    def _resolve(self, base, offset) -> int:
        if isinstance(base, str):  # 'sp'
            addr = self.regs[base]
        elif hasattr(base, "offset"):  # StackSlot
            addr = self.regs["sp"] + base.offset
        else:  # VReg
            addr = self.regs[base.phys]
        return (addr + offset) & M32

    def read_mem(self, addr: int, size: int) -> int:
        if addr + size > len(self.memory):
            raise EmulationError(f"load out of bounds: 0x{addr:x}")
        if self.war is not None:
            self.war.on_read(addr, size)
        return int.from_bytes(self.memory[addr : addr + size], "little")

    def write_mem(self, addr: int, size: int, value: int) -> None:
        if addr + size > len(self.memory):
            raise EmulationError(f"store out of bounds: 0x{addr:x}")
        war = self.war
        if war is not None:
            trace = self._trace
            if trace is None:
                war.on_write(
                    addr, size, self.pc, self.program.function_of_index[self.pc],
                    loc=self.program.instrs[self.pc].loc,
                )
            else:
                # tracing: both loops synchronise ``stats.cycles`` (and
                # ``pc``) before reaching here, so the recorded cycle is
                # the cumulative on-time before this store's cost
                before = len(war.violations)
                war.on_write(
                    addr, size, self.pc, self.program.function_of_index[self.pc],
                    loc=self.program.instrs[self.pc].loc,
                )
                trace.on_store(self.stats.cycles, self.pc, addr)
                if len(war.violations) != before:
                    trace.on_war_violation(self.stats.cycles, self.pc, addr)
        self.memory[addr : addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def _val(self, op) -> int:
        return op & M32 if isinstance(op, int) else self.regs[op.phys]

    # -- checkpointing ------------------------------------------------------
    def _take_checkpoint(self, cause: str, next_pc: Optional[int] = None) -> None:
        # Double buffering: the new snapshot only becomes active once it
        # is complete, so a power failure mid-checkpoint restores the old
        # one.  Instruction-granular power failures make the snapshot
        # atomic here; the buffers live in reserved NVM outside the
        # program's address space.
        if next_pc is None:
            next_pc = self.pc + 1  # resume after the checkpoint instruction
        self._ckpt_active = (dict(self.regs), next_pc, self.last_cmp)
        self._failures_since_checkpoint = 0
        self.stats.record_checkpoint(cause, self.region_cycles)
        self.region_cycles = 0
        if self.war is not None:
            self.war.on_checkpoint()
        if self._trace is not None:
            self._trace.on_checkpoint(self.stats.cycles, self.pc, cause)

    def _restore_checkpoint(self) -> None:
        regs, pc, cmp_state = self._ckpt_active
        self.regs = dict(regs)
        self.pc = pc
        self.last_cmp = cmp_state
        self.interrupts_enabled = True
        self.pending_interrupt = False
        self.region_cycles = 0
        if self.war is not None:
            self.war.on_power_restore()
        if self._trace is not None:
            self._trace.on_restore(self.stats.cycles, self.pc)

    # -- interrupts -------------------------------------------------------------
    def _fire_interrupt(self) -> None:
        """Hardware exception entry: stack r0-r3, r12, lr, pc, xPSR."""
        sp = (self.regs["sp"] - 32) & M32
        self.regs["sp"] = sp
        frame = [
            self.regs["r0"], self.regs["r1"], self.regs["r2"], self.regs["r3"],
            self.regs["r12"], self.regs["lr"], self.pc & M32, 0,
        ]
        for i, word in enumerate(frame):
            self.write_mem(sp + 4 * i, 4, word)
        # ISR body is opaque; exception return unstacks the frame.
        for i in range(8):
            self.read_mem(sp + 4 * i, 4)
        self.regs["sp"] = (sp + 32) & M32
        cost = (
            self.costs.interrupt_entry_cycles
            + self.costs.isr_cycles
            + self.costs.interrupt_exit_cycles
        )
        self.stats.cycles += cost
        self.region_cycles += cost
        self.stats.interrupts += 1

    # -- main loop ---------------------------------------------------------------
    def run(
        self,
        power: Optional[PowerSupply] = None,
        max_instructions: int = 100_000_000,
    ) -> ExecutionStats:
        if self.fast_interp:
            return self._run_decoded(power, max_instructions)
        return self._run_reference(power, max_instructions)

    def _run_decoded(
        self,
        power: Optional[PowerSupply],
        max_instructions: int,
    ) -> ExecutionStats:
        """The fast path: interpret the predecoded stream.

        Byte-for-byte equivalent to :meth:`_run_reference` in every
        observable (``ExecutionStats``, memory, registers, WAR checking,
        interrupts, JIT checkpoints); hot state lives in locals and is
        synchronised with the instance on every slow-path event.
        """
        decoded = self._decoded
        costs = self.costs
        stats = self.stats
        regs = self.regs
        memory = self.memory
        war = self.war
        trace = self._trace
        cc = stats.call_counts

        pc = self.pc
        cmp_a, cmp_b = self.last_cmp
        cycles = stats.cycles
        icount = stats.instructions
        region_cycles = self.region_cycles
        halt_sentinel = self._halt_sentinel
        jit_threshold = self.jit_checkpoint_threshold
        jit_enabled = jit_threshold is not None
        jit_fired = self._jit_fired
        interrupt_interval = self.interrupt_interval
        next_interrupt = self._next_interrupt
        checkpoint_cycles = costs.checkpoint_cycles

        on_iter = None
        budget = None
        if power is not None and not power.is_continuous:
            on_iter = power.on_durations()
            budget = next(on_iter)
            if jit_enabled and budget <= jit_threshold:
                jit_fired = True  # collapsed before the comparator
                self._jit_fired = True
        period_used = 0

        addr = 0
        try:
            while True:
                if icount >= max_instructions:
                    stats.instructions = icount
                    stats.cycles = cycles
                    self.pc = pc
                    self.last_cmp = (cmp_a, cmp_b)
                    self.region_cycles = region_cycles
                    self._next_interrupt = next_interrupt
                    raise EmulationLimit(
                        f"exceeded {max_instructions} instructions "
                        f"({stats.summary()})"
                    )
                d = decoded[pc]
                cost = d[1]

                if budget is not None and period_used + cost > budget:
                    # ---- power failure -----------------------------------
                    stats.instructions = icount
                    stats.cycles = cycles
                    stats.power_failures += 1
                    stats.reexecuted_cycles += region_cycles
                    self._failures_since_checkpoint += 1
                    if self._failures_since_checkpoint > 1000:
                        self.pc = pc
                        self.last_cmp = (cmp_a, cmp_b)
                        self.region_cycles = region_cycles
                        self._next_interrupt = next_interrupt
                        raise NoForwardProgress(
                            "the idempotent region does not fit the power-on "
                            f"window ({stats.summary()})"
                        )
                    boot = costs.boot_cycles + costs.restore_cycles
                    dead_periods = 0
                    budget = next(on_iter)
                    while budget < boot:
                        dead_periods += 1
                        stats.power_failures += 1
                        if dead_periods > 10_000:
                            self.pc = pc
                            self.last_cmp = (cmp_a, cmp_b)
                            self.region_cycles = region_cycles
                            self._next_interrupt = next_interrupt
                            raise NoForwardProgress(
                                "power-on periods shorter than boot + restore"
                            )
                        budget = next(on_iter)
                    period_used = boot
                    cycles += boot
                    stats.cycles = cycles
                    stats.boot_cycles += boot
                    jit_fired = jit_enabled and budget - boot <= jit_threshold
                    self._jit_fired = jit_fired
                    self._restore_checkpoint()
                    regs = self.regs
                    pc = self.pc
                    cmp_a, cmp_b = self.last_cmp
                    region_cycles = 0
                    continue

                icount += 1
                k = d[0]

                # dispatch ordered by measured dynamic frequency across the
                # benchsuite (see docs/PERFORMANCE.md)
                if k == K_MOV_R:
                    regs[d[2]] = regs[d[3]]
                elif k == K_ADD_RR:
                    regs[d[2]] = (regs[d[3]] + regs[d[4]]) & M32
                elif k == K_LDR4:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        regs[d[2]] = _U32(memory, addr)[0]
                    else:
                        regs[d[2]] = self.read_mem(addr, 4)
                elif k == K_MOV_I:
                    regs[d[2]] = d[3]
                elif k == K_SHIFT:
                    a = d[4] if d[3] else regs[d[4]]
                    amount = (d[6] if d[5] else regs[d[6]]) & 0xFF
                    mode = d[2]
                    if mode == 0:  # lsl
                        result = (a << amount) & M32 if amount < 32 else 0
                    elif mode == 1:  # lsr
                        result = a >> amount if amount < 32 else 0
                    else:  # asr
                        result = (_signed(a) >> amount) & M32 if amount < 32 else (
                            M32 if _signed(a) < 0 else 0
                        )
                    regs[d[7]] = result
                elif k == K_ALU_RR:
                    regs[d[2]] = d[5](regs[d[3]], regs[d[4]]) & M32
                elif k == K_EXT:
                    v = d[5] if d[4] else regs[d[5]]
                    mode = d[2]
                    if mode == 0:  # sxtb
                        v &= 0xFF
                        regs[d[3]] = (v - 256 if v >= 128 else v) & M32
                    elif mode == 1:  # uxtb
                        regs[d[3]] = v & 0xFF
                    elif mode == 2:  # sxth
                        v &= 0xFFFF
                        regs[d[3]] = (v - 65536 if v >= 32768 else v) & M32
                    else:  # uxth
                        regs[d[3]] = v & 0xFFFF
                elif k == K_BCC:
                    if d[2](cmp_a, cmp_b):
                        pc = d[3]
                        cost = d[4]
                elif k == K_ADD_RI:
                    regs[d[2]] = (regs[d[3]] + d[4]) & M32
                elif k == K_CMP_RI:
                    cmp_a = regs[d[2]]
                    cmp_b = d[3]
                elif k == K_B:
                    pc = d[2]
                    cost = d[3]
                elif k == K_STR4_R:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        _P32(memory, addr, regs[d[2]])
                    else:
                        self.pc = pc
                        if trace is not None:
                            stats.cycles = cycles
                        self.write_mem(addr, 4, regs[d[2]])
                elif k == K_LDR1:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        regs[d[2]] = memory[addr]
                    else:
                        regs[d[2]] = self.read_mem(addr, 1)
                elif k == K_SUB_RI:
                    regs[d[2]] = (regs[d[3]] - d[4]) & M32
                elif k == K_STR1_R:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        memory[addr] = regs[d[2]] & 0xFF
                    else:
                        self.pc = pc
                        if trace is not None:
                            stats.cycles = cycles
                        self.write_mem(addr, 1, regs[d[2]])
                elif k == K_CMP_RR:
                    cmp_a = regs[d[2]]
                    cmp_b = regs[d[3]]
                elif k == K_ALU_RI:
                    regs[d[2]] = d[5](regs[d[3]], d[4]) & M32
                elif k == K_SUB_RR:
                    regs[d[2]] = (regs[d[3]] - regs[d[4]]) & M32
                elif k == K_LDR2:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        regs[d[2]] = _U16(memory, addr)[0]
                    else:
                        regs[d[2]] = self.read_mem(addr, 2)
                elif k == K_STR2_R:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        _P16(memory, addr, regs[d[2]] & 0xFFFF)
                    else:
                        self.pc = pc
                        if trace is not None:
                            stats.cycles = cycles
                        self.write_mem(addr, 2, regs[d[2]])
                elif k == K_BL:
                    regs["lr"] = (pc + 1) & M32
                    callee = d[3]
                    cc[callee] = cc.get(callee, 0) + 1
                    pc = d[2]
                    cost = d[4]
                elif k == K_BX_LR:
                    target = regs["lr"]
                    if target == halt_sentinel:
                        cycles += cost
                        region_cycles += cost
                        stats.halted = True
                        stats.final_region_cycles = region_cycles
                        stats.instructions = icount
                        stats.cycles = cycles
                        self.pc = pc
                        self.last_cmp = (cmp_a, cmp_b)
                        self.region_cycles = region_cycles
                        self._next_interrupt = next_interrupt
                        return stats
                    pc = target - 1
                    cost = d[2]
                elif k == K_PUSH:
                    names = d[2]
                    sp = (regs["sp"] - 4 * len(names)) & M32
                    regs["sp"] = sp
                    if war is None:
                        addr = sp
                        for name in names:
                            _P32(memory, addr, regs[name])
                            addr += 4
                    else:
                        self.pc = pc
                        if trace is not None:
                            stats.cycles = cycles
                        for i, name in enumerate(names):
                            self.write_mem(sp + 4 * i, 4, regs[name])
                elif k == K_POP:
                    sp = regs["sp"]
                    if war is None:
                        addr = sp
                        for name in d[2]:
                            regs[name] = _U32(memory, addr)[0]
                            addr += 4
                    else:
                        for i, name in enumerate(d[2]):
                            regs[name] = self.read_mem(sp + 4 * i, 4)
                    regs["sp"] = (sp + 4 * len(d[2])) & M32
                elif k == K_CKPT:
                    self.pc = pc
                    self.last_cmp = (cmp_a, cmp_b)
                    self.region_cycles = region_cycles
                    stats.cycles = cycles
                    self._take_checkpoint(d[2])
                    region_cycles = 0
                elif k == K_DIV:
                    a = d[4] if d[3] else regs[d[4]]
                    b = d[6] if d[5] else regs[d[6]]
                    if b == 0:
                        result = 0  # ARM semantics: division by zero yields 0
                    elif not d[2]:  # udiv
                        result = a // b
                    else:
                        sa, sb = _signed(a), _signed(b)
                        result = abs(sa) // abs(sb)
                        if (sa < 0) != (sb < 0):
                            result = -result
                    regs[d[7]] = result & M32
                elif k == K_CMOV_R:
                    if d[2](cmp_a, cmp_b):
                        regs[d[3]] = regs[d[4]]
                elif k == K_CMOV_I:
                    if d[2](cmp_a, cmp_b):
                        regs[d[3]] = d[4]
                elif k == K_LEA:
                    regs[d[2]] = (regs["sp"] + d[3]) & M32
                elif k == K_ADDSP:
                    regs["sp"] = (regs["sp"] + d[2]) & M32
                elif k == K_STR4_I:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        _P32(memory, addr, d[2])
                    else:
                        self.pc = pc
                        if trace is not None:
                            stats.cycles = cycles
                        self.write_mem(addr, 4, d[2])
                elif k == K_STR1_I:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        memory[addr] = d[2] & 0xFF
                    else:
                        self.pc = pc
                        if trace is not None:
                            stats.cycles = cycles
                        self.write_mem(addr, 1, d[2])
                elif k == K_STR2_I:
                    addr = (regs[d[3]] + d[4]) & M32
                    if war is None:
                        _P16(memory, addr, d[2] & 0xFFFF)
                    else:
                        self.pc = pc
                        if trace is not None:
                            stats.cycles = cycles
                        self.write_mem(addr, 2, d[2])
                elif k == K_CMP_IR:
                    cmp_a = d[2]
                    cmp_b = regs[d[3]]
                elif k == K_CMP_II:
                    cmp_a = d[2]
                    cmp_b = d[3]
                elif k == K_ALU_IR:
                    regs[d[2]] = d[5](d[3], regs[d[4]]) & M32
                elif k == K_ALU_II:
                    regs[d[2]] = d[5](d[3], d[4]) & M32
                elif k == K_CPSID:
                    self.interrupts_enabled = False
                    if trace is not None:
                        trace.record("mask", cycles, pc)
                elif k == K_CPSIE:
                    self.interrupts_enabled = True
                    if trace is not None:
                        trace.record("unmask", cycles, pc)
                    if self.pending_interrupt:
                        self.pending_interrupt = False
                        stats.instructions = icount
                        stats.cycles = cycles
                        self.pc = pc
                        self.region_cycles = region_cycles
                        self._fire_interrupt()
                        cycles = stats.cycles
                        region_cycles = self.region_cycles
                elif k == K_NOP:
                    pass
                else:
                    stats.instructions = icount
                    stats.cycles = cycles
                    self.pc = pc
                    self.last_cmp = (cmp_a, cmp_b)
                    self.region_cycles = region_cycles
                    raise EmulationError(f"cannot execute {d[2]!r}")

                cycles += cost
                region_cycles += cost
                period_used += cost
                pc += 1

                # JIT checkpoint: the comparator sees the capacitor voltage
                # crossing the configured threshold; the device saves state
                # and sleeps out the remainder of the discharge.
                if (
                    jit_enabled
                    and budget is not None
                    and not jit_fired
                    and budget - period_used <= jit_threshold
                ):
                    jit_fired = True
                    self._jit_fired = True
                    cycles += checkpoint_cycles
                    region_cycles += checkpoint_cycles
                    period_used += checkpoint_cycles
                    self.pc = pc
                    self.last_cmp = (cmp_a, cmp_b)
                    self.region_cycles = region_cycles
                    stats.cycles = cycles
                    self._take_checkpoint("jit", next_pc=pc)
                    region_cycles = 0
                    period_used = budget  # sleep until the brown-out

                # periodic timer interrupt
                if next_interrupt is not None and cycles >= next_interrupt:
                    next_interrupt += interrupt_interval
                    if self.interrupts_enabled:
                        stats.instructions = icount
                        stats.cycles = cycles
                        self.pc = pc
                        self.region_cycles = region_cycles
                        self._fire_interrupt()
                        cycles = stats.cycles
                        region_cycles = self.region_cycles
                    else:
                        self.pending_interrupt = True
        except EmulationError:
            # raised with locals already synchronised (limit / no-forward-
            # progress paths) or by the WAR-checking accessors — make sure
            # the counters reflect the faulting instruction either way
            stats.instructions = icount
            stats.cycles = cycles
            self.pc = pc
            self.last_cmp = (cmp_a, cmp_b)
            self.region_cycles = region_cycles
            self._next_interrupt = next_interrupt
            raise
        except (IndexError, struct.error):
            # the fast memory accessors bounds-check by construction:
            # bytearray indexing / struct packing reject any access past
            # the 1 MB address space
            stats.instructions = icount
            stats.cycles = cycles
            self.pc = pc
            self.last_cmp = (cmp_a, cmp_b)
            self.region_cycles = region_cycles
            self._next_interrupt = next_interrupt
            raise EmulationError(f"memory access out of bounds: 0x{addr:x}")

    def _run_reference(
        self,
        power: Optional[PowerSupply],
        max_instructions: int,
    ) -> ExecutionStats:
        instrs = self.program.instrs
        costs = self.costs
        stats = self.stats
        regs = self.regs

        on_iter = None
        budget = None
        if power is not None and not power.is_continuous:
            on_iter = power.on_durations()
            budget = next(on_iter)
            if (
                self.jit_checkpoint_threshold is not None
                and budget <= self.jit_checkpoint_threshold
            ):
                self._jit_fired = True  # collapsed before the comparator
        period_used = 0

        while True:
            if stats.instructions >= max_instructions:
                raise EmulationLimit(
                    f"exceeded {max_instructions} instructions "
                    f"({stats.summary()})"
                )
            instr = instrs[self.pc]
            cost = costs.cost_of(instr)

            if budget is not None and period_used + cost > budget:
                # ---- power failure ---------------------------------------
                stats.power_failures += 1
                stats.reexecuted_cycles += self.region_cycles
                self._failures_since_checkpoint += 1
                if self._failures_since_checkpoint > 1000:
                    raise NoForwardProgress(
                        "the idempotent region does not fit the power-on "
                        f"window ({stats.summary()})"
                    )
                boot = costs.boot_cycles + costs.restore_cycles
                dead_periods = 0
                budget = next(on_iter)
                while budget < boot:
                    dead_periods += 1
                    stats.power_failures += 1
                    if dead_periods > 10_000:
                        raise NoForwardProgress(
                            "power-on periods shorter than boot + restore"
                        )
                    budget = next(on_iter)
                period_used = boot
                stats.cycles += boot
                stats.boot_cycles += boot
                self._jit_fired = (
                    self.jit_checkpoint_threshold is not None
                    and budget - boot <= self.jit_checkpoint_threshold
                )  # a too-short period collapses before the comparator
                self._restore_checkpoint()
                regs = self.regs
                continue

            stats.instructions += 1
            taken_branch = False
            op = instr.opcode
            ops = instr.ops

            if op == "mov":
                regs[instr.dst.phys] = self._val(ops[0])
            elif op in _ALU:
                regs[instr.dst.phys] = _ALU[op](self._val(ops[0]), self._val(ops[1])) & M32
            elif op in ("lsl", "lsr", "asr"):
                amount = self._val(ops[1]) & 0xFF
                a = self._val(ops[0])
                if op == "lsl":
                    result = (a << amount) & M32 if amount < 32 else 0
                elif op == "lsr":
                    result = a >> amount if amount < 32 else 0
                else:
                    result = (_signed(a) >> amount) & M32 if amount < 32 else (
                        M32 if _signed(a) < 0 else 0
                    )
                regs[instr.dst.phys] = result
            elif op in ("udiv", "sdiv"):
                a, b = self._val(ops[0]), self._val(ops[1])
                if b == 0:
                    result = 0  # ARM semantics: division by zero yields 0
                elif op == "udiv":
                    result = a // b
                else:
                    sa, sb = _signed(a), _signed(b)
                    result = abs(sa) // abs(sb)
                    if (sa < 0) != (sb < 0):
                        result = -result
                regs[instr.dst.phys] = result & M32
            elif op in ("ldr", "ldrb", "ldrh"):
                size = {"ldr": 4, "ldrb": 1, "ldrh": 2}[op]
                addr = self._resolve(ops[0], ops[1])
                regs[instr.dst.phys] = self.read_mem(addr, size)
            elif op in ("str", "strb", "strh"):
                size = {"str": 4, "strb": 1, "strh": 2}[op]
                addr = self._resolve(ops[1], ops[2])
                self.write_mem(addr, size, self._val(ops[0]))
            elif op == "cmp":
                self.last_cmp = (self._val(ops[0]), self._val(ops[1]))
            elif op == "bcc":
                if _COND[instr.cond](*self.last_cmp):
                    self.pc = ops[0] - 1
                    taken_branch = True
            elif op == "b":
                self.pc = ops[0] - 1
                taken_branch = True
            elif op == "cmov":
                if _COND[instr.cond](*self.last_cmp):
                    regs[instr.dst.phys] = self._val(ops[0])
            elif op == "adr":
                regs[instr.dst.phys] = ops[0]
            elif op == "lea":
                regs[instr.dst.phys] = (regs["sp"] + ops[0].offset) & M32
            elif op == "bl":
                regs["lr"] = (self.pc + 1) & M32
                callee = self.program.function_of_index[ops[0]]
                stats.call_counts[callee] = stats.call_counts.get(callee, 0) + 1
                self.pc = ops[0] - 1
                taken_branch = True
            elif op == "bx_lr":
                target = regs["lr"]
                if target == self._halt_sentinel:
                    stats.cycles += cost
                    self.region_cycles += cost
                    stats.halted = True
                    stats.final_region_cycles = self.region_cycles
                    return stats
                self.pc = target - 1
                taken_branch = True
            elif op == "push":
                n = len(instr.regs)
                sp = (regs["sp"] - 4 * n) & M32
                regs["sp"] = sp
                for i, reg in enumerate(instr.regs):
                    self.write_mem(sp + 4 * i, 4, regs[reg])
            elif op == "pop":
                sp = regs["sp"]
                for i, reg in enumerate(instr.regs):
                    regs[reg] = self.read_mem(sp + 4 * i, 4)
                regs["sp"] = (sp + 4 * len(instr.regs)) & M32
            elif op == "addsp":
                regs["sp"] = (regs["sp"] + ops[0]) & M32
            elif op == "subsp":
                regs["sp"] = (regs["sp"] - ops[0]) & M32
            elif op == "sxtb":
                v = self._val(ops[0]) & 0xFF
                regs[instr.dst.phys] = (v - 256 if v >= 128 else v) & M32
            elif op == "uxtb":
                regs[instr.dst.phys] = self._val(ops[0]) & 0xFF
            elif op == "sxth":
                v = self._val(ops[0]) & 0xFFFF
                regs[instr.dst.phys] = (v - 65536 if v >= 32768 else v) & M32
            elif op == "uxth":
                regs[instr.dst.phys] = self._val(ops[0]) & 0xFFFF
            elif op == "checkpoint":
                self._take_checkpoint(instr.cause)
            elif op == "cpsid":
                self.interrupts_enabled = False
                if self._trace is not None:
                    self._trace.record("mask", stats.cycles, self.pc)
            elif op == "cpsie":
                self.interrupts_enabled = True
                if self._trace is not None:
                    self._trace.record("unmask", stats.cycles, self.pc)
                if self.pending_interrupt:
                    self.pending_interrupt = False
                    self._fire_interrupt()
            elif op == "nop":
                pass
            else:
                raise EmulationError(f"cannot execute {instr!r}")

            if taken_branch:
                cost += costs.pipeline_refill
            stats.cycles += cost
            self.region_cycles += cost
            period_used += cost
            self.pc += 1

            # JIT checkpoint: the comparator sees the capacitor voltage
            # crossing the configured threshold; the device saves state
            # and sleeps out the remainder of the discharge.  A period
            # that started below the threshold collapsed too fast for the
            # comparator (handled at period start).
            if (
                self.jit_checkpoint_threshold is not None
                and budget is not None
                and not self._jit_fired
                and budget - period_used <= self.jit_checkpoint_threshold
            ):
                self._jit_fired = True
                jit_cost = costs.checkpoint_cycles
                stats.cycles += jit_cost
                self.region_cycles += jit_cost
                period_used += jit_cost
                self._take_checkpoint("jit", next_pc=self.pc)
                period_used = budget  # sleep until the brown-out

            # periodic timer interrupt
            if self._next_interrupt is not None and stats.cycles >= self._next_interrupt:
                self._next_interrupt += self.interrupt_interval
                if self.interrupts_enabled:
                    self._fire_interrupt()
                else:
                    self.pending_interrupt = True

    # -- post-run inspection ---------------------------------------------------
    def read_global(self, name: str, count: int = 1, size: int = 4, signed: bool = False):
        """Read a global scalar or array from memory after (or during) a
        run.  Returns an int for ``count == 1``, else a list."""
        addr = self.program.global_addr[name]
        values = []
        for i in range(count):
            raw = int.from_bytes(
                self.memory[addr + i * size : addr + (i + 1) * size], "little"
            )
            if signed and raw >= 1 << (8 * size - 1):
                raw -= 1 << (8 * size)
            values.append(raw)
        return values[0] if count == 1 else values
