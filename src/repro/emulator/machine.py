"""The intermittent-computing emulator (paper §5.1.1).

Executes an encoded :class:`~repro.backend.encoder.Program` on a model of
an ARM Cortex-M-class MCU with non-volatile main memory: globals and the
stack live in NVM (they survive power failures); the register file is
volatile and is saved only by the double-buffered checkpoint runtime.

The emulator optionally drives a :class:`~repro.emulator.power.PowerSupply`
(power failures clear the registers and charge the boot + restore path),
fires a periodic timer interrupt (hardware stacking through the WAR
checker), and verifies the absence of WAR violations on every access.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..backend.encoder import HALT_ADDRESS, Program, STACK_TOP
from .costs import DEFAULT_COSTS, CostModel
from .power import PowerSupply
from .stats import ExecutionStats
from .warcheck import WARChecker

M32 = 0xFFFFFFFF


class EmulationError(Exception):
    pass


class EmulationLimit(EmulationError):
    """Raised when the instruction budget is exhausted."""


class NoForwardProgress(EmulationError):
    """Raised when the power supply cannot sustain boot + restore."""


def _signed(v: int) -> int:
    v &= M32
    return v - (1 << 32) if v >= 1 << 31 else v


_COND = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: _signed(a) < _signed(b),
    "le": lambda a, b: _signed(a) <= _signed(b),
    "gt": lambda a, b: _signed(a) > _signed(b),
    "ge": lambda a, b: _signed(a) >= _signed(b),
    "lo": lambda a, b: a < b,
    "ls": lambda a, b: a <= b,
    "hi": lambda a, b: a > b,
    "hs": lambda a, b: a >= b,
}

_ALU = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "orr": lambda a, b: a | b,
    "eor": lambda a, b: a ^ b,
}


class Machine:
    """One emulated device executing one program."""

    def __init__(
        self,
        program: Program,
        cost_model: Optional[CostModel] = None,
        war_check: bool = True,
        interrupt_interval: Optional[int] = None,
        jit_checkpoint_threshold: Optional[int] = None,
    ):
        self.program = program
        self.costs = cost_model or DEFAULT_COSTS
        self.war = WARChecker() if war_check else None
        self.interrupt_interval = interrupt_interval
        #: Just-In-Time checkpointing (paper §6): a Hibernus-style
        #: voltage-comparator model.  When the remaining on-time of a
        #: discharge falls below the threshold the device checkpoints and
        #: sleeps until power returns.  Periods shorter than the
        #: threshold collapse faster than the comparator can react — the
        #: paper's "imprecise" hardware systems — so no checkpoint fires
        #: and the partial execution is re-run from the previous
        #: checkpoint.  Only meaningful with a non-continuous supply.
        self.jit_checkpoint_threshold = jit_checkpoint_threshold
        self._jit_fired = False
        self.stats = ExecutionStats()

        self.memory = bytearray(program.initial_memory)
        self.regs: Dict[str, int] = {f"r{i}": 0 for i in range(13)}
        self.regs["sp"] = STACK_TOP - 64
        self.regs["lr"] = HALT_ADDRESS & M32
        self.pc = program.entry
        self.last_cmp: Tuple[int, int] = (0, 0)
        self.interrupts_enabled = True
        self.pending_interrupt = False
        self.region_cycles = 0
        self._next_interrupt = interrupt_interval if interrupt_interval else None
        # double-buffered checkpoint: the initial (boot) checkpoint holds
        # the pristine entry state
        self._ckpt_active = (dict(self.regs), self.pc, self.last_cmp)
        self._halt_sentinel = HALT_ADDRESS & M32
        self._failures_since_checkpoint = 0

    # -- memory -----------------------------------------------------------
    def _resolve(self, base, offset) -> int:
        if isinstance(base, str):  # 'sp'
            addr = self.regs[base]
        elif hasattr(base, "offset"):  # StackSlot
            addr = self.regs["sp"] + base.offset
        else:  # VReg
            addr = self.regs[base.phys]
        return (addr + offset) & M32

    def read_mem(self, addr: int, size: int) -> int:
        if addr + size > len(self.memory):
            raise EmulationError(f"load out of bounds: 0x{addr:x}")
        if self.war is not None:
            self.war.on_read(addr, size)
        return int.from_bytes(self.memory[addr : addr + size], "little")

    def write_mem(self, addr: int, size: int, value: int) -> None:
        if addr + size > len(self.memory):
            raise EmulationError(f"store out of bounds: 0x{addr:x}")
        if self.war is not None:
            self.war.on_write(
                addr, size, self.pc, self.program.function_of_index[self.pc],
                loc=self.program.instrs[self.pc].loc,
            )
        self.memory[addr : addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def _val(self, op) -> int:
        return op & M32 if isinstance(op, int) else self.regs[op.phys]

    # -- checkpointing ------------------------------------------------------
    def _take_checkpoint(self, cause: str, next_pc: Optional[int] = None) -> None:
        # Double buffering: the new snapshot only becomes active once it
        # is complete, so a power failure mid-checkpoint restores the old
        # one.  Instruction-granular power failures make the snapshot
        # atomic here; the buffers live in reserved NVM outside the
        # program's address space.
        if next_pc is None:
            next_pc = self.pc + 1  # resume after the checkpoint instruction
        self._ckpt_active = (dict(self.regs), next_pc, self.last_cmp)
        self._failures_since_checkpoint = 0
        self.stats.record_checkpoint(cause, self.region_cycles)
        self.region_cycles = 0
        if self.war is not None:
            self.war.on_checkpoint()

    def _restore_checkpoint(self) -> None:
        regs, pc, cmp_state = self._ckpt_active
        self.regs = dict(regs)
        self.pc = pc
        self.last_cmp = cmp_state
        self.interrupts_enabled = True
        self.pending_interrupt = False
        self.region_cycles = 0
        if self.war is not None:
            self.war.on_power_restore()

    # -- interrupts -------------------------------------------------------------
    def _fire_interrupt(self) -> None:
        """Hardware exception entry: stack r0-r3, r12, lr, pc, xPSR."""
        sp = (self.regs["sp"] - 32) & M32
        self.regs["sp"] = sp
        frame = [
            self.regs["r0"], self.regs["r1"], self.regs["r2"], self.regs["r3"],
            self.regs["r12"], self.regs["lr"], self.pc & M32, 0,
        ]
        for i, word in enumerate(frame):
            self.write_mem(sp + 4 * i, 4, word)
        # ISR body is opaque; exception return unstacks the frame.
        for i in range(8):
            self.read_mem(sp + 4 * i, 4)
        self.regs["sp"] = (sp + 32) & M32
        cost = (
            self.costs.interrupt_entry_cycles
            + self.costs.isr_cycles
            + self.costs.interrupt_exit_cycles
        )
        self.stats.cycles += cost
        self.region_cycles += cost
        self.stats.interrupts += 1

    # -- main loop ---------------------------------------------------------------
    def run(
        self,
        power: Optional[PowerSupply] = None,
        max_instructions: int = 100_000_000,
    ) -> ExecutionStats:
        instrs = self.program.instrs
        costs = self.costs
        stats = self.stats
        regs = self.regs

        on_iter = None
        budget = None
        if power is not None and not power.is_continuous:
            on_iter = power.on_durations()
            budget = next(on_iter)
            if (
                self.jit_checkpoint_threshold is not None
                and budget <= self.jit_checkpoint_threshold
            ):
                self._jit_fired = True  # collapsed before the comparator
        period_used = 0

        while True:
            if stats.instructions >= max_instructions:
                raise EmulationLimit(
                    f"exceeded {max_instructions} instructions "
                    f"({stats.summary()})"
                )
            instr = instrs[self.pc]
            cost = costs.cost_of(instr)

            if budget is not None and period_used + cost > budget:
                # ---- power failure ---------------------------------------
                stats.power_failures += 1
                stats.reexecuted_cycles += self.region_cycles
                self._failures_since_checkpoint += 1
                if self._failures_since_checkpoint > 1000:
                    raise NoForwardProgress(
                        "the idempotent region does not fit the power-on "
                        f"window ({stats.summary()})"
                    )
                boot = costs.boot_cycles + costs.restore_cycles
                dead_periods = 0
                budget = next(on_iter)
                while budget < boot:
                    dead_periods += 1
                    stats.power_failures += 1
                    if dead_periods > 10_000:
                        raise NoForwardProgress(
                            "power-on periods shorter than boot + restore"
                        )
                    budget = next(on_iter)
                period_used = boot
                stats.cycles += boot
                stats.boot_cycles += boot
                self._jit_fired = (
                    self.jit_checkpoint_threshold is not None
                    and budget - boot <= self.jit_checkpoint_threshold
                )  # a too-short period collapses before the comparator
                self._restore_checkpoint()
                regs = self.regs
                continue

            stats.instructions += 1
            taken_branch = False
            op = instr.opcode
            ops = instr.ops

            if op == "mov":
                regs[instr.dst.phys] = self._val(ops[0])
            elif op in _ALU:
                regs[instr.dst.phys] = _ALU[op](self._val(ops[0]), self._val(ops[1])) & M32
            elif op in ("lsl", "lsr", "asr"):
                amount = self._val(ops[1]) & 0xFF
                a = self._val(ops[0])
                if op == "lsl":
                    result = (a << amount) & M32 if amount < 32 else 0
                elif op == "lsr":
                    result = a >> amount if amount < 32 else 0
                else:
                    result = (_signed(a) >> amount) & M32 if amount < 32 else (
                        M32 if _signed(a) < 0 else 0
                    )
                regs[instr.dst.phys] = result
            elif op in ("udiv", "sdiv"):
                a, b = self._val(ops[0]), self._val(ops[1])
                if b == 0:
                    result = 0  # ARM semantics: division by zero yields 0
                elif op == "udiv":
                    result = a // b
                else:
                    sa, sb = _signed(a), _signed(b)
                    result = abs(sa) // abs(sb)
                    if (sa < 0) != (sb < 0):
                        result = -result
                regs[instr.dst.phys] = result & M32
            elif op in ("ldr", "ldrb", "ldrh"):
                size = {"ldr": 4, "ldrb": 1, "ldrh": 2}[op]
                addr = self._resolve(ops[0], ops[1])
                regs[instr.dst.phys] = self.read_mem(addr, size)
            elif op in ("str", "strb", "strh"):
                size = {"str": 4, "strb": 1, "strh": 2}[op]
                addr = self._resolve(ops[1], ops[2])
                self.write_mem(addr, size, self._val(ops[0]))
            elif op == "cmp":
                self.last_cmp = (self._val(ops[0]), self._val(ops[1]))
            elif op == "bcc":
                if _COND[instr.cond](*self.last_cmp):
                    self.pc = ops[0] - 1
                    taken_branch = True
            elif op == "b":
                self.pc = ops[0] - 1
                taken_branch = True
            elif op == "cmov":
                if _COND[instr.cond](*self.last_cmp):
                    regs[instr.dst.phys] = self._val(ops[0])
            elif op == "adr":
                regs[instr.dst.phys] = ops[0]
            elif op == "lea":
                regs[instr.dst.phys] = (regs["sp"] + ops[0].offset) & M32
            elif op == "bl":
                regs["lr"] = (self.pc + 1) & M32
                callee = self.program.function_of_index[ops[0]]
                stats.call_counts[callee] = stats.call_counts.get(callee, 0) + 1
                self.pc = ops[0] - 1
                taken_branch = True
            elif op == "bx_lr":
                target = regs["lr"]
                if target == self._halt_sentinel:
                    stats.cycles += cost
                    self.region_cycles += cost
                    stats.halted = True
                    return stats
                self.pc = target - 1
                taken_branch = True
            elif op == "push":
                n = len(instr.regs)
                sp = (regs["sp"] - 4 * n) & M32
                regs["sp"] = sp
                for i, reg in enumerate(instr.regs):
                    self.write_mem(sp + 4 * i, 4, regs[reg])
            elif op == "pop":
                sp = regs["sp"]
                for i, reg in enumerate(instr.regs):
                    regs[reg] = self.read_mem(sp + 4 * i, 4)
                regs["sp"] = (sp + 4 * len(instr.regs)) & M32
            elif op == "addsp":
                regs["sp"] = (regs["sp"] + ops[0]) & M32
            elif op == "subsp":
                regs["sp"] = (regs["sp"] - ops[0]) & M32
            elif op == "sxtb":
                v = self._val(ops[0]) & 0xFF
                regs[instr.dst.phys] = (v - 256 if v >= 128 else v) & M32
            elif op == "uxtb":
                regs[instr.dst.phys] = self._val(ops[0]) & 0xFF
            elif op == "sxth":
                v = self._val(ops[0]) & 0xFFFF
                regs[instr.dst.phys] = (v - 65536 if v >= 32768 else v) & M32
            elif op == "uxth":
                regs[instr.dst.phys] = self._val(ops[0]) & 0xFFFF
            elif op == "checkpoint":
                self._take_checkpoint(instr.cause)
            elif op == "cpsid":
                self.interrupts_enabled = False
            elif op == "cpsie":
                self.interrupts_enabled = True
                if self.pending_interrupt:
                    self.pending_interrupt = False
                    self._fire_interrupt()
            elif op == "nop":
                pass
            else:
                raise EmulationError(f"cannot execute {instr!r}")

            if taken_branch:
                cost += costs.pipeline_refill
            stats.cycles += cost
            self.region_cycles += cost
            period_used += cost
            self.pc += 1

            # JIT checkpoint: the comparator sees the capacitor voltage
            # crossing the configured threshold; the device saves state
            # and sleeps out the remainder of the discharge.  A period
            # that started below the threshold collapsed too fast for the
            # comparator (handled at period start).
            if (
                self.jit_checkpoint_threshold is not None
                and budget is not None
                and not self._jit_fired
                and budget - period_used <= self.jit_checkpoint_threshold
            ):
                self._jit_fired = True
                jit_cost = costs.checkpoint_cycles
                stats.cycles += jit_cost
                self.region_cycles += jit_cost
                period_used += jit_cost
                self._take_checkpoint("jit", next_pc=self.pc)
                period_used = budget  # sleep until the brown-out

            # periodic timer interrupt
            if self._next_interrupt is not None and stats.cycles >= self._next_interrupt:
                self._next_interrupt += self.interrupt_interval
                if self.interrupts_enabled:
                    self._fire_interrupt()
                else:
                    self.pending_interrupt = True

    # -- post-run inspection ---------------------------------------------------
    def read_global(self, name: str, count: int = 1, size: int = 4, signed: bool = False):
        """Read a global scalar or array from memory after (or during) a
        run.  Returns an int for ``count == 1``, else a list."""
        addr = self.program.global_addr[name]
        values = []
        for i in range(count):
            raw = int.from_bytes(
                self.memory[addr + i * size : addr + (i + 1) * size], "little"
            )
            if signed and raw >= 1 << (8 * size - 1):
                raw -= 1 << (8 * size)
            values.append(raw)
        return values[0] if count == 1 else values
