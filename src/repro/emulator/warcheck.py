"""WAR-violation absence verification (paper §5.1.1).

Every memory access of the emulated program is checked: within one
idempotent region (the span between two checkpoints), a store to an
address whose *first* access in the region was a load is a WAR violation
— re-executing the region after a power failure would make that load
observe the new value.  Unlike the middle-end analysis, this checker sees
back-end and runtime traffic too (spills, pops, interrupt stacking),
matching the paper's extension of Maioli et al.'s verification into the
back end.

Findings can be exported as :class:`~repro.diagnostics.Diagnostic` values
(level ``dynamic``) so they share one stream with the static verifiers —
the cross-check tests rely on the static verdict implying the dynamic
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..diagnostics import Diagnostic, ERROR, LEVEL_DYNAMIC, SourceLoc


@dataclass
class Violation:
    address: int
    pc: int
    function: str
    region_index: int
    #: Source location of the offending store, when the program carries
    #: debug locations (threaded frontend -> IR -> machine IR).
    loc: Optional[SourceLoc] = None

    def __str__(self):
        where = f", {self.loc}" if self.loc is not None and self.loc.known else ""
        return (
            f"WAR violation: store to 0x{self.address:x} after a load in the "
            f"same idempotent region (pc={self.pc}, fn={self.function}, "
            f"region #{self.region_index}{where})"
        )

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            severity=ERROR,
            code="war-dynamic",
            message=(
                f"store to 0x{self.address:x} overwrote a location first "
                f"read in the same idempotent region (pc={self.pc})"
            ),
            function=self.function,
            region=f"#{self.region_index}",
            level=LEVEL_DYNAMIC,
            loc=self.loc,
        )


class WARChecker:
    """Tracks first-accesses per idempotent region, byte-granular."""

    READ = 1
    WRITE = 2

    def __init__(self, record_all: bool = False):
        self._first: Dict[int, int] = {}
        self.violations: List[Violation] = []
        self.region_index = 0
        self.record_all = record_all

    def on_read(self, address: int, size: int) -> None:
        first = self._first
        for a in range(address, address + size):
            if a not in first:
                first[a] = self.READ

    def on_write(
        self,
        address: int,
        size: int,
        pc: int = -1,
        function: str = "?",
        loc: Optional[SourceLoc] = None,
    ) -> None:
        first = self._first
        for a in range(address, address + size):
            kind = first.get(a)
            if kind is None:
                first[a] = self.WRITE
            elif kind == self.READ:
                self.violations.append(
                    Violation(a, pc, function, self.region_index, loc)
                )
                if not self.record_all:
                    # Record one violation per (region, address): promote
                    # to WRITE so a loop does not flood the list.
                    first[a] = self.WRITE

    def on_checkpoint(self) -> None:
        """A checkpoint ends the current idempotent region."""
        self._first.clear()
        self.region_index += 1

    def on_power_restore(self) -> None:
        """Restoration re-enters the region after the last checkpoint."""
        self._first.clear()

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_diagnostics(self) -> List[Diagnostic]:
        return [v.to_diagnostic() for v in self.violations]
