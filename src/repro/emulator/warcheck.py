"""WAR-violation absence verification (paper §5.1.1).

Every memory access of the emulated program is checked: within one
idempotent region (the span between two checkpoints), a store to an
address whose *first* access in the region was a load is a WAR violation
— re-executing the region after a power failure would make that load
observe the new value.  Unlike the middle-end analysis, this checker sees
back-end and runtime traffic too (spills, pops, interrupt stacking),
matching the paper's extension of Maioli et al.'s verification into the
back end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Violation:
    address: int
    pc: int
    function: str
    region_index: int

    def __str__(self):
        return (
            f"WAR violation: store to 0x{self.address:x} after a load in the "
            f"same idempotent region (pc={self.pc}, fn={self.function}, "
            f"region #{self.region_index})"
        )


class WARChecker:
    """Tracks first-accesses per idempotent region, byte-granular."""

    READ = 1
    WRITE = 2

    def __init__(self, record_all: bool = False):
        self._first: Dict[int, int] = {}
        self.violations: List[Violation] = []
        self.region_index = 0
        self.record_all = record_all

    def on_read(self, address: int, size: int) -> None:
        first = self._first
        for a in range(address, address + size):
            if a not in first:
                first[a] = self.READ

    def on_write(self, address: int, size: int, pc: int = -1, function: str = "?") -> None:
        first = self._first
        for a in range(address, address + size):
            kind = first.get(a)
            if kind is None:
                first[a] = self.WRITE
            elif kind == self.READ:
                self.violations.append(Violation(a, pc, function, self.region_index))
                if not self.record_all:
                    # Record one violation per (region, address): promote
                    # to WRITE so a loop does not flood the list.
                    first[a] = self.WRITE

    def on_checkpoint(self) -> None:
        """A checkpoint ends the current idempotent region."""
        self._first.clear()
        self.region_index += 1

    def on_power_restore(self) -> None:
        """Restoration re-enters the region after the last checkpoint."""
        self._first.clear()

    @property
    def clean(self) -> bool:
        return not self.violations
