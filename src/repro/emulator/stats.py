"""Execution statistics (paper §5.1.1, Performance Statistics Collection):
executed cycles, executed checkpoints and their causes, idempotent region
sizes, and power-failure/re-execution accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExecutionStats:
    instructions: int = 0
    cycles: int = 0                      # total on-time cycles spent
    checkpoints: int = 0                 # executed checkpoints
    checkpoint_causes: Dict[str, int] = field(default_factory=dict)
    region_sizes: List[int] = field(default_factory=list)
    power_failures: int = 0
    boot_cycles: int = 0                 # cycles spent booting/restoring
    reexecuted_cycles: int = 0           # cycles lost to re-execution
    interrupts: int = 0
    halted: bool = False
    call_counts: Dict[str, int] = field(default_factory=dict)  # per callee
    #: cycles of the trailing partial region (last checkpoint → halt);
    #: not in ``region_sizes``, which only records committed checkpoints
    final_region_cycles: int = 0

    def record_checkpoint(self, cause: str, region_cycles: int) -> None:
        self.checkpoints += 1
        self.checkpoint_causes[cause] = self.checkpoint_causes.get(cause, 0) + 1
        self.region_sizes.append(region_cycles)

    # -- region statistics (paper Figure 7) ------------------------------
    def region_percentile(self, q: float) -> float:
        data = sorted(self.region_sizes)
        if not data:
            return 0.0
        pos = (len(data) - 1) * q
        lower = int(pos)
        upper = min(lower + 1, len(data) - 1)
        frac = pos - lower
        return data[lower] * (1 - frac) + data[upper] * frac

    @property
    def region_median(self) -> float:
        return self.region_percentile(0.5)

    @property
    def region_mean(self) -> float:
        return sum(self.region_sizes) / len(self.region_sizes) if self.region_sizes else 0.0

    @property
    def region_max(self) -> int:
        return max(self.region_sizes) if self.region_sizes else 0

    @property
    def max_region_cycles(self) -> int:
        """Largest observed inter-checkpoint gap, *including* the
        trailing partial region that ends at halt rather than at a
        checkpoint (the quantity the static progress certifier bounds —
        see :mod:`repro.analysis.progress`)."""
        return max(self.region_max, self.final_region_cycles)

    def summary(self) -> str:
        causes = ", ".join(
            f"{k}={v}" for k, v in sorted(self.checkpoint_causes.items())
        )
        return (
            f"{self.instructions} instrs, {self.cycles} cycles, "
            f"{self.checkpoints} checkpoints ({causes}), "
            f"{self.power_failures} power failures"
        )
