"""repro.faultinject — deterministic power-failure fault injection with
differential crash-consistency certification.

The stochastic supplies (``FixedPeriodPower``, ``TracePower``) sample
failures blindly; this subsystem *aims* them.  A campaign

1. **harvests** an event map per (benchmark, environment) pair — one
   continuous-power run with :class:`~repro.emulator.events.EventTrace`
   recording every checkpoint commit, first-region store, and
   interrupt-masked epilogue window;
2. **plans** a deterministic set of failure schedules
   (:mod:`repro.faultinject.plan`) targeting each event ±ε, post-restore
   double failures, and a budget of log-uniform interior points;
3. **executes** the schedules via
   :class:`~repro.emulator.power.SchedulePower` on the parallel
   engine of :mod:`repro.eval.runner`, with every cell content-addressed
   in :mod:`repro.cache` (interrupted campaigns resume for free);
4. **certifies** each run differentially against the oracle — final NVM
   image digest, declared benchmark outputs, and the dynamic WAR-checker
   verdict must all match continuous power — and **shrinks** any failing
   schedule to a minimal failure-point set;
5. **reports** text/JSON plus per-point observability counters, and
   exports findings as ``campaign``-level
   :class:`~repro.diagnostics.Diagnostic` values.

Entry points: :func:`run_campaign` (library) and ``python -m repro
inject`` (CLI).
"""

from .campaign import (
    CampaignConfig,
    CellOutcome,
    Judged,
    OracleRecord,
    PairResult,
    full_config,
    quick_config,
    run_campaign,
    shrink_schedule,
)
from .differential import (
    DifferentialConfig,
    DifferentialReport,
    ProgressDifferentialConfig,
    ProgressReport,
    full_differential_config,
    full_progress_config,
    quick_differential_config,
    quick_progress_config,
    run_differential,
    run_progress_differential,
)
from .plan import PlanConfig, plan_schedules
from .report import CampaignReport

__all__ = [
    "CampaignConfig", "CampaignReport", "CellOutcome", "Judged",
    "OracleRecord", "PairResult", "PlanConfig",
    "DifferentialConfig", "DifferentialReport",
    "ProgressDifferentialConfig", "ProgressReport",
    "full_config", "full_differential_config", "full_progress_config",
    "plan_schedules",
    "quick_config", "quick_differential_config", "quick_progress_config",
    "run_campaign", "run_differential", "run_progress_differential",
    "shrink_schedule",
]
