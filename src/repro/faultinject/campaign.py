"""Campaign execution: harvest → plan → replay → certify → shrink.

A *campaign* sweeps (benchmark × environment) pairs.  For each pair it
runs the compiled program once under continuous power — the **oracle** —
recording the final NVM image digest, the declared benchmark outputs,
the dynamic WAR verdict, and the event map; plans a deterministic
schedule set (:mod:`repro.faultinject.plan`); replays every schedule via
:class:`~repro.emulator.power.SchedulePower`; and certifies each replay
**differentially**: final memory, outputs, and WAR verdict must match
the oracle.  Any failing schedule is shrunk to a minimal failure-point
subsequence before it is reported.

Execution reuses the parallel evaluation engine of PR 4: cells fan out
over :func:`repro.eval.runner.map_ordered` (``--jobs`` /
``REPRO_JOBS``), every worker shares the content-addressed
:mod:`repro.cache`, and both oracle records and cell outcomes are
persisted under ``inject-`` keys — so campaigns are resumable (an
interrupted campaign replays completed cells from disk) and
deterministic across repetition and worker counts (results merge in
submission order; planning never depends on execution).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Tuple, Union

from ..benchsuite import BENCHMARKS, compile_benchmark, get_benchmark
from ..cache import inject_key, resolve_cache
from ..core.pipeline import EnvironmentConfig, environment
from ..emulator import (
    DEFAULT_COSTS,
    EmulationError,
    EventTrace,
    Machine,
    NoForwardProgress,
    SchedulePower,
)
from ..eval.runner import _worker_caches, map_ordered, worker_cache
from .plan import PlanConfig, Schedule, plan_schedules

Env = Union[str, EnvironmentConfig]


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: which pairs to sweep and how hard to try."""

    benches: Tuple[str, ...]
    envs: Tuple[Env, ...]
    seed: int = 0
    event_cap: int = 6
    interior_points: int = 8
    post_restore: int = 2
    max_schedules: int = 0          #: per-pair cap (0 = unlimited)
    jobs: Optional[int] = None      #: worker processes (None = default)
    #: fire a timer interrupt every N cycles (hardware stacking through
    #: the WAR checker).  ``None`` — no interrupt load (the historical
    #: campaign).  Differential campaigns use a small interval so seeded
    #: epilogue bugs (exposed frame releases) are observable dynamically.
    interrupt_interval: Optional[int] = None


def full_config(**overrides) -> CampaignConfig:
    """The six-benchmark suite under ``wario``, ``ratchet`` and their
    elision-optimised counterparts."""
    defaults = dict(
        benches=tuple(BENCHMARKS),
        envs=("wario", "ratchet", "wario-opt", "ratchet-opt"),
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def quick_config(**overrides) -> CampaignConfig:
    """The CI-sized smoke campaign: two benchmarks, tiny budgets.

    ``wario-opt`` rides along so every elided build is exercised against
    the continuous-power oracle on each CI run."""
    defaults = dict(
        benches=("crc", "sha"),
        envs=("wario", "ratchet", "wario-opt"),
        event_cap=2,
        interior_points=2,
        post_restore=1,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def env_name(env: Env) -> str:
    return env if isinstance(env, str) else env.name


def _pair_seed(seed: int, bench: str, env: Env) -> int:
    """A stable per-pair RNG seed (sha256, not the randomised hash())."""
    blob = f"{seed}:{bench}:{env_name(env)}:{environment(env)!r}"
    return int.from_bytes(hashlib.sha256(blob.encode()).digest()[:8], "big")


#: Memory bytes below this bound hold the globals (data section); the
#: top of the address space is the stack.  Campaigns under an interrupt
#: load digest only the data section: hardware exception stacking leaves
#: residue in dead stack bytes that differs with interrupt timing but is
#: architecturally invisible to the program.
DATA_DIGEST_LIMIT = 0xF0000


def _digest_memory(machine: Machine,
                   interrupt_interval: Optional[int]) -> str:
    view = machine.memory
    if interrupt_interval is not None:
        view = view[:DATA_DIGEST_LIMIT]
    return hashlib.sha256(view).hexdigest()


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


@dataclass
class OracleRecord:
    """The continuous-power ground truth of one (bench, env) pair."""

    memory_digest: str
    outputs_ok: bool
    war_clean: bool
    instructions: int
    cycles: int
    checkpoints: int
    #: harvested event map, ``(kind, cycle, pc, detail)`` tuples
    events: List[Tuple[str, int, int, str]] = field(default_factory=list)


@dataclass
class CellOutcome:
    """One schedule replay, before differential judgment."""

    schedule: Schedule
    memory_digest: str = ""
    outputs_ok: bool = False
    war_violations: int = 0
    halted: bool = False
    error: str = ""                  #: emulator abort, "" on completion
    instructions: int = 0
    cycles: int = 0
    checkpoints: int = 0
    power_failures: int = 0
    boot_cycles: int = 0
    reexecuted_cycles: int = 0


#: cell verdicts, in decreasing severity order
VERDICTS = ("error", "starved", "war", "divergent-memory",
            "divergent-output", "pass")


@dataclass
class Judged:
    """A cell outcome plus its differential verdict."""

    outcome: CellOutcome
    verdict: str
    reason: str = ""
    #: minimal failing subsequence (failing cells only)
    shrunk: Optional[Schedule] = None


@dataclass
class PairResult:
    """Everything the campaign learned about one (bench, env) pair."""

    bench: str
    env: str
    oracle: OracleRecord
    judged: List[Judged] = field(default_factory=list)

    @property
    def findings(self) -> List[Judged]:
        return [j for j in self.judged if j.verdict != "pass"]

    @property
    def oracle_clean(self) -> bool:
        return self.oracle.outputs_ok and self.oracle.war_clean

    @property
    def certified(self) -> bool:
        return self.oracle_clean and not self.findings


# ---------------------------------------------------------------------------
# Cell execution (module-level so pool workers can pickle it)
# ---------------------------------------------------------------------------


def _outputs_match(bench, machine: Machine) -> bool:
    expected = bench.expected()
    for output in bench.outputs:
        got = machine.read_global(
            output.name, output.count, output.size, output.signed
        )
        if got != expected[output.name]:
            return False
    return True


def _execute_oracle(
    bench_name: str, env: Env, cache=None,
    interrupt_interval: Optional[int] = None,
) -> OracleRecord:
    """One continuous-power run with event tracing (disk-cached)."""
    bench = get_benchmark(bench_name)
    program = compile_benchmark(bench, env, None, cache=cache)
    store = resolve_cache(cache)
    key = None
    if store is not None and program.cache_key:
        key = inject_key(program.cache_key, (), True,
                         bench.max_instructions, repr(DEFAULT_COSTS),
                         interrupt_interval=interrupt_interval)
        hit = store.get(key)
        if hit is not None:
            return hit
    trace = EventTrace()
    machine = Machine(program, war_check=True, trace=trace,
                      interrupt_interval=interrupt_interval)
    stats = machine.run(max_instructions=bench.max_instructions)
    record = OracleRecord(
        memory_digest=_digest_memory(machine, interrupt_interval),
        outputs_ok=_outputs_match(bench, machine),
        war_clean=machine.war.clean,
        instructions=stats.instructions,
        cycles=stats.cycles,
        checkpoints=stats.checkpoints,
        events=trace.as_tuples(),
    )
    if key is not None:
        store.put(key, record)
    return record


def _execute_schedule(
    bench_name: str, env: Env, schedule: Schedule, cache=None,
    interrupt_interval: Optional[int] = None,
) -> CellOutcome:
    """Replay one failure schedule (disk-cached under its inject key)."""
    bench = get_benchmark(bench_name)
    program = compile_benchmark(bench, env, None, cache=cache)
    store = resolve_cache(cache)
    key = None
    if store is not None and program.cache_key:
        key = inject_key(program.cache_key, schedule, True,
                         bench.max_instructions, repr(DEFAULT_COSTS),
                         interrupt_interval=interrupt_interval)
        hit = store.get(key)
        if hit is not None:
            return hit
    machine = Machine(program, war_check=True,
                      interrupt_interval=interrupt_interval)
    error = ""
    try:
        stats = machine.run(
            power=SchedulePower(schedule),
            max_instructions=bench.max_instructions,
        )
    except NoForwardProgress as exc:
        error = f"NoForwardProgress: {exc}"
        stats = machine.stats
    except EmulationError as exc:
        error = f"{type(exc).__name__}: {exc}"
        stats = machine.stats
    outcome = CellOutcome(
        schedule=tuple(schedule),
        memory_digest=(
            "" if error else _digest_memory(machine, interrupt_interval)
        ),
        outputs_ok=False if error else _outputs_match(bench, machine),
        war_violations=len(machine.war.violations),
        halted=stats.halted,
        error=error,
        instructions=stats.instructions,
        cycles=stats.cycles,
        checkpoints=stats.checkpoints,
        power_failures=stats.power_failures,
        boot_cycles=stats.boot_cycles,
        reexecuted_cycles=stats.reexecuted_cycles,
    )
    if key is not None:
        store.put(key, outcome)
    return outcome


def _oracle_worker(payload) -> OracleRecord:
    bench_name, env, cache_dir, use_disk, interrupt_interval = payload
    return _execute_oracle(
        bench_name, env, worker_cache(cache_dir, use_disk),
        interrupt_interval=interrupt_interval,
    )


def _cell_worker(payload) -> CellOutcome:
    bench_name, env, schedule, cache_dir, use_disk, interrupt_interval = payload
    return _execute_schedule(
        bench_name, env, schedule, worker_cache(cache_dir, use_disk),
        interrupt_interval=interrupt_interval,
    )


# ---------------------------------------------------------------------------
# Differential certification + shrinking
# ---------------------------------------------------------------------------


def certify_outcome(
    outcome: CellOutcome, oracle: OracleRecord
) -> Tuple[str, str]:
    """Judge one replay against the oracle → ``(verdict, reason)``."""
    if outcome.error:
        if outcome.error.startswith("NoForwardProgress"):
            return "starved", outcome.error
        return "error", outcome.error
    if outcome.war_violations and oracle.war_clean:
        return (
            "war",
            f"{outcome.war_violations} dynamic WAR violations "
            f"(the continuous-power oracle is clean)",
        )
    if outcome.memory_digest != oracle.memory_digest:
        return (
            "divergent-memory",
            "final NVM image diverges from the continuous-power oracle",
        )
    if not outcome.outputs_ok:
        return (
            "divergent-output",
            "declared outputs diverge from the reference results",
        )
    return "pass", ""


def shrink_schedule(
    bench_name: str,
    env: Env,
    schedule: Schedule,
    oracle: OracleRecord,
    cache=None,
    interrupt_interval: Optional[int] = None,
) -> Schedule:
    """Minimise a failing schedule to a smallest failing subsequence.

    Tries every proper subsequence in increasing size (lexicographic
    within a size — deterministic), re-replaying each through the cell
    cache, and returns the first one that still fails; planned schedules
    have at most a handful of points, so this exhaustive ddmin is cheap.
    The empty subsequence is the oracle itself and passes by definition.
    """
    if len(schedule) <= 1:
        return tuple(schedule)
    for size in range(1, len(schedule)):
        for picked in combinations(range(len(schedule)), size):
            candidate = tuple(schedule[i] for i in picked)
            outcome = _execute_schedule(
                bench_name, env, candidate, cache,
                interrupt_interval=interrupt_interval,
            )
            if certify_outcome(outcome, oracle)[0] != "pass":
                return candidate
    return tuple(schedule)


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------


def run_campaign(config: CampaignConfig, cache=None):
    """Run a full campaign; returns a
    :class:`~repro.faultinject.report.CampaignReport`.

    ``cache`` follows :func:`repro.cache.resolve_cache` (``None`` —
    process-wide disk cache, ``False`` — no caching, instance — pinned
    directory).  All phases are deterministic functions of ``config``
    and the toolchain, so repeated invocations — including after an
    interruption, or with a different ``jobs`` — produce identical
    reports, with completed cells replayed from the cache.
    """
    from .report import CampaignReport

    store = resolve_cache(cache)
    use_disk = store is not None
    cache_dir = store.directory if use_disk else None
    if use_disk:
        # the serial (jobs=1) path runs workers in-process: point them
        # at the caller's instance so its memory layer and counters see
        # every cell
        _worker_caches[cache_dir] = store
    pairs = [(bench, env) for bench in config.benches for env in config.envs]

    # Phase 1 — continuous-power oracles + event maps, in parallel.
    oracles = map_ordered(
        _oracle_worker,
        [(bench, env, cache_dir, use_disk, config.interrupt_interval)
         for bench, env in pairs],
        config.jobs,
    )

    # Phase 2 — plan every pair's schedule set (pure, deterministic).
    plans: List[List[Schedule]] = []
    for (bench, env), oracle in zip(pairs, oracles):
        plan = plan_schedules(
            oracle.events,
            oracle.cycles,
            DEFAULT_COSTS,
            PlanConfig(
                seed=_pair_seed(config.seed, bench, env),
                event_cap=config.event_cap,
                interior_points=config.interior_points,
                post_restore=config.post_restore,
                max_schedules=config.max_schedules,
            ),
        )
        plans.append(plan)

    # Phase 3 — replay every cell of every pair through one flat fan-out.
    payloads = [
        (bench, env, schedule, cache_dir, use_disk,
         config.interrupt_interval)
        for (bench, env), plan in zip(pairs, plans)
        for schedule in plan
    ]
    outcomes = map_ordered(_cell_worker, payloads, config.jobs)

    # Phase 4 — certify differentially, shrink the failures.
    results: List[PairResult] = []
    cursor = 0
    for (bench, env), oracle, plan in zip(pairs, oracles, plans):
        judged: List[Judged] = []
        for schedule in plan:
            outcome = outcomes[cursor]
            cursor += 1
            verdict, reason = certify_outcome(outcome, oracle)
            entry = Judged(outcome, verdict, reason)
            if verdict != "pass":
                entry.shrunk = shrink_schedule(
                    bench, env, outcome.schedule, oracle,
                    store if store is not None else False,
                    interrupt_interval=config.interrupt_interval,
                )
            judged.append(entry)
        results.append(
            PairResult(bench=bench, env=env_name(env), oracle=oracle,
                       judged=judged)
        )
    return CampaignReport(config=config, pairs=results)


__all__ = [
    "CampaignConfig", "CellOutcome", "Judged", "OracleRecord",
    "PairResult", "VERDICTS", "certify_outcome", "env_name",
    "full_config", "quick_config", "run_campaign", "shrink_schedule",
]
