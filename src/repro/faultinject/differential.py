"""Differential validation: the static idempotence certifier vs. the
fault-injection campaign, over the same (benchmark, environment) cells.

Each cell is judged twice:

* **statically** — ``repro lint`` at ``level="full"`` (region dataflow,
  machine verifiers, and the idempotence certifier of
  :mod:`repro.analysis.idempotence`);
* **dynamically** — a fault-injection campaign under a periodic
  interrupt load (:class:`~repro.faultinject.CampaignConfig` with
  ``interrupt_interval`` set), whose continuous-power oracle and
  power-failure replays observe real re-execution behaviour.

The two verdicts are then cross-checked:

===============  ===============  ==================================
static           dynamic          agreement
===============  ===============  ==================================
certified        clean            ``agree-clean``
violated         dirty            ``agree-dirty``
certified        dirty            ``unsound`` — **hard failure**: the
                                  certifier signed off on a program the
                                  campaign broke
violated         clean            ``incomplete`` — hard failure when
                                  the cell carries a seeded bug knob
                                  (the campaign *must* observe a true
                                  positive); a warning otherwise
                                  (static over-approximation is
                                  permitted)
===============  ===============  ==================================

Seeded mutation knobs (``EnvironmentConfig.drop_checkpoint`` /
``skip_pop_conversion`` / ``drop_epilog_mask`` /
``force_unsafe_elision``) provide known-bad cells so the harness
validates both directions: the certifier must flag every seeded bug,
and the campaign must reproduce each one dynamically in the same cell.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..core.pipeline import ENVIRONMENTS, environment
from ..diagnostics import ERROR, LEVEL_CAMPAIGN, WARNING, Diagnostic
from .campaign import CampaignConfig, Env, env_name, run_campaign

#: cell agreement classes
AGREE_CLEAN = "agree-clean"
AGREE_DIRTY = "agree-dirty"
UNSOUND = "unsound"
INCOMPLETE = "incomplete"

AGREEMENTS = (AGREE_CLEAN, AGREE_DIRTY, UNSOUND, INCOMPLETE)


def seeded_knobs(env: Env) -> Tuple[str, ...]:
    """The fault-seeding knobs a cell's environment carries."""
    config = environment(env)
    knobs = []
    if config.drop_checkpoint is not None:
        knobs.append(f"drop_checkpoint={config.drop_checkpoint}")
    if config.skip_pop_conversion:
        knobs.append("skip_pop_conversion")
    if config.drop_epilog_mask:
        knobs.append("drop_epilog_mask")
    if config.force_unsafe_elision is not None:
        knobs.append(f"force_unsafe_elision={config.force_unsafe_elision}")
    return tuple(knobs)


@dataclass(frozen=True)
class DifferentialConfig:
    """One differential run: explicit (bench, env) cells, not a product
    sweep — mutant environments pair with the program that exposes their
    seeded bug."""

    cells: Tuple[Tuple[str, Env], ...]
    seed: int = 0
    event_cap: int = 2
    interior_points: int = 2
    post_restore: int = 1
    max_schedules: int = 0
    jobs: Optional[int] = None
    #: periodic timer-interrupt load for every dynamic run; exposed
    #: epilogue frame releases are only dynamically observable when
    #: hardware stacking can land inside the unprotected window
    interrupt_interval: Optional[int] = 3


def _mutant_cells() -> List[Tuple[str, Env]]:
    """The four seeded true-positive cells, one per mutation knob,
    each paired with the program that makes the bug observable.

    ``xcall`` carries all four: its live middle-end checkpoint is
    index 1 (index 0 lands in the inlined-away ``work`` copy — the same
    counting ``force_unsafe_elision`` uses, so index 1 force-elides a
    checkpoint whose merged-region sub-proofs demonstrably fail), its
    Ratchet epilogues pop callee-saved groups, and its cross-call frame
    read makes the exposed WARio release reachable only through the
    certifier's mod/ref facts.
    """
    return [
        ("xcall", replace(
            ENVIRONMENTS["wario"],
            name="wario+drop-checkpoint", drop_checkpoint=1,
        )),
        ("xcall", replace(
            ENVIRONMENTS["ratchet"],
            name="ratchet+skip-pop-conversion", skip_pop_conversion=True,
        )),
        ("xcall", replace(
            ENVIRONMENTS["wario-summaries"],
            name="wario-summaries+drop-epilog-mask", drop_epilog_mask=True,
        )),
        ("xcall", replace(
            ENVIRONMENTS["wario-opt"],
            name="wario-opt+force-unsafe-elision", force_unsafe_elision=1,
        )),
    ]


def quick_differential_config(**overrides) -> DifferentialConfig:
    """The CI/test-sized run: the ``xcall`` diagnostic under its clean
    environments plus the four seeded mutants (seconds, not minutes)."""
    cells = [
        ("xcall", "wario"),
        ("xcall", "ratchet"),
        ("xcall", "wario-summaries"),
        ("xcall", "wario-opt"),
    ] + _mutant_cells()
    defaults = dict(cells=tuple(cells))
    defaults.update(overrides)
    return DifferentialConfig(**defaults)


def full_differential_config(**overrides) -> DifferentialConfig:
    """The thorough run: a clean benchmark × environment matrix plus the
    four seeded mutants."""
    cells = [
        (bench, env)
        for bench in ("crc", "sha", "xcall")
        for env in ("wario", "ratchet", "wario-summaries",
                    "wario-opt", "ratchet-opt")
    ] + _mutant_cells()
    defaults = dict(cells=tuple(cells))
    defaults.update(overrides)
    return DifferentialConfig(**defaults)


@dataclass
class CellVerdict:
    """Both verdicts for one cell, plus their agreement class."""

    bench: str
    env: str
    knobs: Tuple[str, ...]
    static_certified: bool
    static_codes: Tuple[str, ...]
    static_functions: Tuple[str, ...]
    dynamic_clean: bool
    dynamic_reasons: Tuple[str, ...]
    agreement: str

    @property
    def hard_failure(self) -> bool:
        if self.agreement == UNSOUND:
            return True
        return self.agreement == INCOMPLETE and bool(self.knobs)


@dataclass
class DifferentialReport:
    """The outcome of one :func:`run_differential`."""

    config: DifferentialConfig
    cells: List[CellVerdict] = field(default_factory=list)

    @property
    def failures(self) -> List[CellVerdict]:
        return [cell for cell in self.cells if cell.hard_failure]

    @property
    def certified(self) -> bool:
        """True iff no cell is a hard differential failure."""
        return not self.failures

    def to_dict(self):
        return {
            "certified": self.certified,
            "cells": [
                {
                    "bench": cell.bench,
                    "env": cell.env,
                    "knobs": list(cell.knobs),
                    "static": {
                        "certified": cell.static_certified,
                        "codes": list(cell.static_codes),
                        "functions": list(cell.static_functions),
                    },
                    "dynamic": {
                        "clean": cell.dynamic_clean,
                        "reasons": list(cell.dynamic_reasons),
                    },
                    "agreement": cell.agreement,
                    "hard_failure": cell.hard_failure,
                }
                for cell in self.cells
            ],
            "config": {
                "cells": [
                    [bench, env_name(env)] for bench, env in self.config.cells
                ],
                "seed": self.config.seed,
                "interrupt_interval": self.config.interrupt_interval,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = []
        for cell in self.cells:
            static = "certified" if cell.static_certified else (
                "violated(" + ",".join(cell.static_codes) + ")"
            )
            dynamic = "clean" if cell.dynamic_clean else (
                "dirty(" + "; ".join(cell.dynamic_reasons) + ")"
            )
            mark = "FAIL" if cell.hard_failure else "ok"
            knobs = f" [{','.join(cell.knobs)}]" if cell.knobs else ""
            lines.append(
                f"{mark:>4s} {cell.bench:>8s} × {cell.env:<32s}"
                f" {cell.agreement:<12s} static={static} dynamic={dynamic}"
                f"{knobs}"
            )
        verdict = "AGREE" if self.certified else "DISAGREE"
        lines.append(
            f"differential {verdict}: "
            f"{len(self.cells) - len(self.failures)}/{len(self.cells)} "
            f"cells consistent"
        )
        return "\n".join(lines)

    def diagnostics(self) -> List[Diagnostic]:
        """Export disagreements: ``differential-unsound`` (ERROR) when
        the certifier signed off on a dynamically broken cell,
        ``differential-missed`` (ERROR) when the campaign failed to
        reproduce a seeded bug, ``differential-incomplete`` (WARNING)
        for permitted static over-approximation."""
        out = []
        for cell in self.cells:
            where = f"{cell.bench}/{cell.env}"
            if cell.agreement == UNSOUND:
                out.append(Diagnostic(
                    ERROR, "differential-unsound",
                    f"{where}: statically certified idempotent, but the "
                    f"injection campaign found: "
                    + "; ".join(cell.dynamic_reasons),
                    function=cell.bench, level=LEVEL_CAMPAIGN,
                ))
            elif cell.agreement == INCOMPLETE and cell.knobs:
                out.append(Diagnostic(
                    ERROR, "differential-missed",
                    f"{where}: seeded bug ({', '.join(cell.knobs)}) "
                    f"flagged statically "
                    f"({', '.join(cell.static_codes)}) but the campaign "
                    f"observed no dynamic divergence",
                    function=cell.bench, level=LEVEL_CAMPAIGN,
                ))
            elif cell.agreement == INCOMPLETE:
                out.append(Diagnostic(
                    WARNING, "differential-incomplete",
                    f"{where}: static findings "
                    f"({', '.join(cell.static_codes)}) not reproduced "
                    f"dynamically (over-approximation)",
                    function=cell.bench, level=LEVEL_CAMPAIGN,
                ))
        return out


def _static_verdict(bench_name: str, env: Env, cache):
    """Run the full-depth lint over one cell."""
    from ..benchsuite import get_benchmark
    from ..core.lint import lint_sources

    bench = get_benchmark(bench_name)
    result = lint_sources(
        bench.source, env, name=bench_name, cache=cache, level="full"
    )
    errors = [d for d in result.engine.diagnostics if d.severity == ERROR]
    codes = tuple(sorted({d.code for d in errors}))
    functions = tuple(sorted({d.function for d in errors if d.function}))
    return result.certified, codes, functions


def _dynamic_verdict(bench_name: str, env: Env,
                     config: DifferentialConfig, cache):
    """Run the injection campaign over one cell."""
    campaign = CampaignConfig(
        benches=(bench_name,),
        envs=(env,),
        seed=config.seed,
        event_cap=config.event_cap,
        interior_points=config.interior_points,
        post_restore=config.post_restore,
        max_schedules=config.max_schedules,
        jobs=config.jobs,
        interrupt_interval=config.interrupt_interval,
    )
    report = run_campaign(campaign, cache=cache)
    pair = report.pairs[0]
    reasons = []
    if not pair.oracle.war_clean:
        reasons.append("continuous-power oracle is WAR-unclean")
    if not pair.oracle.outputs_ok:
        reasons.append("continuous-power oracle outputs diverge")
    for judged in pair.findings:
        schedule = judged.shrunk or judged.outcome.schedule
        points = ",".join(str(d) for d in schedule)
        reasons.append(f"schedule ({points}): {judged.verdict}")
    return pair.certified, tuple(reasons)


def _agreement(static_certified: bool, dynamic_clean: bool) -> str:
    if static_certified and dynamic_clean:
        return AGREE_CLEAN
    if not static_certified and not dynamic_clean:
        return AGREE_DIRTY
    if static_certified:
        return UNSOUND
    return INCOMPLETE


def run_differential(
    config: DifferentialConfig, cache=None
) -> DifferentialReport:
    """Cross-validate every cell; both phases share the content-addressed
    cache (``None`` — process default, ``False`` — no caching)."""
    report = DifferentialReport(config=config)
    for bench_name, env in config.cells:
        static_certified, codes, functions = _static_verdict(
            bench_name, env, cache
        )
        dynamic_clean, reasons = _dynamic_verdict(
            bench_name, env, config, cache
        )
        report.cells.append(CellVerdict(
            bench=bench_name,
            env=env_name(env),
            knobs=seeded_knobs(env),
            static_certified=static_certified,
            static_codes=codes,
            static_functions=functions,
            dynamic_clean=dynamic_clean,
            dynamic_reasons=reasons,
            agreement=_agreement(static_certified, dynamic_clean),
        ))
    return report


# ---------------------------------------------------------------------------
# Progress differential: the static forward-progress certifier
# (:mod:`repro.analysis.progress`) vs. observed execution
# ---------------------------------------------------------------------------

#: progress-cell agreement classes
PROGRESS_SOUND = "progress-sound"
PROGRESS_UNSOUND = "progress-unsound"
PROGRESS_TRUE_POSITIVE = "progress-true-positive"
PROGRESS_INCOMPLETE = "progress-incomplete"


@dataclass(frozen=True)
class ProgressDifferentialConfig:
    """One progress-differential run over explicit (bench, env) cells.

    Every dynamic run uses continuous power with **no** interrupt load
    (``interrupt_interval=None``): ISR entry/body/exit cycles land
    inside regions but are not part of the program the static bound
    covers, so they would inflate observed gaps past a perfectly sound
    bound."""

    cells: Tuple[Tuple[str, Env], ...]
    #: extra on-time cycles granted beyond the guaranteed-progress
    #: period in the starvation cross-check
    slack: int = 0
    #: region allowance for expected-starvation runs of statically
    #: unbounded cells: on-time = boot + restore + this (must be well
    #: under the real region length so the cell demonstrably starves)
    starve_window: int = 2_000


def quick_progress_config(**overrides) -> ProgressDifferentialConfig:
    """The CI/test-sized run: two suite programs plus the seeded
    ``spin`` true positive."""
    cells = [
        ("crc", "wario"),
        ("sha", "ratchet"),
        ("spin", "wario"),
    ]
    defaults = dict(cells=tuple(cells))
    defaults.update(overrides)
    return ProgressDifferentialConfig(**defaults)


def full_progress_config(**overrides) -> ProgressDifferentialConfig:
    """The thorough run: all six suite benchmarks under wario and
    ratchet, plus the seeded ``spin`` true positive under both."""
    from ..benchsuite import BENCHMARKS

    cells = [
        (bench, env)
        for bench in BENCHMARKS
        for env in ("wario", "ratchet")
    ] + [("spin", "wario"), ("spin", "ratchet")]
    defaults = dict(cells=tuple(cells))
    defaults.update(overrides)
    return ProgressDifferentialConfig(**defaults)


@dataclass
class ProgressCellVerdict:
    """Static bound vs. observed gaps for one cell."""

    bench: str
    env: str
    #: program-level static region bound (None = unbounded)
    static_bound: Optional[int]
    #: largest inter-checkpoint gap observed under continuous power
    dynamic_max_gap: int
    #: dynamic/static (None for unbounded cells)
    tightness: Optional[float]
    #: the guaranteed-progress on-time the starvation check ran at
    #: (bounded cells), or the deliberately-short on-time (unbounded)
    on_time: int
    #: 'completed' | 'starved'
    starvation: str
    agreement: str

    @property
    def hard_failure(self) -> bool:
        return self.agreement == PROGRESS_UNSOUND


@dataclass
class ProgressReport:
    """The outcome of one :func:`run_progress_differential`."""

    config: ProgressDifferentialConfig
    cells: List[ProgressCellVerdict] = field(default_factory=list)

    @property
    def failures(self) -> List[ProgressCellVerdict]:
        return [cell for cell in self.cells if cell.hard_failure]

    @property
    def certified(self) -> bool:
        return not self.failures

    def to_dict(self):
        return {
            "certified": self.certified,
            "cells": [
                {
                    "bench": cell.bench,
                    "env": cell.env,
                    "static_bound": cell.static_bound,
                    "dynamic_max_gap": cell.dynamic_max_gap,
                    "tightness": cell.tightness,
                    "on_time": cell.on_time,
                    "starvation": cell.starvation,
                    "agreement": cell.agreement,
                    "hard_failure": cell.hard_failure,
                }
                for cell in self.cells
            ],
            "config": {
                "cells": [
                    [bench, env_name(env)] for bench, env in self.config.cells
                ],
                "slack": self.config.slack,
                "starve_window": self.config.starve_window,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = []
        for cell in self.cells:
            mark = "FAIL" if cell.hard_failure else "ok"
            bound = ("unbounded" if cell.static_bound is None
                     else str(cell.static_bound))
            ratio = ("-" if cell.tightness is None
                     else f"{cell.tightness:.3f}")
            lines.append(
                f"{mark:>4s} {cell.bench:>8s} × {cell.env:<12s}"
                f" {cell.agreement:<22s} static={bound:>9s}"
                f" observed={cell.dynamic_max_gap:>8d}"
                f" tightness={ratio:>6s}"
                f" @on-time={cell.on_time}: {cell.starvation}"
            )
        verdict = "SOUND" if self.certified else "UNSOUND"
        lines.append(
            f"progress differential {verdict}: "
            f"{len(self.cells) - len(self.failures)}/{len(self.cells)} "
            f"cells consistent"
        )
        return "\n".join(lines)

    def diagnostics(self) -> List[Diagnostic]:
        """Export disagreements: ``progress-unsound`` (ERROR) when an
        observed gap exceeded its static bound or a cell certified to
        progress at budget B starved with on-time ≥ B;
        ``progress-incomplete`` (WARNING) when a statically unbounded
        cell failed to starve within its expected-starvation window."""
        out = []
        for cell in self.cells:
            where = f"{cell.bench}/{cell.env}"
            if cell.agreement == PROGRESS_UNSOUND:
                if cell.static_bound is not None \
                        and cell.dynamic_max_gap > cell.static_bound:
                    detail = (
                        f"observed inter-checkpoint gap "
                        f"{cell.dynamic_max_gap} exceeds the static bound "
                        f"{cell.static_bound}"
                    )
                else:
                    detail = (
                        f"certified to progress at {cell.static_bound} "
                        f"cycles/region but starved with on-time "
                        f"{cell.on_time}"
                    )
                out.append(Diagnostic(
                    ERROR, "progress-unsound", f"{where}: {detail}",
                    function=cell.bench, level=LEVEL_CAMPAIGN,
                ))
            elif cell.agreement == PROGRESS_INCOMPLETE:
                out.append(Diagnostic(
                    WARNING, "progress-incomplete",
                    f"{where}: statically unbounded but completed under "
                    f"on-time {cell.on_time} (over-approximation)",
                    function=cell.bench, level=LEVEL_CAMPAIGN,
                ))
        return out


def _progress_static(bench_name: str, env: Env, cache) -> Optional[int]:
    """The program-level static region bound of one cell."""
    from ..benchsuite import get_benchmark
    from ..core.lint import lint_sources

    bench = get_benchmark(bench_name)
    result = lint_sources(
        bench.source, env, name=bench_name, cache=cache, level="full"
    )
    return result.progress_bound


def _progress_dynamic(bench_name: str, env: Env, bound: Optional[int],
                      config: ProgressDifferentialConfig, cache):
    """Observe one cell: continuous-power harvest of the real
    inter-checkpoint gaps, then the starvation cross-check.

    Returns ``(max_gap, on_time, starvation)``."""
    from ..benchsuite import get_benchmark, verify_outputs
    from ..core import iclang
    from ..emulator import Machine, NoForwardProgress
    from ..emulator.costs import DEFAULT_COSTS
    from ..emulator.events import EventTrace
    from ..emulator.power import FixedPeriodPower

    bench = get_benchmark(bench_name)
    program = iclang(bench.source, env, name=bench_name, cache=cache)
    trace = EventTrace()
    machine = Machine(program, war_check=True, trace=trace)
    stats = machine.run(max_instructions=bench.max_instructions)
    max_gap = max(trace.max_checkpoint_gap(stats.cycles),
                  stats.max_region_cycles)

    costs = DEFAULT_COSTS
    overhead = costs.boot_cycles + costs.restore_cycles
    if bound is not None:
        # Guaranteed-progress on-time: boot + restore + the worst
        # region + the commit that seals it, plus one cycle so the
        # period strictly covers the region (the emulator fails a
        # period the instant cost would exceed it).
        on_time = (overhead + bound + costs.checkpoint_cycles + 1
                   + config.slack)
    else:
        on_time = overhead + config.starve_window
    replay = Machine(program, war_check=True)
    try:
        replay_stats = replay.run(
            power=FixedPeriodPower(on_time),
            max_instructions=bench.max_instructions * 4,
        )
        if replay_stats.halted:
            verify_outputs(bench, replay)
            starvation = "completed"
        else:
            starvation = "starved"
    except NoForwardProgress:
        starvation = "starved"
    return max_gap, on_time, starvation


def _progress_agreement(bound: Optional[int], max_gap: int,
                        starvation: str) -> str:
    if bound is None:
        return (PROGRESS_TRUE_POSITIVE if starvation == "starved"
                else PROGRESS_INCOMPLETE)
    if max_gap > bound or starvation == "starved":
        return PROGRESS_UNSOUND
    return PROGRESS_SOUND


def run_progress_differential(
    config: ProgressDifferentialConfig, cache=None
) -> ProgressReport:
    """Cross-validate the static progress certifier over every cell:
    no observed inter-checkpoint gap may exceed its static bound, a
    bounded cell must complete at the guaranteed-progress on-time, and
    an unbounded cell is expected to starve at a short one."""
    report = ProgressReport(config=config)
    for bench_name, env in config.cells:
        bound = _progress_static(bench_name, env, cache)
        max_gap, on_time, starvation = _progress_dynamic(
            bench_name, env, bound, config, cache
        )
        tightness = (max_gap / bound) if bound else None
        report.cells.append(ProgressCellVerdict(
            bench=bench_name,
            env=env_name(env),
            static_bound=bound,
            dynamic_max_gap=max_gap,
            tightness=tightness,
            on_time=on_time,
            starvation=starvation,
            agreement=_progress_agreement(bound, max_gap, starvation),
        ))
    return report


__all__ = [
    "AGREEMENTS", "AGREE_CLEAN", "AGREE_DIRTY", "INCOMPLETE", "UNSOUND",
    "CellVerdict", "DifferentialConfig", "DifferentialReport",
    "full_differential_config", "quick_differential_config",
    "run_differential", "seeded_knobs",
    "PROGRESS_SOUND", "PROGRESS_UNSOUND", "PROGRESS_TRUE_POSITIVE",
    "PROGRESS_INCOMPLETE",
    "ProgressCellVerdict", "ProgressDifferentialConfig", "ProgressReport",
    "full_progress_config", "quick_progress_config",
    "run_progress_differential",
]
