"""Failure-schedule planning: aim power failures at dangerous instants.

The planner turns a harvested event map (see
:class:`~repro.emulator.events.EventTrace`) into a deterministic list of
*failure schedules*.  A schedule is a tuple of power-on durations for
:class:`~repro.emulator.power.SchedulePower`: each duration ends in a
power failure, and after the last one the supply is continuous, so the
run always terminates and can be certified against the oracle.

Targets, per Surbatovich et al.'s boundary-case taxonomy:

* ``checkpoint`` events — failures immediately before the commit, inside
  the commit window (the ``checkpoint_cycles`` the runtime spends
  double-buffering), and immediately after it;
* ``war-write`` events — failures right before and right after the first
  NVM store of an idempotent region (the earliest instant at which
  re-execution is no longer trivially safe);
* ``war-violation`` events (only present for seeded-fault builds) — the
  store the dynamic checker flagged, bracketed tightly;
* ``mask`` / ``unmask`` events — failures inside the interrupt-masked
  epilogue window of the WARio frame-release protocol;
* *post-restore doubles* — two-point schedules whose second failure
  lands δ cycles after the restore completes (the restored WAR write);
* *interior points* — a seeded budget of log-uniform offsets across the
  whole execution, so coverage is not limited to what was harvested.

Everything is deterministic: event subsampling is evenly spaced, the
interior RNG is seeded from the campaign seed, and the final schedule
list is deduplicated and sorted — the same event map and configuration
always plan the same campaign, regardless of ``--jobs``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..emulator.costs import CostModel

#: a failure schedule: power-on durations, each ending in a failure
Schedule = Tuple[int, ...]


@dataclass(frozen=True)
class PlanConfig:
    """Budget knobs of one campaign plan (per benchmark × environment)."""

    seed: int = 0
    #: max targeted events per kind (evenly spaced over the trace)
    event_cap: int = 6
    #: budget of log-uniform interior failure points
    interior_points: int = 8
    #: post-restore double-failure schedules per targeted kind
    post_restore: int = 2
    #: hard cap on the total number of schedules (None = unlimited)
    max_schedules: int = 0  # 0 = unlimited


def _subsample(events: Sequence, cap: int) -> List:
    """At most ``cap`` events, evenly spaced, deterministically."""
    if cap <= 0 or len(events) <= cap:
        return list(events)
    return [events[(i * len(events)) // cap] for i in range(cap)]


def _offsets_for(kind: str, costs: CostModel) -> Tuple[int, ...]:
    """Failure offsets around an event's pre-cost cycle ``c``.

    A period of ``c + off`` cycles fails the first instruction whose
    cost would cross that boundary, so ``-1`` fires just before the
    event instruction and ``+cost+1`` just after it completes.
    """
    ckpt = costs.checkpoint_cycles
    if kind == "checkpoint":
        # before the commit, mid-commit (the double-buffer window), and
        # right after the commit became the active snapshot
        return (-1, 1 + ckpt // 2, ckpt + 1)
    if kind in ("war-write", "war-violation"):
        # stores cost 2 cycles: -1 is before the store, +3 right after
        return (-1, 3)
    if kind == "mask":
        return (-1, 1)
    if kind == "unmask":
        return (-1, 2)
    return (-1, 1)


#: kinds whose events get dedicated double (post-restore) schedules
_DOUBLE_KINDS = ("checkpoint", "war-write", "war-violation")
#: kinds the single-point targeting loop walks, in deterministic order
_TARGET_KINDS = ("checkpoint", "war-write", "war-violation", "mask", "unmask")


def plan_schedules(
    events: Iterable[Tuple[str, int, int, str]],
    total_cycles: int,
    costs: CostModel,
    config: PlanConfig = PlanConfig(),
) -> List[Schedule]:
    """Plan the deterministic failure campaign for one execution.

    ``events`` is the harvested trace (``(kind, cycle, pc, detail)``
    tuples), ``total_cycles`` the oracle's continuous-power cycle count.
    Returns schedules sorted by (length, durations) with duplicates
    removed.
    """
    by_kind: Dict[str, List[Tuple[str, int, int, str]]] = {}
    for event in events:
        by_kind.setdefault(event[0], []).append(tuple(event))

    boot = costs.boot_cycles + costs.restore_cycles
    schedules = set()

    # -- single failures aimed at each targeted event ±ε -----------------
    for kind in _TARGET_KINDS:
        picked = _subsample(by_kind.get(kind, []), config.event_cap)
        for _, cycle, _pc, _detail in picked:
            for off in _offsets_for(kind, costs):
                schedules.add((max(1, cycle + off),))

    # -- post-restore doubles: fail again δ cycles after the restore -----
    # The second period must cover boot + restore or the emulator counts
    # it as a dead period; δ=1 fires the very first re-executed
    # instruction, δ=checkpoint_cycles+1 reaches just past a re-executed
    # commit (the "immediately after a restored WAR write" case).
    deltas = (1, costs.checkpoint_cycles + 1)
    for kind in _DOUBLE_KINDS:
        picked = _subsample(by_kind.get(kind, []), config.post_restore)
        lead = 3 if kind.startswith("war") else costs.checkpoint_cycles + 1
        for _, cycle, _pc, _detail in picked:
            for delta in deltas:
                schedules.add((max(1, cycle + lead), boot + delta))

    # -- budgeted log-uniform interior points ----------------------------
    hi = max(2, total_cycles - 1)
    rng = random.Random(config.seed)
    lo_log, hi_log = math.log(1.5), math.log(hi)
    for _ in range(config.interior_points):
        point = int(math.exp(rng.uniform(lo_log, hi_log)))
        schedules.add((min(max(1, point), hi),))

    ordered = sorted(schedules, key=lambda s: (len(s), s))
    if config.max_schedules:
        ordered = ordered[: config.max_schedules]
    return ordered


__all__ = ["PlanConfig", "Schedule", "plan_schedules"]
