"""Campaign reporting: text, stable JSON, and diagnostics export.

The JSON schema is deliberately timestamp-free and fully ordered (pairs
in sweep order, cells in plan order, keys sorted) so that two campaigns
over the same configuration and toolchain produce byte-identical
reports — the determinism tests diff them directly, and CI can archive
them as artifacts without spurious churn.

Per-cell *observability counters* are derived differentially: the
re-executed instruction count is the cell's total minus the oracle's,
and the replayed-checkpoint count is the cell's commits minus the
oracle's — both measure pure crash-recovery overhead at that failure
point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from ..diagnostics import ERROR, LEVEL_CAMPAIGN, Diagnostic
from .campaign import CampaignConfig, Judged, PairResult, env_name


@dataclass
class CampaignReport:
    """The full result of one :func:`~repro.faultinject.run_campaign`."""

    config: CampaignConfig
    pairs: List[PairResult] = field(default_factory=list)

    # -- verdict ---------------------------------------------------------
    @property
    def findings(self) -> List[Judged]:
        return [j for pair in self.pairs for j in pair.findings]

    @property
    def certified(self) -> bool:
        """True iff every pair's oracle is clean and every cell passed."""
        return all(pair.certified for pair in self.pairs)

    @property
    def cells(self) -> int:
        return sum(len(pair.judged) for pair in self.pairs)

    # -- JSON ------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "benches": list(self.config.benches),
                "envs": [env_name(env) for env in self.config.envs],
                "seed": self.config.seed,
                "event_cap": self.config.event_cap,
                "interior_points": self.config.interior_points,
                "post_restore": self.config.post_restore,
                "max_schedules": self.config.max_schedules,
                "interrupt_interval": self.config.interrupt_interval,
            },
            "certified": self.certified,
            "cells": self.cells,
            "findings": len(self.findings),
            "pairs": [_pair_dict(pair) for pair in self.pairs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # -- text ------------------------------------------------------------
    def render_text(self) -> str:
        lines = []
        for pair in self.pairs:
            verdicts: Dict[str, int] = {}
            for judged in pair.judged:
                verdicts[judged.verdict] = verdicts.get(judged.verdict, 0) + 1
            passed = verdicts.pop("pass", 0)
            summary = f"{passed}/{len(pair.judged)} schedules pass"
            if verdicts:
                summary += " (" + ", ".join(
                    f"{count} {verdict}"
                    for verdict, count in sorted(verdicts.items())
                ) + ")"
            oracle_note = "" if pair.oracle_clean else "  [ORACLE UNCLEAN]"
            lines.append(
                f"{pair.bench:>10s} × {pair.env:<18s} {summary}{oracle_note}"
            )
            for judged in pair.findings:
                schedule = ",".join(str(d) for d in judged.outcome.schedule)
                line = (f"{'':>10s}   FAIL schedule=({schedule}) "
                        f"{judged.verdict}: {judged.reason}")
                if judged.shrunk is not None and \
                        judged.shrunk != judged.outcome.schedule:
                    shrunk = ",".join(str(d) for d in judged.shrunk)
                    line += f"  [shrinks to ({shrunk})]"
                lines.append(line)
        verdict = "CERTIFIED" if self.certified else "NOT CERTIFIED"
        lines.append(
            f"campaign {verdict}: {self.cells - len(self.findings)}/"
            f"{self.cells} cells match the continuous-power oracle "
            f"({len(self.pairs)} pairs)"
        )
        return "\n".join(lines)

    # -- diagnostics export ----------------------------------------------
    def diagnostics(self) -> List[Diagnostic]:
        """Findings as ``campaign``-level ERROR diagnostics (one per
        failing cell, code ``inject-<verdict>``)."""
        out = []
        for pair in self.pairs:
            for judged in pair.findings:
                schedule = judged.shrunk or judged.outcome.schedule
                points = ",".join(str(d) for d in schedule)
                out.append(Diagnostic(
                    ERROR,
                    f"inject-{judged.verdict}",
                    f"{pair.bench}/{pair.env}: schedule ({points}) — "
                    f"{judged.reason or judged.verdict}",
                    function=pair.bench,
                    level=LEVEL_CAMPAIGN,
                ))
        return out


def _pair_dict(pair: PairResult) -> Dict[str, object]:
    oracle = pair.oracle
    events: Dict[str, int] = {}
    for kind, _cycle, _pc, _detail in oracle.events:
        events[kind] = events.get(kind, 0) + 1
    return {
        "bench": pair.bench,
        "env": pair.env,
        "certified": pair.certified,
        "oracle": {
            "memory_digest": oracle.memory_digest,
            "outputs_ok": oracle.outputs_ok,
            "war_clean": oracle.war_clean,
            "instructions": oracle.instructions,
            "cycles": oracle.cycles,
            "checkpoints": oracle.checkpoints,
            "events": events,
        },
        "cells": [_cell_dict(judged, pair) for judged in pair.judged],
    }


def _cell_dict(judged: Judged, pair: PairResult) -> Dict[str, object]:
    outcome = judged.outcome
    cell = {
        "schedule": list(outcome.schedule),
        "verdict": judged.verdict,
        "counters": {
            "instructions": outcome.instructions,
            "cycles": outcome.cycles,
            "checkpoints": outcome.checkpoints,
            "power_failures": outcome.power_failures,
            "boot_cycles": outcome.boot_cycles,
            "reexecuted_cycles": outcome.reexecuted_cycles,
            "reexecuted_instructions":
                outcome.instructions - pair.oracle.instructions,
            "checkpoints_replayed":
                outcome.checkpoints - pair.oracle.checkpoints,
        },
    }
    if judged.verdict != "pass":
        cell["reason"] = judged.reason
        cell["war_violations"] = outcome.war_violations
        if outcome.error:
            cell["error"] = outcome.error
        if judged.shrunk is not None:
            cell["shrunk"] = list(judged.shrunk)
    return cell


__all__ = ["CampaignReport"]
