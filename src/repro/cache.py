"""Content-addressed, on-disk compile and result cache.

Compiling a benchmark under one environment is deterministic: the same
mini-C sources, the same :class:`~repro.core.pipeline.EnvironmentConfig`,
and the same toolchain always produce the same
:class:`~repro.backend.encoder.Program`.  Emulating that program under a
canonical power supply is deterministic too.  This module exploits both:
every cacheable artifact is keyed by a SHA-256 over *all* of its inputs
and persisted on disk, so repeated evaluations — across cells of the
experiment grid, across processes of the parallel runner, and across
invocations of the CLI — never redo identical work.

Key structure (one hash per artifact kind):

* ``program-<sha>`` — a compiled :class:`Program`; the hash covers the
  source text, the full environment config (``repr``), the module name,
  the ``verify_static`` flag, and the toolchain version tag.
* ``run-<sha>`` — an :class:`~repro.emulator.stats.ExecutionStats`; the
  hash covers the producing program's key, the canonical power-supply
  key, the WAR-check flag, the instruction budget, and the cost model.
* ``lint-<sha>`` — a :class:`~repro.core.lint.LintResult`; the hash
  covers the sources, config, name, and toolchain tag.
* ``inject-<sha>`` — one fault-injection campaign cell (oracle record or
  schedule outcome, see :mod:`repro.faultinject`); the hash covers the
  producing program's key, the failure schedule, the WAR-check flag, the
  instruction budget, and the cost model.

Invalidation is structural: the **toolchain version tag** mixed into
every key is ``COMPILER_VERSION_TAG`` plus a fingerprint of the
``repro`` package's own source files.  Any edit to the compiler, the
verifiers, or the emulator changes the fingerprint, which changes every
key, which orphans every stale entry — no manual bump needed (the manual
tag exists for forcing a flag day, e.g. a cost-model constant change
that lives in data rather than code).  Orphaned entries are surfaced by
``python -m repro cache stats`` and removed by ``cache clear``.

Environment variables:

* ``REPRO_CACHE_DIR`` — cache directory (default ``~/.cache/repro``).
* ``REPRO_CACHE`` — set to ``0``/``off`` to disable all disk caching.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Manual toolchain tag: bump to force-invalidate every cache entry even
#: when no ``repro`` source file changed (e.g. when regenerating after
#: an external data change).  Code changes invalidate automatically via
#: the source fingerprint below.
COMPILER_VERSION_TAG = "wario-toolchain-1"

#: Static-analysis schema tag, mixed into ``lint``/``analyze`` keys on
#: top of the toolchain tag.  Bump when the *meaning* of a cached
#: verdict changes without a code change that the source fingerprint
#: would catch — e.g. a certificate schema revision or a new default
#: certification level — so stale verdicts cannot satisfy new queries.
ANALYSIS_VERSION_TAG = "placement-certifier-3"

_FALSY = ("0", "off", "no", "false")


def cache_enabled() -> bool:
    """Disk caching is on unless ``REPRO_CACHE`` says otherwise."""
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _FALSY


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro"
    )


# ---------------------------------------------------------------------------
# Toolchain fingerprint
# ---------------------------------------------------------------------------

_fingerprint: Optional[str] = None


def source_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the ``repro`` package.

    Computed once per process; identical across processes looking at the
    same checkout, different after any source edit.
    """
    global _fingerprint
    if _fingerprint is None:
        root = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.sha256()
        paths = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in filenames:
                if filename.endswith(".py"):
                    paths.append(os.path.join(dirpath, filename))
        for path in sorted(paths):
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint


def version_tag() -> str:
    """The full invalidation tag mixed into every cache key."""
    return f"{COMPILER_VERSION_TAG}+{source_fingerprint()}"


# ---------------------------------------------------------------------------
# Key builders
# ---------------------------------------------------------------------------


def _digest(kind: str, *parts: str) -> str:
    digest = hashlib.sha256()
    digest.update(version_tag().encode())
    for part in parts:
        digest.update(b"\x00")
        digest.update(part.encode())
    return f"{kind}-{digest.hexdigest()}"


def compile_key(sources, config, name: str = "program",
                verify_static: bool = False) -> str:
    """Key of a compiled ``Program``.

    ``config`` is the fully resolved :class:`EnvironmentConfig` (its
    ``repr`` covers every pipeline switch including the unroll factor).
    """
    if isinstance(sources, str):
        sources = [sources]
    return _digest(
        "program",
        name,
        repr(config),
        "verify" if verify_static else "noverify",
        *sources,
    )


def run_key(program_key: str, power_key: str, war_check: bool,
            max_instructions: int, cost_model_repr: str) -> str:
    """Key of one deterministic emulation result (``ExecutionStats``)."""
    return _digest(
        "run",
        program_key,
        power_key or "continuous",
        "war" if war_check else "nowar",
        str(max_instructions),
        cost_model_repr,
    )


def lint_key(sources, config, name: str = "program",
             level: str = "full", budget=None) -> str:
    """Key of one static WAR-certification verdict (``LintResult``).

    ``level`` is the certification depth (``ir`` | ``mir`` | ``full``):
    verdicts at different depths carry different diagnostics and
    certificates, so they are distinct artifacts.  ``budget`` is the
    progress certifier's per-region cycle budget — it changes both the
    diagnostics and their severities, so budgeted verdicts are keyed
    apart from unbudgeted ones.
    """
    if isinstance(sources, str):
        sources = [sources]
    return _digest("lint", ANALYSIS_VERSION_TAG, name, repr(config), level,
                   f"budget={budget}", *sources)


def analyze_key(sources, config, name: str = "program") -> str:
    """Key of one interprocedural-analysis report (``repro analyze``).

    Analysis verdicts are pure functions of the sources, the environment
    config (alias mode), and the toolchain — keying them like lint
    verdicts lets the pipeline server serve repeated ``analyze``
    requests from the store.
    """
    if isinstance(sources, str):
        sources = [sources]
    return _digest("analyze", ANALYSIS_VERSION_TAG, name, repr(config),
                   *sources)


def inject_key(program_key: str, schedule, war_check: bool,
               max_instructions: int, cost_model_repr: str,
               interrupt_interval=None) -> str:
    """Key of one fault-injection campaign cell (``CellOutcome``).

    ``schedule`` is the tuple of scheduled on-durations; the empty tuple
    keys the continuous-power *oracle* record (final-memory digest,
    outputs, WAR verdict, event map) of the same program.  These entries
    are the campaign's resumable state: re-invoking an interrupted
    campaign replays completed cells from disk instead of re-emulating.

    ``interrupt_interval`` distinguishes cells run under a periodic
    interrupt load (differential campaigns); ``None`` — the historical
    interrupt-free cell — keeps its historical key.
    """
    parts = [
        "inject",
        program_key,
        ",".join(str(d) for d in schedule) or "oracle",
        "war" if war_check else "nowar",
        str(max_instructions),
        cost_model_repr,
    ]
    if interrupt_interval is not None:
        parts.append(f"irq={interrupt_interval}")
    return _digest(*parts)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass
class CacheReport:
    """What ``python -m repro cache stats`` prints."""

    directory: str
    tag: str
    entries: int = 0
    stale: int = 0
    bytes: int = 0
    by_kind: Dict[str, int] = None  # type: ignore[assignment]
    hits: int = 0
    misses: int = 0
    stores: int = 0

    def render(self) -> str:
        lines = [
            f"cache directory : {self.directory}",
            f"toolchain tag   : {self.tag}",
            f"entries         : {self.entries} ({self.bytes:,} bytes)",
            f"stale entries   : {self.stale} (older toolchain tags)",
        ]
        for kind in sorted(self.by_kind or {}):
            lines.append(f"  {kind:<9}: {self.by_kind[kind]}")
        lines.append(
            f"this process    : {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (``repro cache stats -o json`` and the serving
        metrics): on-disk entry counts plus this process's live
        hit/miss/store counters."""
        looked_up = self.hits + self.misses
        return {
            "directory": self.directory,
            "tag": self.tag,
            "entries": self.entries,
            "stale": self.stale,
            "bytes": self.bytes,
            "by_kind": dict(self.by_kind or {}),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hits / looked_up, 4) if looked_up else 0.0,
        }


class CompileCache:
    """A content-addressed blob store: in-memory dict over pickle files.

    Writes are atomic (``os.replace``), so concurrent workers of the
    parallel evaluation engine can share one directory; a corrupt or
    truncated entry is treated as a miss and deleted.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = os.path.abspath(directory or default_cache_dir())
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".pkl")

    def get(self, key: str) -> Optional[Any]:
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.loads(zlib.decompress(handle.read()))
            payload = entry["payload"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt / truncated / unreadable: drop it and recompute.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self._memory[key] = payload
        self.hits += 1
        return payload

    def put(self, key: str, payload: Any) -> None:
        self._memory[key] = payload
        self.stores += 1
        try:
            os.makedirs(self.directory, exist_ok=True)
            entry = {"tag": version_tag(), "kind": key.split("-", 1)[0],
                     "payload": payload}
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    # programs embed a 1 MiB (mostly zero) initial memory
                    # image; level-1 zlib shrinks entries ~30x for nearly
                    # free
                    handle.write(zlib.compress(pickle.dumps(entry), 1))
                os.replace(tmp, self._path(key))
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            # Disk problems must never break a compile; the in-memory
            # layer above still serves this process.
            pass

    def clear(self) -> int:
        """Remove every entry (all tags).  Returns the number removed."""
        removed = 0
        self._memory.clear()
        if os.path.isdir(self.directory):
            for filename in os.listdir(self.directory):
                if filename.endswith((".pkl", ".tmp")):
                    try:
                        os.unlink(os.path.join(self.directory, filename))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def report(self) -> CacheReport:
        report = CacheReport(
            directory=self.directory, tag=version_tag(), by_kind={},
            hits=self.hits, misses=self.misses, stores=self.stores,
        )
        if not os.path.isdir(self.directory):
            return report
        current = version_tag()
        for filename in sorted(os.listdir(self.directory)):
            if not filename.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, filename)
            try:
                size = os.path.getsize(path)
                with open(path, "rb") as handle:
                    entry = pickle.loads(zlib.decompress(handle.read()))
            except Exception:
                continue
            report.entries += 1
            report.bytes += size
            kind = entry.get("kind", "?")
            report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
            if entry.get("tag") != current:
                report.stale += 1
        return report


# ---------------------------------------------------------------------------
# Process-wide default instance
# ---------------------------------------------------------------------------

_default_cache: Optional[CompileCache] = None


def get_cache() -> CompileCache:
    """The process-wide cache (created on first use from the env vars)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = CompileCache()
    return _default_cache


def reset_cache() -> None:
    """Forget the process-wide instance (tests re-point REPRO_CACHE_DIR)."""
    global _default_cache
    _default_cache = None


def resolve_cache(cache=None) -> Optional[CompileCache]:
    """Normalise a caller-supplied cache policy.

    ``None`` — the process-wide cache if enabled; ``False`` — no cache;
    a :class:`CompileCache` — that instance.
    """
    if cache is None:
        return get_cache() if cache_enabled() else None
    if cache is False:
        return None
    return cache


__all__ = [
    "ANALYSIS_VERSION_TAG", "COMPILER_VERSION_TAG", "CacheReport",
    "CompileCache",
    "analyze_key", "cache_enabled", "compile_key", "default_cache_dir",
    "get_cache", "inject_key", "lint_key", "reset_cache", "resolve_cache",
    "run_key", "source_fingerprint", "version_tag",
]
