"""Functions: a CFG of basic blocks plus formal arguments."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional

from .block import BasicBlock
from .instructions import Instruction, Phi
from .types import FunctionType, Type
from .values import Argument, Value


class Function:
    """A function definition (or declaration when it has no blocks)."""

    def __init__(self, name: str, function_type: FunctionType, param_names=None):
        self.name = name
        self.type = function_type
        self.parent = None  # owning Module
        self.blocks: List[BasicBlock] = []
        param_names = param_names or [f"arg{i}" for i in range(len(function_type.param_types))]
        self.args: List[Argument] = [
            Argument(ty, pname, i, self)
            for i, (ty, pname) in enumerate(zip(function_type.param_types, param_names))
        ]
        self._name_counter = itertools.count()

    # -- basic structure ---------------------------------------------------
    @property
    def return_type(self) -> Type:
        return self.type.return_type

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name or "bb"), self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def _unique_block_name(self, base: str) -> str:
        existing = {b.name for b in self.blocks}
        if base not in existing:
            return base
        while True:
            candidate = f"{base}.{next(self._name_counter)}"
            if candidate not in existing:
                return candidate

    # -- iteration -----------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    # -- value bookkeeping ----------------------------------------------------
    def replace_all_uses(self, old: Value, new: Value) -> None:
        """Rewrite every operand use of ``old`` in this function to ``new``."""
        for instr in self.instructions():
            instr.replace_uses_of(old, new)

    def users_of(self, value: Value) -> List[Instruction]:
        return [
            instr
            for instr in self.instructions()
            if any(op is value for op in instr.operands)
        ]

    def uses_count(self) -> Dict[int, int]:
        """Map id(value) -> number of operand uses, for DCE-style passes."""
        counts: Dict[int, int] = {}
        for instr in self.instructions():
            for op in instr.operands:
                counts[id(op)] = counts.get(id(op), 0) + 1
        return counts

    def assign_names(self) -> None:
        """Give every unnamed instruction/block a unique printable name."""
        counter = itertools.count()
        seen = set()
        for block in self.blocks:
            for instr in block.instructions:
                if instr.type.size == 0 and not isinstance(instr, Phi):
                    continue
                if not instr.name or instr.name in seen:
                    instr.name = f"v{next(counter)}"
                    while instr.name in seen:
                        instr.name = f"v{next(counter)}"
                seen.add(instr.name)

    def __repr__(self):
        kind = "declare" if self.is_declaration else "define"
        return f"<{kind} @{self.name} ({len(self.blocks)} blocks)>"
