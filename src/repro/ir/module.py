"""Modules: the whole-program IR unit (globals + functions).

WARio's front end links every translation unit into one module before any
transformation runs (the gllvm whole-program step in the paper, §4.6); our
:meth:`Module.link` plays that role.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .function import Function
from .types import FunctionType, Type
from .values import GlobalVariable


class Module:
    """A whole program: named globals and named functions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}

    # -- construction --------------------------------------------------------
    def add_global(
        self,
        name: str,
        value_type: Type,
        initializer=None,
        is_constant: bool = False,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global @{name}")
        gv = GlobalVariable(name, value_type, initializer, is_constant)
        self.globals[name] = gv
        return gv

    def add_function(self, name: str, function_type: FunctionType, param_names=None) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function @{name}")
        fn = Function(name, function_type, param_names)
        fn.parent = self
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def get_global(self, name: str) -> GlobalVariable:
        return self.globals[name]

    @property
    def main(self) -> Function:
        return self.functions["main"]

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    # -- linking ---------------------------------------------------------------
    def link(self, other: "Module") -> "Module":
        """Merge ``other`` into this module (whole-program IR creation).

        Globals and functions must not collide, except that a declaration
        may be satisfied by a definition from the other side.
        """
        for name, gv in other.globals.items():
            if name in self.globals:
                raise ValueError(f"duplicate global @{name} while linking")
            self.globals[name] = gv
        for name, fn in other.functions.items():
            existing = self.functions.get(name)
            if existing is None:
                self.functions[name] = fn
                fn.parent = self
            elif existing.is_declaration and not fn.is_declaration:
                self.functions[name] = fn
                fn.parent = self
            elif not existing.is_declaration and fn.is_declaration:
                pass
            else:
                raise ValueError(f"duplicate function @{name} while linking")
        return self

    def __repr__(self):
        return (
            f"<Module {self.name}: {len(self.globals)} globals, "
            f"{len(self.functions)} functions>"
        )
