"""Value hierarchy of the repro IR.

Everything an instruction can reference as an operand is a :class:`Value`:
constants, global variables, function arguments, and instructions themselves
(an instruction *is* the SSA value it defines).
"""

from __future__ import annotations

from typing import Optional

from .types import ArrayType, IntType, PointerType, Type


class Value:
    """Base class for all IR values.

    ``name`` is a purely cosmetic SSA name used by the printer; uniqueness is
    enforced per function when the printer runs, not at construction time.
    """

    def __init__(self, ty: Type, name: str = ""):
        self.type = ty
        self.name = name

    def short(self) -> str:
        """Operand-position rendering (e.g. ``%x``, ``42``, ``@g``)."""
        return f"%{self.name}"

    def __repr__(self):
        return f"<{type(self).__name__} {self.short()}>"


class Constant(Value):
    """An integer constant.  Stored as a Python int, wrapped on use."""

    def __init__(self, value: int, ty: Type = IntType(32)):
        super().__init__(ty)
        if not isinstance(ty, IntType):
            raise TypeError("constants must have integer type")
        self.value = _wrap(value, ty.bits)

    def short(self) -> str:
        return str(self.value)

    def __eq__(self, other):
        return (
            isinstance(other, Constant)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self):
        return hash(("Constant", self.value, self.type))


class UndefValue(Value):
    """An undefined value (used when a path provides no meaningful value)."""

    def short(self) -> str:
        return "undef"


class GlobalVariable(Value):
    """A module-level variable living in non-volatile memory.

    The value *is* the address (pointer) of the storage, as in LLVM.
    ``initializer`` is an int for scalars or a list of ints for arrays;
    ``None`` zero-initialises.
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer=None,
        is_constant: bool = False,
    ):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant
        self._check_initializer()

    def _check_initializer(self):
        init = self.initializer
        if init is None:
            return
        if isinstance(self.value_type, ArrayType):
            if not isinstance(init, (list, tuple)):
                raise TypeError(f"array global @{self.name} needs list init")
            if len(init) > self.value_type.count:
                raise ValueError(f"too many initializers for @{self.name}")
        elif isinstance(self.value_type, IntType):
            if not isinstance(init, int):
                raise TypeError(f"scalar global @{self.name} needs int init")
        else:
            raise TypeError(f"unsupported global type {self.value_type}")

    def initial_bytes(self) -> bytes:
        """Render the initializer as little-endian bytes (zero padded)."""
        if isinstance(self.value_type, ArrayType):
            elem = self.value_type.element
            vals = list(self.initializer or [])
            vals += [0] * (self.value_type.count - len(vals))
            out = bytearray()
            for v in vals:
                out += _wrap(v, elem.bits * 1 if isinstance(elem, IntType) else 32).to_bytes(
                    elem.size, "little"
                )
            return bytes(out)
        bits = self.value_type.bits if isinstance(self.value_type, IntType) else 32
        return _wrap(self.initializer or 0, bits).to_bytes(self.value_type.size, "little")

    def short(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: Type, name: str, index: int, function=None):
        super().__init__(ty, name)
        self.index = index
        self.function = function


def _wrap(value: int, bits: int) -> int:
    """Wrap a Python int into the unsigned range of a ``bits``-wide integer."""
    return value & ((1 << bits) - 1)


def as_signed(value: int, bits: int = 32) -> int:
    """Interpret an unsigned ``bits``-wide value as two's-complement."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def const(value: int, ty: Optional[Type] = None) -> Constant:
    """Shorthand constructor for i32 constants."""
    return Constant(value, ty or IntType(32))
