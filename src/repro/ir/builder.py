"""IRBuilder: convenience API for emitting instructions.

Mirrors LLVM's ``IRBuilder``: hold an insertion point (a block, appending at
the end, or a specific index) and call typed helpers.
"""

from __future__ import annotations

from typing import Optional

from .block import BasicBlock
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Checkpoint,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .types import IntType, Type
from .values import Constant, Value


class IRBuilder:
    """Appends instructions at a movable insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self.index: Optional[int] = None  # None = append at end
        #: Current source location (``repro.diagnostics.SourceLoc`` or
        #: None); stamped onto every inserted instruction that has none.
        self.loc = None

    # -- positioning -----------------------------------------------------
    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        self.index = None
        return self

    def position_before(self, instr: Instruction) -> "IRBuilder":
        self.block = instr.parent
        self.index = self.block.index_of(instr)
        return self

    def _insert(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        if self.loc is not None and instr.loc is None:
            instr.loc = self.loc
        if self.index is None:
            self.block.append(instr)
        else:
            self.block.insert(self.index, instr)
            self.index += 1
        return instr

    # -- constants ----------------------------------------------------------
    @staticmethod
    def const(value: int, ty: Optional[Type] = None) -> Constant:
        return Constant(value, ty or IntType(32))

    # -- memory ----------------------------------------------------------------
    def alloca(self, allocated_type: Type, name: str = "") -> Alloca:
        return self._insert(Alloca(allocated_type, name))

    def load(self, ptr: Value, name: str = "") -> Load:
        return self._insert(Load(ptr, name))

    def store(self, value: Value, ptr: Value) -> Store:
        return self._insert(Store(value, ptr))

    def gep(self, base: Value, index: Value, name: str = "") -> GetElementPtr:
        return self._insert(GetElementPtr(base, index, name))

    # -- arithmetic --------------------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp(op, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs, name))

    def select(self, cond: Value, tv: Value, fv: Value, name: str = "") -> Select:
        return self._insert(Select(cond, tv, fv, name))

    def cast(self, op: str, value: Value, to_type: IntType, name: str = "") -> Cast:
        return self._insert(Cast(op, value, to_type, name))

    # -- control flow ---------------------------------------------------------------
    def br(self, target: BasicBlock) -> Branch:
        return self._insert(Branch(target))

    def cond_br(self, cond: Value, true_target: BasicBlock, false_target: BasicBlock) -> CondBranch:
        return self._insert(CondBranch(cond, true_target, false_target))

    def call(self, callee, args, name: str = "") -> Call:
        return self._insert(Call(callee, args, name))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._insert(Ret(value))

    def phi(self, ty: Type, name: str = "") -> Phi:
        return self._insert(Phi(ty, name))

    def checkpoint(self, cause: str) -> Checkpoint:
        return self._insert(Checkpoint(cause))
