"""Textual (LLVM-flavoured) printing of IR for debugging and golden tests."""

from __future__ import annotations

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Checkpoint,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)


def _op(value) -> str:
    return value.short() if value is not None else "<null>"


def instruction_to_str(instr: Instruction) -> str:
    """Render one instruction, without a trailing newline."""
    if isinstance(instr, Alloca):
        return f"%{instr.name} = alloca {instr.allocated_type}"
    if isinstance(instr, Load):
        return f"%{instr.name} = load {instr.type}, {_op(instr.pointer)}"
    if isinstance(instr, Store):
        return f"store {_op(instr.value)}, {_op(instr.pointer)}"
    if isinstance(instr, BinaryOp):
        return f"%{instr.name} = {instr.op} {_op(instr.lhs)}, {_op(instr.rhs)}"
    if isinstance(instr, ICmp):
        return f"%{instr.name} = icmp {instr.predicate} {_op(instr.lhs)}, {_op(instr.rhs)}"
    if isinstance(instr, Select):
        return (
            f"%{instr.name} = select {_op(instr.condition)}, "
            f"{_op(instr.true_value)}, {_op(instr.false_value)}"
        )
    if isinstance(instr, GetElementPtr):
        return f"%{instr.name} = gep {_op(instr.base)}, {_op(instr.index)}"
    if isinstance(instr, Cast):
        return f"%{instr.name} = {instr.op} {_op(instr.value)} to {instr.type}"
    if isinstance(instr, Branch):
        return f"br label %{instr.target.name}"
    if isinstance(instr, CondBranch):
        return (
            f"br {_op(instr.condition)}, label %{instr.true_target.name}, "
            f"label %{instr.false_target.name}"
        )
    if isinstance(instr, Call):
        args = ", ".join(_op(a) for a in instr.args)
        if instr.type.size == 0:
            return f"call @{instr.callee.name}({args})"
        return f"%{instr.name} = call @{instr.callee.name}({args})"
    if isinstance(instr, Ret):
        return f"ret {_op(instr.value)}" if instr.value is not None else "ret void"
    if isinstance(instr, Phi):
        pairs = ", ".join(
            f"[{_op(v)}, %{b.name}]" for v, b in instr.incoming
        )
        return f"%{instr.name} = phi {instr.type} {pairs}"
    if isinstance(instr, Checkpoint):
        return f"checkpoint !{instr.cause}"
    return f"<unknown {instr.opcode}>"


def function_to_str(function) -> str:
    function.assign_names()
    params = ", ".join(f"{a.type} %{a.name}" for a in function.args)
    lines = [f"define {function.return_type} @{function.name}({params}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {instruction_to_str(instr)}")
    lines.append("}")
    return "\n".join(lines)


def module_to_str(module) -> str:
    lines = []
    for gv in module.globals.values():
        const = "constant" if gv.is_constant else "global"
        lines.append(f"@{gv.name} = {const} {gv.value_type} {gv.initializer}")
    for fn in module.functions.values():
        if fn.is_declaration:
            params = ", ".join(str(t) for t in fn.type.param_types)
            lines.append(f"declare {fn.return_type} @{fn.name}({params})")
        else:
            lines.append(function_to_str(fn))
    return "\n".join(lines) + "\n"
