"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Round-tripping IR through text makes golden tests and hand-written IR
fixtures possible without the mini-C front end.  The accepted grammar is
exactly what the printer emits::

    @g = global i32 5
    @a = constant [4 x i32] [1, 2, 3, 4]
    define i32 @f(i32 %x) {
    entry:
      %v0 = add %x, 1
      ret %v0
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import (
    BINARY_OPS,
    CKPT_CAUSES,
    ICMP_PREDICATES,
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Checkpoint,
    CondBranch,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .types import I1, I8, I16, I32, VOID, ArrayType, FunctionType, IntType, PointerType, Type
from .values import Constant, UndefValue


class IRParseError(Exception):
    pass


_TYPE_NAMES = {"i1": I1, "i8": I8, "i16": I16, "i32": I32, "void": VOID}


def parse_type(text: str) -> Type:
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1]))
    match = re.fullmatch(r"\[(\d+) x (.+)\]", text)
    if match:
        return ArrayType(parse_type(match.group(2)), int(match.group(1)))
    if text in _TYPE_NAMES:
        return _TYPE_NAMES[text]
    raise IRParseError(f"unknown type {text!r}")


class _FunctionParser:
    """Parses one ``define ... { ... }`` body with forward references."""

    def __init__(self, module: Module, function: Function):
        self.module = module
        self.function = function
        self.values: Dict[str, object] = {a.name: a for a in function.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.pending: List[Tuple[object, int, str]] = []  # (instr, op index, name)
        self.pending_targets: List[Tuple[object, int, str]] = []
        self.pending_phi_blocks: List[Tuple[Phi, int, str]] = []

    # -- operand handling --------------------------------------------------
    def block_ref(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            self.blocks[name] = self.function.add_block(name)
        return self.blocks[name]

    def operand(self, token: str):
        token = token.strip()
        if token == "undef":
            return UndefValue(I32)
        if token.startswith("%"):
            name = token[1:]
            return self.values.get(name, ("forward", name))
        if token.startswith("@"):
            name = token[1:]
            if name in self.module.globals:
                return self.module.globals[name]
            raise IRParseError(f"unknown global {token}")
        try:
            return Constant(int(token, 0))
        except ValueError:
            raise IRParseError(f"bad operand {token!r}") from None

    def set_operand(self, instr, idx: int, value) -> None:
        if isinstance(value, tuple) and value and value[0] == "forward":
            self.pending.append((instr, idx, value[1]))
            instr.operands[idx] = UndefValue(I32)  # placeholder
        else:
            instr.operands[idx] = value

    def define(self, name: str, instr) -> None:
        instr.name = name
        self.values[name] = instr

    def resolve_pending(self) -> None:
        for instr, idx, name in self.pending:
            if name not in self.values:
                raise IRParseError(f"undefined value %{name}")
            instr.operands[idx] = self.values[name]


_INSTR_RE = re.compile(r"^(?:%(?P<dst>[\w.]+)\s*=\s*)?(?P<rest>.+)$")


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse printer-format IR text into a fresh module."""
    module = Module(name)
    lines = [ln.rstrip() for ln in text.splitlines()]
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line.startswith(";"):
            continue
        if line.startswith("@"):
            _parse_global(module, line)
            continue
        if line.startswith("declare"):
            _parse_declare(module, line)
            continue
        if line.startswith("define"):
            i = _parse_define(module, lines, i - 1) + 1
            continue
        raise IRParseError(f"unexpected top-level line: {line!r}")
    return module


def _parse_global(module: Module, line: str) -> None:
    match = re.fullmatch(
        r"@([\w.]+) = (global|constant) (.+?) (\[.*\]|None|-?\d+|0x[0-9a-fA-F]+)",
        line,
    )
    if not match:
        raise IRParseError(f"bad global line: {line!r}")
    gname, kind, type_text, init_text = match.groups()
    # disambiguate "[4 x i32] [1, 2]" vs scalar types
    if type_text.startswith("["):
        # the regex may have split the array type greedily; re-split
        full = f"{type_text} {init_text}"
        m2 = re.fullmatch(r"(\[\d+ x [^\]]+\])\s*(.*)", full)
        if not m2:
            raise IRParseError(f"bad array global: {line!r}")
        type_text, init_text = m2.group(1), m2.group(2) or "None"
    gtype = parse_type(type_text)
    if init_text == "None":
        init = None
    elif init_text.startswith("["):
        init = [int(tok, 0) for tok in re.findall(r"-?\d+|0x[0-9a-fA-F]+", init_text)]
    else:
        init = int(init_text, 0)
    module.add_global(gname, gtype, init, is_constant=(kind == "constant"))


def _parse_declare(module: Module, line: str) -> None:
    match = re.fullmatch(r"declare (.+?) @([\w.]+)\((.*)\)", line)
    if not match:
        raise IRParseError(f"bad declare line: {line!r}")
    ret_text, fname, params_text = match.groups()
    params = [parse_type(p) for p in params_text.split(",") if p.strip()]
    module.add_function(fname, FunctionType(parse_type(ret_text), params))


def _parse_define(module: Module, lines: List[str], start: int) -> int:
    header = lines[start].strip()
    match = re.fullmatch(r"define (.+?) @([\w.]+)\((.*)\) \{", header)
    if not match:
        raise IRParseError(f"bad define line: {header!r}")
    ret_text, fname, params_text = match.groups()
    param_types, param_names = [], []
    for chunk in params_text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        type_text, pname = chunk.rsplit("%", 1)
        param_types.append(parse_type(type_text.strip()))
        param_names.append(pname)
    function = module.add_function(
        fname, FunctionType(parse_type(ret_text), param_types), param_names
    )
    parser = _FunctionParser(module, function)
    label_order: List[str] = []

    current: Optional[BasicBlock] = None
    i = start + 1
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line.startswith(";"):
            continue
        if line == "}":
            parser.resolve_pending()
            # restore the textual block order (forward branch targets are
            # created on first reference, which would otherwise reorder)
            order = {name: idx for idx, name in enumerate(label_order)}
            function.blocks.sort(key=lambda b: order.get(b.name, len(order)))
            return i - 1
        label = re.fullmatch(r"([\w.]+):", line)
        if label:
            current = parser.block_ref(label.group(1))
            label_order.append(label.group(1))
            continue
        if current is None:
            raise IRParseError(f"instruction outside a block: {line!r}")
        _parse_instruction(parser, current, line)
    raise IRParseError(f"unterminated function @{fname}")


def _parse_instruction(p: _FunctionParser, block: BasicBlock, line: str) -> None:
    match = _INSTR_RE.match(line)
    dst, rest = match.group("dst"), match.group("rest").strip()

    def op(token):
        return p.operand(token)

    def finish(instr, operand_tokens):
        block.append(instr)
        for idx, token in enumerate(operand_tokens):
            p.set_operand(instr, idx, op(token))
        if dst:
            p.define(dst, instr)
        return instr

    if rest.startswith("alloca "):
        instr = Alloca(parse_type(rest[len("alloca "):]))
        block.append(instr)
        if dst:
            p.define(dst, instr)
        return
    if rest.startswith("load "):
        m = re.fullmatch(r"load (.+?), (.+)", rest)
        ptr = op(m.group(2))
        if isinstance(ptr, tuple):
            raise IRParseError("load pointer must be defined before use")
        instr = Load(ptr)
        block.append(instr)
        if dst:
            p.define(dst, instr)
        return
    if rest.startswith("store "):
        m = re.fullmatch(r"store (.+?), (.+)", rest)
        ptr = op(m.group(2))
        if isinstance(ptr, tuple):
            raise IRParseError("store pointer must be defined before use")
        instr = Store(Constant(0), ptr)
        block.append(instr)
        p.set_operand(instr, 0, op(m.group(1)))
        return
    if rest.startswith("icmp "):
        m = re.fullmatch(r"icmp (\w+) (.+?), (.+)", rest)
        pred = m.group(1)
        if pred not in ICMP_PREDICATES:
            raise IRParseError(f"bad predicate {pred!r}")
        instr = ICmp(pred, Constant(0), Constant(0))
        return finish(instr, [m.group(2), m.group(3)]) and None
    if rest.startswith("select "):
        m = re.fullmatch(r"select (.+?), (.+?), (.+)", rest)
        instr = Select(Constant(0), Constant(0), Constant(0))
        finish(instr, [m.group(1), m.group(2), m.group(3)])
        return
    if rest.startswith("gep "):
        m = re.fullmatch(r"gep (.+?), (.+)", rest)
        base = op(m.group(1))
        if isinstance(base, tuple):
            raise IRParseError("gep base must be defined before use")
        instr = GetElementPtr(base, Constant(0))
        block.append(instr)
        p.set_operand(instr, 1, op(m.group(2)))
        if dst:
            p.define(dst, instr)
        return
    if rest.startswith(("zext ", "sext ", "trunc ")):
        m = re.fullmatch(r"(zext|sext|trunc) (.+?) to (.+)", rest)
        to_type = parse_type(m.group(3))
        if not isinstance(to_type, IntType):
            raise IRParseError("casts produce integers")
        instr = Cast(m.group(1), Constant(0), to_type)
        finish(instr, [m.group(2)])
        return
    if rest.startswith("br label "):
        target = rest[len("br label %"):]
        block.append(Branch(p.block_ref(target)))
        return
    if rest.startswith("br "):
        m = re.fullmatch(r"br (.+?), label %([\w.]+), label %([\w.]+)", rest)
        instr = CondBranch(Constant(0), p.block_ref(m.group(2)), p.block_ref(m.group(3)))
        block.append(instr)
        p.set_operand(instr, 0, op(m.group(1)))
        return
    if rest.startswith("call ") or re.match(r"call @", rest):
        m = re.fullmatch(r"call @([\w.]+)\((.*)\)", rest)
        callee = p.module.functions.get(m.group(1))
        if callee is None:
            raise IRParseError(f"unknown callee @{m.group(1)}")
        args_tokens = [t for t in _split_args(m.group(2)) if t]
        instr = Call(callee, [Constant(0)] * len(args_tokens))
        finish(instr, args_tokens)
        return
    if rest == "ret void":
        block.append(Ret())
        return
    if rest.startswith("ret "):
        instr = Ret(Constant(0))
        block.append(instr)
        p.set_operand(instr, 0, op(rest[len("ret "):]))
        return
    if rest.startswith("phi "):
        m = re.fullmatch(r"phi (.+?) ((?:\[.+?, %[\w.]+\](?:, )?)+)", rest)
        phi = Phi(parse_type(m.group(1)))
        block.append(phi)
        for vtok, btok in re.findall(r"\[(.+?), %([\w.]+)\]", m.group(2)):
            phi.add_incoming(Constant(0), p.block_ref(btok))
            p.set_operand(phi, len(phi.operands) - 1, op(vtok))
        if dst:
            p.define(dst, phi)
        return
    if rest.startswith("checkpoint"):
        m = re.fullmatch(r"checkpoint !([\w-]+)", rest)
        cause = m.group(1)
        if cause not in CKPT_CAUSES:
            raise IRParseError(f"bad checkpoint cause {cause!r}")
        block.append(Checkpoint(cause))
        return
    # binary operations: "<op> lhs, rhs"
    m = re.fullmatch(r"(\w+) (.+?), (.+)", rest)
    if m and m.group(1) in BINARY_OPS:
        instr = BinaryOp(m.group(1), Constant(0), Constant(0))
        finish(instr, [m.group(2), m.group(3)])
        return
    raise IRParseError(f"cannot parse instruction: {line!r}")


def _split_args(text: str) -> List[str]:
    return [t.strip() for t in text.split(",")] if text.strip() else []
