"""IR verifier: structural and SSA-dominance well-formedness checks.

Passes call :func:`verify_module` after mutating IR; tests do the same.
Errors raise :class:`VerificationError` with a human-readable reason.
"""

from __future__ import annotations

from .instructions import Instruction, Phi
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    """Raised when the IR violates a structural or SSA invariant."""


def verify_module(module) -> None:
    for function in module.defined_functions():
        verify_function(function)


def verify_function(function) -> None:
    _check_structure(function)
    _check_ssa(function)


def _check_structure(function) -> None:
    blocks = set(id(b) for b in function.blocks)
    if not function.blocks:
        raise VerificationError(f"@{function.name}: no blocks")
    entry = function.entry
    if entry.phis():
        raise VerificationError(f"@{function.name}: entry block has phis")
    for block in function.blocks:
        if not block.instructions:
            raise VerificationError(f"@{function.name}/{block.name}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator:
            raise VerificationError(
                f"@{function.name}/{block.name}: does not end in a terminator"
            )
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                raise VerificationError(
                    f"@{function.name}/{block.name}: terminator in the middle"
                )
        seen_non_phi = False
        for instr in block.instructions:
            if isinstance(instr, Phi):
                if seen_non_phi:
                    raise VerificationError(
                        f"@{function.name}/{block.name}: phi after non-phi"
                    )
            else:
                seen_non_phi = True
            if instr.parent is not block:
                raise VerificationError(
                    f"@{function.name}/{block.name}: bad parent link on {instr!r}"
                )
        for target in (term.targets if hasattr(term, "targets") else []):
            if id(target) not in blocks:
                raise VerificationError(
                    f"@{function.name}/{block.name}: branch to foreign block"
                )
    # Phi incoming blocks must be exactly the predecessors.
    for block in function.blocks:
        preds = {id(p) for p in block.predecessors}
        for phi in block.phis():
            incoming = [id(b) for b in phi.incoming_blocks]
            if set(incoming) != preds or len(incoming) != len(set(incoming)):
                raise VerificationError(
                    f"@{function.name}/{block.name}: phi %{phi.name} incoming "
                    f"blocks do not match predecessors"
                )


def _check_ssa(function) -> None:
    """Each operand must be a constant/global/argument or an instruction
    whose definition dominates the use (phi uses checked at the edge)."""
    from ..analysis.dominators import dominator_tree  # lazy: avoid import cycle

    defined = {id(i) for i in function.instructions()}
    args = {id(a) for a in function.args}
    domtree = dominator_tree(function)

    def value_ok(value: Value) -> bool:
        if isinstance(value, (Constant, GlobalVariable, UndefValue)):
            return True
        if id(value) in args:
            return True
        return id(value) in defined

    positions = {}
    for block in function.blocks:
        for idx, instr in enumerate(block.instructions):
            positions[id(instr)] = (block, idx)

    def dominates_use(def_instr: Instruction, use_block, use_idx: int) -> bool:
        def_block, def_idx = positions[id(def_instr)]
        if def_block is use_block:
            return def_idx < use_idx
        return domtree.dominates(def_block, use_block)

    for block in function.blocks:
        for idx, instr in enumerate(block.instructions):
            if isinstance(instr, Phi):
                for value, pred in instr.incoming:
                    if not value_ok(value):
                        raise VerificationError(
                            f"@{function.name}/{block.name}: phi %{instr.name} "
                            f"uses unknown value {value!r}"
                        )
                    if isinstance(value, Instruction):
                        term_idx = len(pred.instructions)
                        if not dominates_use(value, pred, term_idx):
                            raise VerificationError(
                                f"@{function.name}/{block.name}: phi %{instr.name} "
                                f"incoming {value!r} does not dominate edge from "
                                f"{pred.name}"
                            )
                continue
            for op in instr.operands:
                if op is None:
                    continue
                if not value_ok(op):
                    raise VerificationError(
                        f"@{function.name}/{block.name}: {instr!r} uses unknown "
                        f"value {op!r}"
                    )
                if isinstance(op, Instruction) and not dominates_use(op, block, idx):
                    raise VerificationError(
                        f"@{function.name}/{block.name}: {instr!r} is not "
                        f"dominated by its operand {op!r}"
                    )
