"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import Branch, CondBranch, Instruction, Phi


class BasicBlock:
    """A basic block inside a function.

    Instructions are stored in execution order; a well-formed block has all
    its phis first and exactly one terminator last (checked by the
    verifier, not at mutation time, so passes may transiently break it).
    """

    def __init__(self, name: str = "", parent=None):
        self.name = name
        self.parent = parent  # owning Function
        self.instructions: List[Instruction] = []

    # -- structure -------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(term.targets) if term is not None else []

    @property
    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors]

    def phis(self) -> List[Phi]:
        out = []
        for instr in self.instructions:
            if isinstance(instr, Phi):
                out.append(instr)
            else:
                break
        return out

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    # -- mutation ----------------------------------------------------------
    def append(self, instr: Instruction) -> Instruction:
        self.instructions.append(instr)
        instr.parent = self
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        self.instructions.insert(index, instr)
        instr.parent = self
        return instr

    def insert_before_terminator(self, instr: Instruction) -> Instruction:
        pos = len(self.instructions)
        if self.terminator is not None:
            pos -= 1
        return self.insert(pos, instr)

    def remove(self, instr: Instruction) -> None:
        self.instructions.remove(instr)
        instr.parent = None

    def index_of(self, instr: Instruction) -> int:
        for i, candidate in enumerate(self.instructions):
            if candidate is instr:
                return i
        raise ValueError(f"{instr!r} not in block {self.name}")

    def first_insertion_index(self) -> int:
        """Index after the phi prefix: the earliest legal insertion point."""
        return len(self.phis())

    # -- CFG edge surgery --------------------------------------------------
    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        """Retarget every branch edge ``self -> old`` to ``self -> new``.

        Phi nodes in ``old``/``new`` are *not* adjusted here; callers that
        need phi updates do them explicitly (edge splitting does).
        """
        term = self.terminator
        if term is None:
            raise ValueError(f"block {self.name} has no terminator")
        for i, target in enumerate(term.targets):
            if target is old:
                term.targets[i] = new

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self):
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"


def split_edge(pred: BasicBlock, succ: BasicBlock, name: str = "") -> BasicBlock:
    """Insert a fresh block on the CFG edge ``pred -> succ``.

    The new block becomes the phi predecessor of ``succ`` in place of
    ``pred``.  Returns the new block (already added to the function).
    """
    function = pred.parent
    block = function.add_block(name or f"{pred.name}.split", after=pred)
    block.append(Branch(succ))
    pred.replace_successor(succ, block)
    for phi in succ.phis():
        for i, incoming in enumerate(phi.incoming_blocks):
            if incoming is pred:
                phi.incoming_blocks[i] = block
    return block
