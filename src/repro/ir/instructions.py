"""Instruction set of the repro IR.

An instruction is itself the SSA :class:`~repro.ir.values.Value` it defines
(instructions of ``void`` type define nothing).  Block operands of
terminators and phi incoming blocks are kept separate from the SSA operand
list so that generic operand rewriting (RAUW) never has to special-case
them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .types import I1, I32, VOID, IntType, PointerType, Type, is_integer, is_pointer
from .values import Value

#: Binary integer opcodes.  All operate on i32 (or same-width) operands.
BINARY_OPS = (
    "add", "sub", "mul",
    "udiv", "sdiv", "urem", "srem",
    "and", "or", "xor",
    "shl", "lshr", "ashr",
)

#: Integer comparison predicates (LLVM naming).
ICMP_PREDICATES = ("eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge")

#: Checkpoint causes, used for the paper's Figure 5 accounting.
CKPT_MIDDLE_END = "middle-end-war"
CKPT_BACKEND = "back-end-war"
CKPT_FUNCTION_ENTRY = "function-entry"
CKPT_FUNCTION_EXIT = "function-exit"
#: extension (paper §6, Location-specific Checkpoints): checkpoints that
#: only bound the idempotent-region length, not break a WAR
CKPT_REGION_BOUND = "region-bound"
CKPT_CAUSES = (
    CKPT_MIDDLE_END,
    CKPT_BACKEND,
    CKPT_FUNCTION_ENTRY,
    CKPT_FUNCTION_EXIT,
    CKPT_REGION_BOUND,
)


class Instruction(Value):
    """Base class for all IR instructions."""

    opcode = "<abstract>"

    #: Originating mini-C source location (a ``repro.diagnostics.SourceLoc``)
    #: or None.  Stamped by the IR builder, preserved by clone sites, and
    #: threaded into machine IR so diagnostics at every level can point at
    #: source.  Deliberately NOT part of structural identity.
    loc = None

    def __init__(self, ty: Type, operands, name: str = ""):
        super().__init__(ty, name)
        self.operands: List[Value] = list(operands)
        self.parent = None  # owning BasicBlock, set on insertion

    # -- classification -------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def may_read_memory(self) -> bool:
        return False

    @property
    def may_write_memory(self) -> bool:
        return False

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction cannot be removed even when unused."""
        return self.may_write_memory or self.is_terminator

    @property
    def function(self):
        return self.parent.parent if self.parent is not None else None

    # -- operand manipulation -------------------------------------------
    def replace_uses_of(self, old: Value, new: Value) -> None:
        """Replace every operand occurrence of ``old`` with ``new``."""
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new

    def clone(self) -> "Instruction":
        """Shallow clone: same operands, no parent.  Terminator targets and
        phi incoming lists are copied as fresh lists."""
        raise NotImplementedError

    def __repr__(self):
        from .printer import instruction_to_str

        return f"<{instruction_to_str(self)}>"


class Alloca(Instruction):
    """Stack allocation of one value of ``allocated_type``.

    Yields a pointer into the (non-volatile) stack frame.
    """

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type

    def clone(self):
        return Alloca(self.allocated_type, self.name)


class Load(Instruction):
    """Read one value from memory.  Result type is the pointee type."""

    opcode = "load"

    def __init__(self, ptr: Value, name: str = ""):
        if not is_pointer(ptr.type):
            raise TypeError(f"load of non-pointer {ptr!r}")
        super().__init__(ptr.type.pointee, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def may_read_memory(self) -> bool:
        return True

    def clone(self):
        return Load(self.pointer, self.name)


class Store(Instruction):
    """Write ``value`` to memory at ``pointer``.  Produces no SSA value."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value):
        if not is_pointer(ptr.type):
            raise TypeError(f"store to non-pointer {ptr!r}")
        super().__init__(VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def may_write_memory(self) -> bool:
        return True

    def clone(self):
        return Store(self.value, self.pointer)


class BinaryOp(Instruction):
    """Two-operand integer arithmetic/logic."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(lhs.type if is_integer(lhs.type) else I32, [lhs, rhs], name)
        self.op = op

    @property
    def opcode(self):
        return self.op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def clone(self):
        return BinaryOp(self.op, self.lhs, self.rhs, self.name)


class ICmp(Instruction):
    """Integer comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def clone(self):
        return ICmp(self.predicate, self.lhs, self.rhs, self.name)


class Select(Instruction):
    """``cond ? true_value : false_value`` without a branch."""

    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        super().__init__(true_value.type, [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]

    def clone(self):
        return Select(self.condition, self.true_value, self.false_value, self.name)


class GetElementPtr(Instruction):
    """Pointer arithmetic: address of element ``index`` relative to ``base``.

    If the base pointee is an array the result points at its element type
    (one GEP == one subscript); otherwise the result has the base type and
    the index is scaled by the pointee size.
    """

    opcode = "getelementptr"

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not is_pointer(base.type):
            raise TypeError(f"gep on non-pointer {base!r}")
        pointee = base.type.pointee
        from .types import ArrayType

        elem = pointee.element if isinstance(pointee, ArrayType) else pointee
        super().__init__(PointerType(elem), [base, index], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def element_size(self) -> int:
        return self.type.pointee.size

    def clone(self):
        return GetElementPtr(self.base, self.index, self.name)


class Cast(Instruction):
    """Width-changing integer casts: ``zext``, ``sext``, ``trunc``."""

    def __init__(self, op: str, value: Value, to_type: IntType, name: str = ""):
        if op not in ("zext", "sext", "trunc"):
            raise ValueError(f"unknown cast {op!r}")
        super().__init__(to_type, [value], name)
        self.op = op

    @property
    def opcode(self):
        return self.op

    @property
    def value(self) -> Value:
        return self.operands[0]

    def clone(self):
        return Cast(self.op, self.value, self.type, self.name)


class Branch(Instruction):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target):
        super().__init__(VOID, [])
        self.targets = [target]

    @property
    def target(self):
        return self.targets[0]

    @property
    def is_terminator(self) -> bool:
        return True

    def clone(self):
        return Branch(self.target)


class CondBranch(Instruction):
    """Two-way conditional branch on an i1."""

    opcode = "condbr"

    def __init__(self, cond: Value, true_target, false_target):
        super().__init__(VOID, [cond])
        self.targets = [true_target, false_target]

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_target(self):
        return self.targets[0]

    @property
    def false_target(self):
        return self.targets[1]

    @property
    def is_terminator(self) -> bool:
        return True

    def clone(self):
        return CondBranch(self.condition, self.true_target, self.false_target)


class Call(Instruction):
    """Direct call to a module function."""

    opcode = "call"

    def __init__(self, callee, args, name: str = ""):
        super().__init__(callee.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self):
        return self.operands

    @property
    def may_read_memory(self) -> bool:
        return True

    @property
    def may_write_memory(self) -> bool:
        return True

    def clone(self):
        return Call(self.callee, list(self.operands), self.name)


class Ret(Instruction):
    """Function return, optionally with a value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])
        self.targets = []

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def is_terminator(self) -> bool:
        return True

    def clone(self):
        return Ret(self.value)


class Phi(Instruction):
    """SSA phi node.  ``operands[i]`` flows in from ``incoming_blocks[i]``."""

    opcode = "phi"

    def __init__(self, ty: Type, name: str = ""):
        super().__init__(ty, [], name)
        self.incoming_blocks: List = []

    def add_incoming(self, value: Value, block) -> None:
        self.operands.append(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, object]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block) -> Optional[Value]:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def set_incoming_for(self, block, value: Value) -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.operands[i] = value
                return
        self.add_incoming(value, block)

    def remove_incoming(self, block) -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                del self.operands[i]
                del self.incoming_blocks[i]
                return

    def clone(self):
        phi = Phi(self.type, self.name)
        for value, block in self.incoming:
            phi.add_incoming(value, block)
        return phi


class Checkpoint(Instruction):
    """Checkpoint intrinsic: save the volatile register file to NVM.

    Inserted by the checkpoint-placement passes; lowered by the back end to
    a call into the double-buffered checkpoint runtime.  ``cause`` drives
    the checkpoint-cause statistics (paper Figure 5).
    """

    opcode = "checkpoint"

    def __init__(self, cause: str = CKPT_MIDDLE_END):
        if cause not in CKPT_CAUSES:
            raise ValueError(f"unknown checkpoint cause {cause!r}")
        super().__init__(VOID, [])
        self.cause = cause

    @property
    def has_side_effects(self) -> bool:
        return True

    def clone(self):
        return Checkpoint(self.cause)
