"""Type system for the repro IR.

The IR is deliberately close to (a subset of) LLVM's: integers of a fixed
bit width, pointers, sized arrays, and function types.  SSA registers only
ever hold ``i1``/``i8``/``i32`` integers or pointers; arrays exist purely as
the pointee type of globals and allocas.
"""

from __future__ import annotations


class Type:
    """Base class of all IR types."""

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, tuple(sorted(self.__dict__))))

    @property
    def size(self) -> int:
        """Size of a value of this type in bytes (data layout)."""
        raise NotImplementedError

    def __repr__(self):
        return str(self)


class VoidType(Type):
    """The type of instructions that produce no value."""

    @property
    def size(self) -> int:
        return 0

    def __str__(self):
        return "void"


class IntType(Type):
    """A fixed-width two's-complement integer type."""

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    @property
    def size(self) -> int:
        return max(1, self.bits // 8)

    def __str__(self):
        return f"i{self.bits}"

    def __eq__(self, other):
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self):
        return hash(("IntType", self.bits))


class PointerType(Type):
    """A pointer to a value of ``pointee`` type.  Pointers are 32-bit."""

    def __init__(self, pointee: Type):
        self.pointee = pointee

    @property
    def size(self) -> int:
        return 4

    def __str__(self):
        return f"{self.pointee}*"

    def __eq__(self, other):
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self):
        return hash(("PointerType", self.pointee))


class ArrayType(Type):
    """A fixed-length array of ``count`` elements of ``element`` type."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    @property
    def size(self) -> int:
        return self.element.size * self.count

    def __str__(self):
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self):
        return hash(("ArrayType", self.element, self.count))


class FunctionType(Type):
    """The signature of a function: return type plus parameter types."""

    def __init__(self, return_type: Type, param_types):
        self.return_type = return_type
        self.param_types = tuple(param_types)

    @property
    def size(self) -> int:
        return 4  # function pointers are 32-bit

    def __str__(self):
        params = ", ".join(str(t) for t in self.param_types)
        return f"{self.return_type} ({params})"

    def __eq__(self, other):
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
        )

    def __hash__(self):
        return hash(("FunctionType", self.return_type, self.param_types))


# Canonical singletons used throughout the compiler.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)


def pointer_to(ty: Type) -> PointerType:
    """Convenience constructor for pointer types."""
    return PointerType(ty)


def is_integer(ty: Type) -> bool:
    return isinstance(ty, IntType)


def is_pointer(ty: Type) -> bool:
    return isinstance(ty, PointerType)
