"""repro.ir — a compact, typed, SSA intermediate representation.

The IR mirrors the subset of LLVM IR that WARio's transformations operate
on: integer arithmetic, loads/stores over a byte-addressed non-volatile
memory, ``getelementptr`` pointer arithmetic, phi nodes, direct calls, and
the ``checkpoint`` intrinsic that the back end lowers to the
double-buffered register-checkpoint runtime.
"""

from .block import BasicBlock, split_edge
from .builder import IRBuilder
from .function import Function
from .instructions import (
    BINARY_OPS,
    CKPT_BACKEND,
    CKPT_CAUSES,
    CKPT_FUNCTION_ENTRY,
    CKPT_FUNCTION_EXIT,
    CKPT_MIDDLE_END,
    ICMP_PREDICATES,
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Checkpoint,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from .module import Module
from .parser import IRParseError, parse_module, parse_type
from .printer import function_to_str, instruction_to_str, module_to_str
from .types import (
    I1,
    I8,
    I16,
    I32,
    VOID,
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VoidType,
    is_integer,
    is_pointer,
    pointer_to,
)
from .values import Argument, Constant, GlobalVariable, UndefValue, Value, as_signed, const
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock", "split_edge", "IRBuilder", "Function", "Module",
    "Alloca", "BinaryOp", "Branch", "Call", "Cast", "Checkpoint",
    "CondBranch", "GetElementPtr", "ICmp", "Instruction", "Load", "Phi",
    "Ret", "Select", "Store",
    "BINARY_OPS", "ICMP_PREDICATES",
    "CKPT_BACKEND", "CKPT_CAUSES", "CKPT_FUNCTION_ENTRY",
    "CKPT_FUNCTION_EXIT", "CKPT_MIDDLE_END",
    "I1", "I8", "I16", "I32", "VOID",
    "ArrayType", "FunctionType", "IntType", "PointerType", "Type",
    "VoidType", "is_integer", "is_pointer", "pointer_to",
    "Argument", "Constant", "GlobalVariable", "UndefValue", "Value",
    "as_signed", "const",
    "VerificationError", "verify_function", "verify_module",
    "IRParseError", "parse_module", "parse_type",
    "function_to_str", "instruction_to_str", "module_to_str",
]
