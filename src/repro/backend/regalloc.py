"""Linear-scan register allocation with spilling.

Allocatable registers are the callee-saved r4-r11; r0-r3/r12 stay
reserved for argument passing and spill scratch.  Spilled vregs get a
dedicated stack slot each — the paper's ``-no-stack-slot-sharing`` (§4.4):
slots are never reused across values, so the only spill WARs left are
re-executions of the same slot inside loops, which the spill checkpoint
inserters then break.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .mir import ALLOCATABLE, MFunction, MInstr, StackSlot, VReg


class RegAllocError(Exception):
    pass


def _liveness(fn: MFunction) -> Tuple[Dict[str, Set[int]], Dict[str, Set[int]], Dict[int, VReg]]:
    """Backward dataflow liveness over virtual registers.

    Returns (live_in, live_out, vregs-by-id); pinned physical registers
    are excluded.
    """
    use_sets: Dict[str, Set[int]] = {}
    def_sets: Dict[str, Set[int]] = {}
    vregs: Dict[int, VReg] = {}
    for block in fn.blocks:
        uses: Set[int] = set()
        defs: Set[int] = set()
        for instr in block.instructions:
            for reg in instr.uses():
                if reg.is_phys:
                    continue
                vregs[reg.id] = reg
                if reg.id not in defs:
                    uses.add(reg.id)
            for reg in instr.defs():
                if reg.is_phys:
                    continue
                vregs[reg.id] = reg
                defs.add(reg.id)
        use_sets[block.name] = uses
        def_sets[block.name] = defs

    live_in: Dict[str, Set[int]] = {b.name: set() for b in fn.blocks}
    live_out: Dict[str, Set[int]] = {b.name: set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            out: Set[int] = set()
            for succ in block.successors():
                out |= live_in[succ.name]
            new_in = use_sets[block.name] | (out - def_sets[block.name])
            if out != live_out[block.name] or new_in != live_in[block.name]:
                live_out[block.name] = out
                live_in[block.name] = new_in
                changed = True
    return live_in, live_out, vregs


def _build_intervals(fn: MFunction) -> Tuple[Dict[int, Tuple[int, int]], Dict[int, VReg]]:
    """Conservative single-range live intervals over a linearised order."""
    live_in, live_out, vregs = _liveness(fn)
    start: Dict[int, int] = {}
    end: Dict[int, int] = {}

    def touch(reg_id: int, pos: int) -> None:
        start[reg_id] = min(start.get(reg_id, pos), pos)
        end[reg_id] = max(end.get(reg_id, pos), pos)

    pos = 0
    for block in fn.blocks:
        block_start = pos
        for instr in block.instructions:
            for reg in instr.uses():
                if not reg.is_phys:
                    touch(reg.id, pos)
            for reg in instr.defs():
                if not reg.is_phys:
                    touch(reg.id, pos)
            pos += 1
        block_end = max(block_start, pos - 1)
        for reg_id in live_in[block.name]:
            touch(reg_id, block_start)
        for reg_id in live_out[block.name]:
            touch(reg_id, block_end)
    intervals = {rid: (start[rid], end[rid]) for rid in start}
    return intervals, vregs


#: caller-saved registers usable for live ranges that do not cross calls
CALLER_POOL = ("r2", "r3")
CALLEE_POOL = ALLOCATABLE


def allocate_registers(fn: MFunction):
    """Assign physical registers / spill slots to every vreg of ``fn``.

    Live ranges that do not cross a call may additionally use the
    caller-saved r2/r3 (as a production allocator would); call-crossing
    ranges are restricted to the callee-saved pool.  Returns the spill
    map (vreg id -> dedicated slot).  After this pass every register
    operand is physical, except ``bl`` argument lists (resolved by call
    expansion from ``vreg.phys``/the spill map).
    """
    intervals, vregs = _build_intervals(fn)

    call_positions: List[int] = []
    pos = 0
    for block in fn.blocks:
        for instr in block.instructions:
            if instr.opcode == "bl":
                call_positions.append(pos)
            pos += 1

    import bisect

    def crosses_call(start: int, end: int) -> bool:
        i = bisect.bisect_right(call_positions, start)
        return i < len(call_positions) and call_positions[i] < end

    # The entry block starts with `mov vreg, rN` argument moves: r2/r3 are
    # live-in there, so intervals starting inside that prefix must not
    # take a caller-saved register (they would clobber an unread argument).
    arg_prefix = 0
    if fn.blocks:
        for instr in fn.blocks[0].instructions:
            if (
                instr.opcode == "mov"
                and instr.ops
                and isinstance(instr.ops[0], VReg)
                and instr.ops[0].is_phys
            ):
                arg_prefix += 1
            else:
                break

    # Rematerialisation candidates: vregs with a single constant-like
    # definition (immediate, global address, frame address).  Evicting
    # one recomputes the value at each use instead of spilling — exactly
    # what a production allocator does, and important here because a
    # spilled constant would otherwise manufacture spill WARs.
    def_instrs: Dict[int, List[MInstr]] = {}
    for instr in fn.instructions():
        if instr.dst is not None and not instr.dst.is_phys:
            def_instrs.setdefault(instr.dst.id, []).append(instr)

    def rematerialisable(reg_id: int):
        defs = def_instrs.get(reg_id, [])
        if len(defs) != 1:
            return None
        d = defs[0]
        if d.opcode == "mov" and isinstance(d.ops[0], int):
            return d
        if d.opcode in ("adr", "lea"):
            return d
        return None

    order = sorted(intervals.items(), key=lambda item: (item[1][0], item[1][1]))
    free_callee: List[str] = list(CALLEE_POOL)
    free_caller: List[str] = list(CALLER_POOL)
    active: List[Tuple[int, int]] = []  # (end, reg_id) sorted by end
    spills: Dict[int, StackSlot] = {}
    remats: Dict[int, MInstr] = {}

    def evict(reg_id: int) -> None:
        template = rematerialisable(reg_id)
        if template is not None:
            remats[reg_id] = template
        else:
            spills[reg_id] = fn.new_slot(4, kind="spill")

    def release(phys: str) -> None:
        if phys in CALLER_POOL:
            free_caller.append(phys)
        else:
            free_callee.append(phys)

    for reg_id, (ival_start, ival_end) in order:
        remaining: List[Tuple[int, int]] = []
        for active_end, active_id in active:
            if active_end < ival_start:
                release(vregs[active_id].phys)
            else:
                remaining.append((active_end, active_id))
        active = remaining
        crossing = crosses_call(ival_start, ival_end) or ival_start < arg_prefix
        phys = None
        if not crossing and free_caller:
            phys = free_caller.pop(0)
        elif free_callee:
            phys = free_callee.pop(0)
        if phys is not None:
            vregs[reg_id].phys = phys
            active.append((ival_end, reg_id))
            active.sort()
            continue
        # Evict a rematerialisable interval when one is live (cheap);
        # otherwise spill the compatible interval that ends furthest
        # (Poletto-Sarkar), falling back to spilling the current one.
        compatible = [
            entry for entry in active
            if not (crossing and vregs[entry[1]].phys in CALLER_POOL)
        ]
        remat_entries = [e for e in compatible if rematerialisable(e[1]) is not None]
        victim_entry = None
        if remat_entries:
            victim_entry = remat_entries[-1]
        elif compatible and compatible[-1][0] > ival_end:
            victim_entry = compatible[-1]
        if victim_entry is not None:
            active.remove(victim_entry)
            victim = vregs[victim_entry[1]]
            evict(victim_entry[1])
            vregs[reg_id].phys = victim.phys
            victim.phys = None
            active.append((ival_end, reg_id))
            active.sort()
        else:
            evict(reg_id)

    _rewrite_spills(fn, spills, remats)
    return spills, remats


def _spilled(reg, spills: Dict[int, StackSlot]) -> bool:
    return isinstance(reg, VReg) and not reg.is_phys and reg.id in spills


def _rewrite_spills(
    fn: MFunction,
    spills: Dict[int, StackSlot],
    remats: Dict[int, MInstr],
) -> None:
    """Insert reload/store (or rematerialisation) code around every
    evicted operand.

    Scratch registers: r0/r1 for uses, r12 for defs (loads, stores and
    moves do not touch the flags, so this code is safe between cmp and
    bcc/cmov).
    """
    if not spills and not remats:
        return

    def remat_into(template: MInstr, scratch: VReg) -> MInstr:
        return MInstr(template.opcode, scratch, list(template.ops))

    remat_defs = {id(t) for t in remats.values()}
    for block in fn.blocks:
        new_instrs: List[MInstr] = []
        for instr in block.instructions:
            if id(instr) in remat_defs:
                continue  # the definition is recomputed at each use
            if instr.opcode == "bl":
                new_instrs.append(instr)
                continue
            before: List[MInstr] = []
            after: List[MInstr] = []
            scratch_pool = ["r0", "r1"]
            replaced: Dict[int, VReg] = {}
            for op_idx, op in enumerate(instr.ops):
                if not (_spilled(op, spills) or _rematted(op, remats)):
                    continue
                if op.id in replaced:
                    instr.ops[op_idx] = replaced[op.id]
                    continue
                if not scratch_pool:
                    raise RegAllocError("out of spill scratch registers")
                name = scratch_pool.pop(0)
                scratch = VReg(name, phys=name)
                if op.id in remats:
                    before.append(remat_into(remats[op.id], scratch))
                else:
                    before.append(MInstr("ldr", scratch, [spills[op.id], 0]))
                instr.ops[op_idx] = scratch
                replaced[op.id] = scratch
            if instr.dst is not None and _spilled(instr.dst, spills):
                slot = spills[instr.dst.id]
                scratch = VReg("r12", phys="r12")
                if instr.opcode == "cmov":
                    # conditional move reads its destination first
                    before.append(MInstr("ldr", scratch, [slot, 0]))
                instr.dst = scratch
                after.append(MInstr("str", None, [scratch, slot, 0]))
            new_instrs.extend(before)
            new_instrs.append(instr)
            new_instrs.extend(after)
        block.instructions = new_instrs
        for minstr in new_instrs:
            minstr.parent = block


def _rematted(reg, remats: Dict[int, MInstr]) -> bool:
    return isinstance(reg, VReg) and not reg.is_phys and reg.id in remats


def used_callee_saved(fn: MFunction) -> List[str]:
    """Callee-saved registers the function actually touches."""
    used: Set[str] = set()
    for instr in fn.instructions():
        for reg in instr.uses() + instr.defs():
            if reg.phys in ALLOCATABLE:
                used.add(reg.phys)
    return sorted(used, key=lambda r: int(r[1:]))
