"""Back-end WAR protection for register-spill stack slots.

After register allocation (with dedicated slots per spilled value), a WAR
on a slot can only arise when a slot's reload (read) is followed — within
an iteration or around a loop back edge — by the slot's store (write).

Two inserters are provided (paper §3.1.3):

* ``basic`` — Ratchet's scheme: a checkpoint immediately before every
  offending spill store.
* ``hitting-set`` — WARio's Hitting Set Stack Spill Checkpoint Inserter:
  candidate positions per WAR plus the greedy minimum hitting set, so one
  checkpoint covers the spill WARs that write clustering concentrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ir.instructions import CKPT_BACKEND
from .mir import MBlock, MFunction, MInstr, StackSlot

MODES = ("basic", "hitting-set")


@dataclass
class SlotAccess:
    block: MBlock
    index: int
    instr: MInstr
    slot: StackSlot
    is_load: bool


def _slot_accesses(fn: MFunction) -> List[SlotAccess]:
    out: List[SlotAccess] = []
    for block in fn.blocks:
        for idx, instr in enumerate(block.instructions):
            if instr.opcode.startswith("ldr"):
                base = instr.ops[0]
                if isinstance(base, StackSlot):
                    out.append(SlotAccess(block, idx, instr, base, True))
            elif instr.opcode.startswith("str"):
                base = instr.ops[1]
                if isinstance(base, StackSlot):
                    out.append(SlotAccess(block, idx, instr, base, False))
    return out


def _reachability(fn: MFunction) -> Dict[str, Set[str]]:
    succs = {b.name: [s.name for s in b.successors()] for b in fn.blocks}
    reach: Dict[str, Set[str]] = {}
    for block in fn.blocks:
        seen: Set[str] = set()
        stack = list(succs[block.name])
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(succs[name])
        reach[block.name] = seen
    return reach


def _is_barrier(
    instr: MInstr, calls_are_checkpoints: bool, barrier_callees=None
) -> bool:
    if instr.opcode == "checkpoint":
        return True
    if not calls_are_checkpoints or instr.opcode != "bl":
        return False
    if barrier_callees is not None and instr.ops[0] not in barrier_callees:
        # Transparent callee: runs without checkpointing, so the call is
        # not a barrier for the caller's spill slots (it cannot touch
        # them either — they live below the caller's frame pointer).
        return False
    return True


def _segment_has_barrier(instrs, calls_are_checkpoints: bool) -> bool:
    return any(_is_barrier(i, calls_are_checkpoints) for i in instrs)


@dataclass
class SpillWAR:
    load: SlotAccess
    store: SlotAccess
    kind: str  # 'forward' | 'backward'


def find_spill_wars(
    fn: MFunction,
    calls_are_checkpoints: bool = True,
    barrier_callees: Optional[Set[str]] = None,
) -> List[SpillWAR]:
    """The unresolved spill WARs of ``fn``, pruned to the Pareto frontier
    (dominated pairs are implied by the kept ones, for both detection and
    placement).

    A WAR counts as resolved when an existing barrier (checkpoint, or a
    call when entry checkpoints are in force) occupies one of its
    candidate positions — i.e. it lies on every load->store path.
    ``barrier_callees`` restricts which calls count: only ``bl`` to a
    name in the set is a barrier (calls to transparent callees do not
    checkpoint).
    """
    accesses = _slot_accesses(fn)
    by_slot: Dict[int, Tuple[List[SlotAccess], List[SlotAccess]]] = {}
    for access in accesses:
        loads, stores = by_slot.setdefault(id(access.slot), ([], []))
        (loads if access.is_load else stores).append(access)
    reach = _reachability(fn)
    pairs: List[SpillWAR] = []
    for loads, stores in by_slot.values():
        for load in loads:
            for store in stores:
                war = _classify(load, store, reach)
                if war is not None:
                    pairs.append(war)
    pairs = _prune_dominated(pairs)
    barrier_positions = {
        (block.name, idx)
        for block in fn.blocks
        for idx, instr in enumerate(block.instructions)
        if _is_barrier(instr, calls_are_checkpoints, barrier_callees)
    }
    articulation_cache: Dict[Tuple[int, int], List] = {}
    wars: List[SpillWAR] = []
    for war in pairs:
        candidates = _candidates(war, fn, articulation_cache)
        if barrier_positions.isdisjoint(candidates):
            wars.append(war)
    return wars


def _classify(load: SlotAccess, store: SlotAccess, reach) -> Optional[SpillWAR]:
    if load.block is store.block:
        if store.index > load.index:
            return SpillWAR(load, store, "forward")
        if load.block.name in reach[load.block.name]:  # block is in a cycle
            return SpillWAR(load, store, "backward")
        return None
    if store.block.name in reach[load.block.name]:
        return SpillWAR(load, store, "forward")
    return None


def _prune_dominated(wars: List[SpillWAR]) -> List[SpillWAR]:
    """Keep only the Pareto frontier per (load block, store block, kind):
    a later load with an earlier store yields a subset candidate set, so
    hitting it hits the dominated pairs too."""
    groups: Dict[Tuple[int, int, str], List[SpillWAR]] = {}
    for war in wars:
        key = (id(war.load.block), id(war.store.block), war.kind)
        groups.setdefault(key, []).append(war)
    kept: List[SpillWAR] = []
    for group in groups.values():
        if len(group) == 1:
            kept.extend(group)
            continue
        indexed = sorted(
            ((w.load.index, w.store.index, w) for w in group),
            key=lambda t: (-t[0], t[1]),
        )
        best_sidx = None
        for _lidx, sidx, war in indexed:
            if best_sidx is None or sidx < best_sidx:
                kept.append(war)
                best_sidx = sidx
    return kept


def _candidates(war: SpillWAR, fn: MFunction, articulation_cache=None) -> List[Tuple[str, int]]:
    load, store = war.load, war.store
    positions: List[Tuple[str, int]] = []
    if load.block is store.block and war.kind == "forward":
        return [(load.block.name, j) for j in range(load.index + 1, store.index + 1)]
    positions.extend(
        (load.block.name, j)
        for j in range(load.index + 1, _insertable_end(load.block) + 1)
    )
    positions.extend(
        (store.block.name, j)
        for j in range(0, store.index + 1)
        if not (store.block is load.block and j > load.index)
    )
    from ..core.checkpoint_inserter import blocks_on_every_path

    if articulation_cache is None:
        articulation_cache = {}
    cache_key = (id(load.block), id(store.block))
    articulation = articulation_cache.get(cache_key)
    if articulation is None:
        articulation = blocks_on_every_path(
            load.block, store.block, fn.blocks, lambda b: b.successors()
        )
        articulation_cache[cache_key] = articulation
    for block in articulation:
        positions.extend(
            (block.name, j) for j in range(0, _insertable_end(block) + 1)
        )
    return positions


def _insertable_end(block: MBlock) -> int:
    """Last index at which a checkpoint can be inserted (before the
    trailing branch group)."""
    last = len(block.instructions)
    while last > 0 and block.instructions[last - 1].opcode in ("b", "bcc", "bx_lr"):
        last -= 1
    return last


def insert_spill_checkpoints(
    fn: MFunction,
    mode: str = "hitting-set",
    calls_are_checkpoints: bool = True,
    barrier_callees: Optional[Set[str]] = None,
) -> int:
    """Break all spill-slot WARs of ``fn``; returns checkpoints added."""
    if mode not in MODES:
        raise ValueError(f"unknown spill checkpoint mode {mode!r}")
    wars = find_spill_wars(fn, calls_are_checkpoints, barrier_callees)
    if not wars:
        return 0
    if mode == "basic":
        # Ratchet: checkpoint immediately before each offending store.
        chosen: List[Tuple[str, int]] = []
        seen: Set[Tuple[str, int]] = set()
        for war in wars:
            key = (war.store.block.name, war.store.index)
            if key not in seen:
                seen.add(key)
                chosen.append(key)
    else:
        # Local import: repro.core imports the backend for its pipeline.
        from ..core.hitting_set import greedy_hitting_set

        reach = _reachability(fn)
        in_cycle = {b.name: b.name in reach[b.name] for b in fn.blocks}
        preferred = {(war.store.block.name, war.store.index) for war in wars}
        articulation_cache = {}
        requirements = [_candidates(war, fn, articulation_cache) for war in wars]

        def cost(key) -> float:
            base = 10.0 if in_cycle[key[0]] else 1.0
            return base * (0.999 if key in preferred else 1.0)

        chosen = greedy_hitting_set(requirements, cost)
    by_block: Dict[str, List[int]] = {}
    for name, idx in chosen:
        by_block.setdefault(name, []).append(idx)
    for name, indices in by_block.items():
        block = fn.block(name)
        for idx in sorted(indices, reverse=True):
            block.insert(idx, MInstr("checkpoint", cause=CKPT_BACKEND))
    return len(chosen)
