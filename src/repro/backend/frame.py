"""Frame lowering: prologue/epilogue construction, call expansion, and
the three epilogue styles the evaluation compares.

Epilogue styles (paper §3.1.3):

``plain``
    No intermittent-computing protection (the uninstrumented C build).

``ratchet``
    Ratchet's scheme: the Idempotent Stack Pop Converter splits each pop
    into loads + checkpoint + sp adjustment, and every upward sp
    adjustment is preceded by a checkpoint — up to one checkpoint per
    stack-pointer modification.

``wario``
    WARio's Epilog Optimizer: interrupts are masked around the whole
    epilogue, so one checkpoint (before the last sp adjustment) suffices.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.instructions import CKPT_FUNCTION_ENTRY, CKPT_FUNCTION_EXIT
from .mir import ARG_REGS, MFunction, MInstr, StackSlot, VReg
from .regalloc import used_callee_saved

EPILOGUE_STYLES = ("plain", "ratchet", "wario")

#: TEST-ONLY seeded epilogue bugs (see ``EnvironmentConfig``): lower a
#: checkpointing style with one of its protection mechanisms removed so
#: the static certifier and the fault-injection campaign have a real
#: machine-level consistency bug to catch.
EPILOGUE_BUGS = ("skip-pop-conversion", "drop-epilog-mask")


class FrameError(Exception):
    pass


def lower_frame(
    fn: MFunction,
    spills: Dict[int, StackSlot],
    epilogue_style: str = "plain",
    entry_checkpoint: bool = False,
    is_entry_function: bool = False,
    remats: Dict[int, MInstr] = None,
    epilogue_bug: Optional[str] = None,
) -> None:
    """Finalise ``fn``: slot offsets, prologue, epilogues, call expansion."""
    if epilogue_style not in EPILOGUE_STYLES:
        raise FrameError(f"unknown epilogue style {epilogue_style!r}")
    if epilogue_bug is not None and epilogue_bug not in EPILOGUE_BUGS:
        raise FrameError(f"unknown epilogue bug {epilogue_bug!r}")

    offset = 0
    for slot in fn.slots:
        slot.offset = offset
        offset += (slot.size + 3) & ~3
    fn.frame_size = offset

    saved = used_callee_saved(fn)
    if fn.makes_calls:
        saved = saved + ["lr"]
    fn.saved_regs = saved
    # Thumb-2 encodes low (r4-r7, lr) and high (r8-r11) callee-saved
    # registers in separate push/pop instructions, so an epilogue can
    # contain up to three stack-pointer adjustments (paper §3.1.3):
    # locals deallocation, the high pop, and the low pop.
    fn.saved_low = [r for r in saved if r == "lr" or int(r[1:]) < 8]
    fn.saved_high = [r for r in saved if r != "lr" and int(r[1:]) >= 8]

    _expand_calls(fn, spills, remats or {})
    _expand_rets(fn, epilogue_style, epilogue_bug)
    _insert_prologue(fn, entry_checkpoint and not is_entry_function)


def _insert_prologue(fn: MFunction, entry_checkpoint: bool) -> None:
    entry = fn.blocks[0]
    prologue: List[MInstr] = []
    if entry_checkpoint:
        prologue.append(MInstr("checkpoint", cause=CKPT_FUNCTION_ENTRY))
    if fn.saved_low:
        prologue.append(MInstr("push", regs=list(fn.saved_low)))
    if fn.saved_high:
        prologue.append(MInstr("push", regs=list(fn.saved_high)))
    if fn.frame_size:
        prologue.append(MInstr("subsp", ops=[fn.frame_size]))
    for i, instr in enumerate(prologue):
        entry.insert(i, instr)


def _epilogue_sequence(fn: MFunction, style: str,
                       bug: Optional[str] = None) -> List[MInstr]:
    """The function epilogue, per protection style.

    The stack after the prologue (descending addresses): low callee-saved
    group, then the high group, then ``frame_size`` bytes of locals at
    sp.  Thumb-2 restores each group with its own pop, so the Ratchet
    style needs up to three checkpoints; the WARio Epilog Optimizer masks
    interrupts and needs exactly one (paper §3.1.3).

    ``bug`` seeds a deliberately broken lowering (test-only):
    ``"skip-pop-conversion"`` emits the Ratchet epilogue with raw pops —
    a pop reads the bytes its own sp adjustment releases, inside an open
    region; ``"drop-epilog-mask"`` emits the WARio epilogue without the
    ``cpsid``/``cpsie`` pair, leaving the frame release exposed to
    interrupt stacking before the exit checkpoint commits.
    """
    seq: List[MInstr] = []
    low, high = fn.saved_low, fn.saved_high
    if style == "plain":
        if fn.frame_size:
            seq.append(MInstr("addsp", ops=[fn.frame_size]))
        if high:
            seq.append(MInstr("pop", regs=list(high)))
        if low:
            seq.append(MInstr("pop", regs=list(low)))
        return seq
    if style == "ratchet":
        # Checkpoint before each upward sp adjustment; pops are converted
        # to loads + checkpoint + adjust (Idempotent Stack Pop Converter).
        if fn.frame_size:
            seq.append(MInstr("checkpoint", cause=CKPT_FUNCTION_EXIT))
            seq.append(MInstr("addsp", ops=[fn.frame_size]))
        if bug == "skip-pop-conversion":
            # Seeded bug: the converter is skipped — each group keeps its
            # raw pop, which re-reads bytes it has already released.
            for group in (high, low):
                if group:
                    seq.append(MInstr("pop", regs=list(group)))
            return seq
        for group in (high, low):
            if not group:
                continue
            for i, reg in enumerate(group):
                seq.append(MInstr("ldr", VReg(reg, phys=reg), ["sp", 4 * i]))
            seq.append(MInstr("checkpoint", cause=CKPT_FUNCTION_EXIT))
            seq.append(MInstr("addsp", ops=[4 * len(group)]))
        return seq
    # wario: mask interrupts, one checkpoint before one final adjustment
    if not fn.frame_size and not low and not high:
        return seq
    masked = bug != "drop-epilog-mask"
    if masked:
        seq.append(MInstr("cpsid"))
    if fn.frame_size:
        seq.append(MInstr("addsp", ops=[fn.frame_size]))
    offset = 0
    for group in (high, low):
        for i, reg in enumerate(group):
            seq.append(MInstr("ldr", VReg(reg, phys=reg), ["sp", offset + 4 * i]))
        offset += 4 * len(group)
    seq.append(MInstr("checkpoint", cause=CKPT_FUNCTION_EXIT))
    if offset:
        seq.append(MInstr("addsp", ops=[offset]))
    if masked:
        seq.append(MInstr("cpsie"))
    return seq


def _expand_rets(fn: MFunction, style: str, bug: Optional[str] = None) -> None:
    for block in fn.blocks:
        new_instrs: List[MInstr] = []
        for instr in block.instructions:
            if instr.opcode != "ret":
                new_instrs.append(instr)
                continue
            if instr.ops:
                src = instr.ops[0]
                r0 = VReg("r0", phys="r0")
                if src.phys != "r0":
                    new_instrs.append(MInstr("mov", r0, [src]))
            new_instrs.extend(_epilogue_sequence(fn, style, bug))
        block.instructions = new_instrs
        for minstr in new_instrs:
            minstr.parent = block


def _expand_calls(fn: MFunction, spills: Dict[int, StackSlot], remats: Dict[int, MInstr]) -> None:
    for block in fn.blocks:
        new_instrs: List[MInstr] = []
        for instr in block.instructions:
            if instr.opcode != "bl":
                new_instrs.append(instr)
                continue
            if len(instr.args) > len(ARG_REGS):
                raise FrameError(f"{fn.name}: too many call arguments")
            # Argument moves form a parallel copy: a source living in
            # r2/r3 must not be clobbered by an earlier move into that
            # register, so sequence hazard-free (r12 breaks cycles).
            pending = []
            for i, arg in enumerate(instr.args):
                if arg.is_phys:
                    pending.append((ARG_REGS[i], ("reg", arg.phys)))
                elif arg.id in spills:
                    pending.append((ARG_REGS[i], ("slot", spills[arg.id])))
                elif arg.id in remats:
                    pending.append((ARG_REGS[i], ("remat", remats[arg.id])))
                else:
                    raise FrameError(f"{fn.name}: unallocated call argument {arg!r}")
            while pending:
                progressed = False
                for i, (target, source) in enumerate(pending):
                    blocked = any(
                        src[0] == "reg" and src[1] == target
                        for t, src in pending
                        if t != target
                    )
                    if blocked:
                        continue
                    if source[0] == "reg":
                        if source[1] != target:
                            new_instrs.append(
                                MInstr("mov", VReg(target, phys=target),
                                       [VReg(source[1], phys=source[1])])
                            )
                    elif source[0] == "remat":
                        template = source[1]
                        new_instrs.append(
                            MInstr(template.opcode, VReg(target, phys=target),
                                   list(template.ops))
                        )
                    else:
                        new_instrs.append(
                            MInstr("ldr", VReg(target, phys=target), [source[1], 0])
                        )
                    pending.pop(i)
                    progressed = True
                    break
                if not progressed:
                    # cycle among r2/r3 sources: park one in r12
                    target, source = pending[0]
                    blocked_reg = next(
                        src[1] for t, src in pending
                        if src[0] == "reg" and src[1] in (t2 for t2, _ in pending)
                    )
                    new_instrs.append(
                        MInstr("mov", VReg("r12", phys="r12"),
                               [VReg(blocked_reg, phys=blocked_reg)])
                    )
                    pending = [
                        (t, ("reg", "r12") if src == ("reg", blocked_reg) else src)
                        for t, src in pending
                    ]
            result_dst: Optional[VReg] = instr.dst
            call = MInstr("bl", None, list(instr.ops))
            new_instrs.append(call)
            if result_dst is not None:
                r0 = VReg("r0", phys="r0")
                if result_dst.is_phys:
                    if result_dst.phys != "r0":
                        new_instrs.append(MInstr("mov", result_dst, [r0]))
                elif result_dst.id in spills:
                    new_instrs.append(MInstr("str", None, [r0, spills[result_dst.id], 0]))
                else:
                    raise FrameError(f"{fn.name}: unallocated call result")
            instr.args = []
        block.instructions = new_instrs
        for minstr in new_instrs:
            minstr.parent = block
