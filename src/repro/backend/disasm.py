"""Disassembler: objdump-style listings of encoded programs.

Useful for debugging generated code and for golden tests: every flat
instruction with its index, byte address, encoded size, and resolved
operands (branch targets shown as ``-> index (label)``).
"""

from __future__ import annotations

from typing import List, Optional

from .encoder import Program
from .mir import MInstr, StackSlot, VReg


def _operand_str(op) -> str:
    if isinstance(op, VReg):
        return op.phys or f"%{op.name}"
    if isinstance(op, StackSlot):
        return f"[sp, #{op.offset}]" if op.offset >= 0 else f"[slot{op.index}]"
    if isinstance(op, str):
        return op
    return f"#{op}" if isinstance(op, int) else str(op)


def format_instruction(instr: MInstr, index: Optional[int] = None) -> str:
    op = instr.opcode
    if instr.cond:
        op = f"{op}.{instr.cond}"
    parts: List[str] = []
    if instr.dst is not None:
        parts.append(_operand_str(instr.dst))
    if instr.opcode in ("b", "bcc", "bl") and instr.ops:
        target = instr.ops[0]
        label = f" ({instr.comment})" if instr.comment else ""
        parts.append(f"-> {target}{label}")
    elif instr.opcode in ("ldr", "ldrb", "ldrh"):
        base, offset = instr.ops
        parts.append(f"[{_operand_str(base)}, #{offset}]"
                     if not isinstance(base, StackSlot)
                     else _operand_str(base))
    elif instr.opcode in ("str", "strb", "strh"):
        value, base, offset = instr.ops
        parts.append(_operand_str(value))
        parts.append(f"[{_operand_str(base)}, #{offset}]"
                     if not isinstance(base, StackSlot)
                     else _operand_str(base))
    elif instr.opcode == "adr" and instr.comment:
        parts.append(f"#{instr.ops[0]} ({instr.comment})")
    else:
        parts.extend(_operand_str(o) for o in instr.ops)
    if instr.regs:
        parts.append("{" + ", ".join(instr.regs) + "}")
    if instr.cause:
        parts.append(f"!{instr.cause}")
    body = f"{op:<12}" + ", ".join(p for p in parts if p)
    return body.rstrip()


def disassemble(program: Program, start: int = 0, count: Optional[int] = None) -> str:
    """A full (or windowed) listing of the program."""
    lines: List[str] = []
    end = len(program.instrs) if count is None else min(start + count, len(program.instrs))
    address = sum(program.sizes[:start])
    entry_of = {idx: name for name, idx in program.func_entry.items()}
    for idx in range(start, end):
        if idx in entry_of:
            lines.append(f"\n{entry_of[idx]}:")
        instr = program.instrs[idx]
        size = program.sizes[idx]
        lines.append(
            f"  {idx:>6}  0x{address:05x}  ({size}B)  {format_instruction(instr, idx)}"
        )
        address += size
    header = (
        f"; program {program.name}: {len(program.instrs)} instructions, "
        f".text {program.text_size} bytes\n"
    )
    return header + "\n".join(lines).lstrip("\n")


def render_compile_listing(program: Program, env_name: str) -> str:
    """The canonical ``repro compile`` artifact: environment summary line
    plus the full listing.  Shared by the CLI (stdout / ``-o`` file) and
    the ``compile`` request of :mod:`repro.serve` so the two are
    byte-identical."""
    checkpoints = sum(1 for i in program.instrs if i.opcode == "checkpoint")
    summary = f"; environment: {env_name}, static checkpoints: {checkpoints}\n"
    return summary + disassemble(program) + "\n"
