"""Program encoding: flatten machine functions into one executable image.

Produces the :class:`Program` the emulator runs, plus the Thumb-2 size
model behind the paper's code-size comparison (Table 2).  Branches to the
immediately following block become fallthroughs (removed), as a block
layout pass would arrange on the real target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .mir import MFunction, MInstr, MModule

#: Flat address space layout.
GLOBALS_BASE = 0x1000
STACK_TOP = 0x100000
MEMORY_SIZE = 0x100000

#: lr value that terminates execution when returned to.
HALT_ADDRESS = -1


@dataclass
class Program:
    """A fully linked, executable image."""

    name: str
    instrs: List[MInstr] = field(default_factory=list)
    func_entry: Dict[str, int] = field(default_factory=dict)
    global_addr: Dict[str, int] = field(default_factory=dict)
    initial_memory: bytes = b""
    text_size: int = 0
    sizes: List[int] = field(default_factory=list)
    function_of_index: List[str] = field(default_factory=list)
    #: content-address of this program in :mod:`repro.cache` (set by
    #: ``iclang``); empty for programs built by hand from MIR.
    cache_key: str = ""
    #: middle-end checkpoints removed by the certificate-guided elision
    #: pass (:mod:`repro.core.checkpoint_elim`); 0 when the pass was off
    elisions: int = 0

    @property
    def entry(self) -> int:
        return self.func_entry["main"]

    # The emulator attaches its predecoded instruction stream to the
    # program (``_decoded_cache``) so repeated Machine constructions skip
    # re-decoding.  It holds function objects — never pickle it.
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_decoded_cache", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


def encode_size(instr: MInstr) -> int:
    """Approximate Thumb-2 encoding size in bytes."""
    op = instr.opcode
    if op == "mov":
        src = instr.ops[0]
        if isinstance(src, int):
            if 0 <= src < 256:
                return 2
            if src < 65536:
                return 4
            return 8  # movw + movt
        return 2
    if op == "adr":
        return 8  # movw + movt of a data address
    if op in ("add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr"):
        rhs = instr.ops[1] if len(instr.ops) > 1 else None
        if isinstance(rhs, int) and rhs >= 8:
            return 4
        return 2
    if op in ("mul", "udiv", "sdiv"):
        return 4
    if op == "cmp":
        return 2
    if op in ("ldr", "str", "ldrb", "strb", "ldrh", "strh"):
        offset = instr.ops[-1] if isinstance(instr.ops[-1], int) else 0
        return 2 if 0 <= offset <= 124 else 4
    if op in ("b", "bcc"):
        return 2
    if op == "bl":
        return 4
    if op == "checkpoint":
        return 4  # a branch-and-link into the checkpoint routine
    if op == "cmov":
        return 4  # IT + mov
    if op in ("push", "pop"):
        return 2
    if op in ("sxtb", "uxtb", "sxth", "uxth"):
        return 2
    if op in ("addsp", "subsp"):
        return 2 if instr.ops[0] <= 508 else 4
    if op in ("cpsid", "cpsie", "bx_lr", "nop"):
        return 2
    if op == "lea":
        return 2
    raise ValueError(f"no size model for {op!r}")


def encode_module(mmodule: MModule) -> Program:
    """Link and flatten a machine module into a :class:`Program`."""
    program = Program(mmodule.name)

    # --- data layout ----------------------------------------------------
    addr = GLOBALS_BASE
    memory = bytearray(MEMORY_SIZE)
    for name, gv in mmodule.globals.items():
        size = gv.value_type.size
        align = min(4, max(1, gv.value_type.size)) if size else 4
        addr = (addr + 3) & ~3
        program.global_addr[name] = addr
        data = gv.initial_bytes()
        memory[addr : addr + len(data)] = data
        addr += max(size, 1)
    program.initial_memory = bytes(memory)

    # --- text layout -----------------------------------------------------
    ordered = sorted(
        mmodule.functions.values(), key=lambda f: (f.name != "main", f.name)
    )
    label_index: Dict[str, int] = {}
    flat: List[MInstr] = []
    owner: List[str] = []
    for fn in ordered:
        program.func_entry[fn.name] = len(flat)
        for bi, block in enumerate(fn.blocks):
            label_index[f"{fn.name}:{block.name}"] = len(flat)
            instrs = list(block.instructions)
            # fallthrough: drop a trailing 'b' to the next block in layout
            if (
                instrs
                and instrs[-1].opcode == "b"
                and bi + 1 < len(fn.blocks)
                and instrs[-1].ops[0] == fn.blocks[bi + 1].name
            ):
                instrs = instrs[:-1]
            for instr in instrs:
                flat.append(instr)
                owner.append(fn.name)

    # --- resolve branch targets to flat indices ---------------------------
    for idx, instr in enumerate(flat):
        if instr.opcode in ("b", "bcc"):
            key = f"{owner[idx]}:{instr.ops[0]}"
            instr.comment = instr.ops[0]
            instr.ops[0] = label_index[key]
        elif instr.opcode == "bl":
            callee = instr.ops[0]
            instr.comment = callee
            instr.ops[0] = ("func", callee)
        elif instr.opcode == "adr":
            name = instr.ops[0]
            offset = instr.ops[1] if len(instr.ops) > 1 else 0
            instr.comment = name
            instr.ops = [program.global_addr[name] + offset]
    # bl targets resolve late so declarations-only callees fail loudly here
    for instr in flat:
        if instr.opcode == "bl":
            _, callee = instr.ops[0]
            if callee not in program.func_entry:
                raise ValueError(f"call to undefined function {callee!r}")
            instr.ops[0] = program.func_entry[callee]

    program.instrs = flat
    program.function_of_index = owner
    program.sizes = [encode_size(i) for i in flat]
    program.text_size = sum(program.sizes)
    return program
