"""Machine IR: a Thumb-2-flavoured target with virtual registers.

The machine model mirrors what WARio targets (§4.1): ARMv7-M with r0-r12,
sp, lr; a non-volatile byte-addressable main memory holding globals and
the stack; volatile registers saved only by checkpoints.

Register convention (fixed by the backend):

* ``r0``-``r3``, ``r12`` — reserved: argument/return registers and spill
  scratch.  Never allocated to live ranges.
* ``r4``-``r11`` — allocatable, callee-saved (pushed in the prologue).
* ``sp``/``lr`` — stack pointer / link register.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..analysis.dataflow import DataflowProblem, intersect_must_set, solve

#: Condition codes (Thumb naming).
CONDITIONS = ("eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi", "hs")

#: ICmp predicate -> condition code.
PREDICATE_TO_COND = {
    "eq": "eq", "ne": "ne",
    "slt": "lt", "sle": "le", "sgt": "gt", "sge": "ge",
    "ult": "lo", "ule": "ls", "ugt": "hi", "uge": "hs",
}

INVERT_COND = {
    "eq": "ne", "ne": "eq",
    "lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
    "lo": "hs", "hs": "lo", "ls": "hi", "hi": "ls",
}

ALLOCATABLE = tuple(f"r{i}" for i in range(4, 12))
ARG_REGS = ("r0", "r1", "r2", "r3")
SCRATCH = ("r0", "r1", "r12")


class VReg:
    """A virtual register (pre-allocation) or a pinned physical register."""

    _counter = itertools.count()

    def __init__(self, name: str = "", phys: Optional[str] = None):
        self.id = next(VReg._counter)
        self.name = name or f"t{self.id}"
        self.phys = phys  # assigned physical register after RA (or pinned)

    @property
    def is_phys(self) -> bool:
        return self.phys is not None

    def __repr__(self):
        return f"%{self.phys or self.name}"


@dataclass
class StackSlot:
    """One stack-frame slot.  ``offset`` (bytes from sp after the prologue
    frame allocation) is assigned during frame lowering."""

    index: int
    size: int = 4
    kind: str = "spill"  # 'spill' | 'local'
    offset: int = -1

    def __repr__(self):
        return f"[slot{self.index}:{self.kind}]"

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other


class MInstr:
    """One machine instruction.

    ``dst`` is the defined register (or None); ``ops`` holds the operand
    list — a mix of :class:`VReg`, ints (immediates), :class:`StackSlot`,
    and strings (labels / global names) depending on the opcode.
    """

    def __init__(self, opcode: str, dst: Optional[VReg] = None, ops: Optional[list] = None, **attrs):
        self.opcode = opcode
        self.dst = dst
        self.ops = list(ops or [])
        self.cond: Optional[str] = attrs.pop("cond", None)
        self.cause: Optional[str] = attrs.pop("cause", None)      # checkpoints
        self.args: List[VReg] = attrs.pop("args", [])             # bl
        self.regs: List[str] = attrs.pop("regs", [])              # push/pop
        self.comment: str = attrs.pop("comment", "")
        #: Originating source location (repro.diagnostics.SourceLoc) — set
        #: by isel from the lowered IR instruction, inherited by expansion.
        self.loc = attrs.pop("loc", None)
        #: The IR Load/Store this memory instruction lowers, when any.
        #: Lets MIR-level verifiers delegate IR-memory alias questions to
        #: the middle-end analyses instead of re-deriving them from
        #: register contents.
        self.ir_mem = attrs.pop("ir_mem", None)
        if attrs:
            raise TypeError(f"unknown MInstr attrs: {sorted(attrs)}")
        self.parent: Optional["MBlock"] = None

    # -- pickling ---------------------------------------------------------
    # ``parent`` and ``ir_mem`` are back-references into the machine/IR
    # graphs that only the in-process verifiers use; serialising them
    # drags entire modules into every pickled Program (≈10x the payload)
    # and risks deep recursion.  The compile cache and the parallel
    # evaluation workers therefore ship instructions without them.
    def __getstate__(self):
        state = dict(self.__dict__)
        state["parent"] = None
        state["ir_mem"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- classification helpers ------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in ("b", "bx_lr")

    @property
    def is_branch(self) -> bool:
        return self.opcode in ("b", "bcc")

    def branch_targets(self) -> List[str]:
        if self.opcode in ("b", "bcc"):
            return [self.ops[0]]
        return []

    def uses(self) -> List[VReg]:
        """Registers read by this instruction."""
        used = [op for op in self.ops if isinstance(op, VReg)]
        used.extend(self.args)
        if self.opcode == "cmov" and self.dst is not None:
            used.append(self.dst)  # conditional move reads the destination
        if self.opcode == "ret" and self.dst is not None:
            pass
        return used

    def defs(self) -> List[VReg]:
        return [self.dst] if self.dst is not None else []

    def __repr__(self):
        parts = [self.opcode]
        if self.cond:
            parts[0] += f".{self.cond}"
        if self.dst is not None:
            parts.append(repr(self.dst))
        parts.extend(repr(o) if isinstance(o, VReg) else str(o) for o in self.ops)
        if self.args:
            parts.append("args=" + ",".join(map(repr, self.args)))
        if self.regs:
            parts.append("{" + ",".join(self.regs) + "}")
        if self.cause:
            parts.append(f"!{self.cause}")
        return " ".join(parts)


class MBlock:
    """A machine basic block."""

    def __init__(self, name: str, parent: Optional["MFunction"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[MInstr] = []

    def append(self, instr: MInstr) -> MInstr:
        self.instructions.append(instr)
        instr.parent = self
        return instr

    def insert(self, index: int, instr: MInstr) -> MInstr:
        self.instructions.insert(index, instr)
        instr.parent = self
        return instr

    def successors(self) -> List["MBlock"]:
        out: List[MBlock] = []
        fn = self.parent
        for instr in reversed(self.instructions):
            if instr.opcode in ("b", "bcc"):
                out.append(fn.block(instr.ops[0]))
                continue
            break
        return out

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self):
        return f"<MBlock {self.name} ({len(self.instructions)})>"


class MFunction:
    """A machine function: blocks in layout order plus frame information."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: List[MBlock] = []
        self._by_name: Dict[str, MBlock] = {}
        self.slots: List[StackSlot] = []
        self.frame_size = 0           # assigned at frame lowering
        self.saved_regs: List[str] = []
        self.saved_low: List[str] = []   # r4-r7 + lr (Thumb narrow push)
        self.saved_high: List[str] = []  # r8-r11 (push.w group)
        self.num_args = 0
        self.makes_calls = False
        #: id(ir Alloca) -> StackSlot, populated by instruction selection;
        #: consumed by the machine-level WAR verifier.
        self.alloca_slots: Dict[int, StackSlot] = {}

    def add_block(self, name: str) -> MBlock:
        if name in self._by_name:
            raise ValueError(f"duplicate machine block {name}")
        block = MBlock(name, self)
        self.blocks.append(block)
        self._by_name[name] = block
        return block

    def block(self, name: str) -> MBlock:
        return self._by_name[name]

    def new_slot(self, size: int = 4, kind: str = "spill") -> StackSlot:
        slot = StackSlot(len(self.slots), size, kind)
        self.slots.append(slot)
        return slot

    def instructions(self) -> Iterable[MInstr]:
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self):
        return f"<MFunction {self.name} ({len(self.blocks)} blocks)>"


class MModule:
    """The machine program: functions plus global data layout."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.functions: Dict[str, MFunction] = {}
        self.globals: Dict[str, object] = {}  # name -> ir GlobalVariable

    def add_function(self, fn: MFunction) -> MFunction:
        self.functions[fn.name] = fn
        return fn

    def __repr__(self):
        return f"<MModule {self.name} ({len(self.functions)} functions)>"


class MIRVerificationError(Exception):
    """A machine function violated a structural invariant."""

    def __init__(self, function: str, problems: List[str]):
        self.function = function
        self.problems = problems
        super().__init__(
            f"machine IR verification failed for '{function}':\n  "
            + "\n  ".join(problems)
        )


#: Opcodes allowed in a block's trailing control group.  ``successors()``
#: walks this suffix, so any branch outside it would silently change the
#: CFG the backend analyses see.
_CONTROL = ("b", "bcc", "bx_lr")


def verify_mfunction(fn: MFunction, after_regalloc: bool = False) -> None:
    """Structural machine-IR verifier.

    Checks, at any point of the backend pipeline:

    * every block is non-empty and ends with a terminator (``b``/``bx_lr``,
      or the ``ret`` pseudo that frame lowering later expands),
    * branches appear only in the trailing control group of a block and
      target existing blocks,
    * every :class:`StackSlot` operand is registered with the function and
      stored at its own ``index``.

    With ``after_regalloc=False`` additionally runs a defined-before-use
    dataflow over virtual registers; with ``after_regalloc=True`` instead
    requires every register operand to be physical (``bl`` argument lists
    are exempt — the call expansion resolves them against the stack).

    Raises :class:`MIRVerificationError` on the first offending function.
    """
    problems: List[str] = []

    for block in fn.blocks:
        if not block.instructions:
            problems.append(f"block '{block.name}' is empty")
            continue
        last = block.instructions[-1]
        if not (last.is_terminator or last.opcode in ("ret", "bcc")):
            problems.append(
                f"block '{block.name}' does not end with a terminator "
                f"(ends with '{last.opcode}')"
            )
        in_control_tail = True
        for instr in reversed(block.instructions):
            if instr.opcode in _CONTROL:
                if not in_control_tail:
                    problems.append(
                        f"block '{block.name}': branch '{instr.opcode}' is "
                        f"not in the trailing control group"
                    )
            else:
                in_control_tail = False
        for instr in block.instructions:
            for target in instr.branch_targets():
                if target not in fn._by_name:
                    problems.append(
                        f"block '{block.name}': branch to unknown block "
                        f"'{target}'"
                    )
            for op in instr.ops:
                if isinstance(op, StackSlot):
                    if not (
                        0 <= op.index < len(fn.slots)
                        and fn.slots[op.index] is op
                    ):
                        problems.append(
                            f"block '{block.name}': '{instr.opcode}' uses "
                            f"unregistered stack slot {op!r}"
                        )

    if after_regalloc:
        for block in fn.blocks:
            for instr in block.instructions:
                for reg in instr.defs() + [
                    op for op in instr.ops if isinstance(op, VReg)
                ]:
                    if not reg.is_phys:
                        problems.append(
                            f"block '{block.name}': virtual register "
                            f"{reg!r} survives register allocation in "
                            f"'{instr.opcode}'"
                        )
    else:
        problems.extend(_check_defined_before_use(fn))

    if problems:
        raise MIRVerificationError(fn.name, problems)


class _DefinedBeforeUse(DataflowProblem):
    """Forward must-dataflow on the shared engine: the set of vreg ids
    defined on *every* path from entry (``None`` = unreachable, so dead
    blocks have vacuous paths and are never checked)."""

    def __init__(self, fn: MFunction):
        self.fn = fn

    def nodes(self):
        return self.fn.blocks

    def key(self, block) -> str:
        return block.name

    def edges(self, block):
        for succ in block.successors():
            yield succ, False

    def initial(self, block) -> Optional[set]:
        return set() if block is self.fn.blocks[0] else None

    def transfer(self, block, state: set) -> set:
        state = set(state)
        for instr in block.instructions:
            for reg in instr.defs():
                if not reg.is_phys:
                    state.add(reg.id)
        return state

    def flow(self, out: set, block, succ, is_back: bool) -> set:
        return set(out)

    def merge(self, existing: set, incoming: set, block) -> bool:
        return intersect_must_set(existing, incoming)


def _check_defined_before_use(fn: MFunction) -> List[str]:
    """Forward must-dataflow: every (non-physical) vreg use is dominated
    by a definition on every path from entry."""
    if not fn.blocks:
        return []
    problems: List[str] = []
    for block in fn.blocks:
        try:
            block.successors()
        except KeyError:
            return problems  # broken targets already reported

    problem = _DefinedBeforeUse(fn)
    in_states = solve(problem)
    for block in fn.blocks:
        state = in_states[block.name]
        if state is None:
            continue  # unreachable: vacuous paths
        state = set(state)
        for instr in block.instructions:
            for reg in instr.uses():
                if not reg.is_phys and reg.id not in state:
                    problems.append(
                        f"block '{block.name}': {reg!r} used by "
                        f"'{instr.opcode}' before any definition reaches it"
                    )
            for reg in instr.defs():
                if not reg.is_phys:
                    state.add(reg.id)
    return problems


def mfunction_to_str(fn: MFunction) -> str:
    lines = [f"{fn.name}:"]
    for block in fn.blocks:
        lines.append(f".{block.name}:")
        for instr in block.instructions:
            lines.append(f"    {instr!r}")
    return "\n".join(lines)
