"""Static WAR-freedom verification on machine IR (the back-end level).

The middle-end verifier (:mod:`repro.analysis.static_war`) cannot see the
memory traffic the back end itself introduces: register spill reloads and
stores, the callee-saved save area, pops, and the frame releases of the
three epilogue styles.  The paper's point (§3.1.2/§3.1.3) is exactly
that this traffic carries WAR hazards of its own — this module verifies,
after frame lowering, that ``insert_spill_checkpoints`` and the epilogue
construction actually discharged them.

The analysis runs the same exposed-read dataflow as the IR level, but
over *concrete* stack coordinates: the abstract state tracks the stack
pointer as a byte delta from function entry (``delta``; push/``subsp``
decrease it, pop/``addsp`` increase it), and every stack access resolves
to an entry-relative byte range exactly as the emulator resolves it —
a :class:`~repro.backend.mir.StackSlot` operand is ``delta +
slot.offset``, an ``sp``-relative load is ``delta + offset``, a push
writes ``[delta - 4n, delta)``, a pop reads ``[delta, delta + 4n)``.
Because the locations are concrete, iteration flags are irrelevant to
aliasing (a range equals itself in every iteration) and overlap is plain
interval intersection.

Accesses that lower IR loads/stores (they carry ``MInstr.ir_mem``) are
classified through the middle-end alias analysis: pure-global pointers
are skipped here, and ir-to-ir pairs are *delegated* to the IR-level
verifier — re-deriving them from blurred slot ranges would only lose
precision.  What remains machine-only:

* **spill WARs** — a slot reload followed by a slot store in one region;
* **the stack-release rule** — an upward sp adjustment while reads of
  the released area are still exposed publishes those bytes to interrupt
  stacking and future callees inside the open region.  Ratchet satisfies
  it with a checkpoint before every release (the Pop Converter's loads +
  checkpoint + adjust), WARio by masking interrupts: between ``cpsid``
  and ``cpsie`` a release is provisionally allowed and must be followed
  by a checkpoint (with no intervening store) before interrupts
  re-enable — which is precisely the Epilog Optimizer's shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.alias import PRECISE, AliasAnalysis
from ..analysis.dataflow import (
    BK,
    FW,
    DataflowProblem,
    interval_add,
    interval_covers,
    interval_intersect,
    interval_sub,
    intervals_overlap,
    solve,
)
from ..diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    ERROR,
    LEVEL_MIR,
)
from ..ir.values import GlobalVariable
from .mir import MFunction, MInstr, StackSlot

_LOAD_SIZE = {"ldr": 4, "ldrh": 2, "ldrb": 1}
_STORE_SIZE = {"str": 4, "strh": 2, "strb": 1}

# The interval-set lattice lives in the shared dataflow module now;
# these aliases keep the historical local names readable.
_overlap = intervals_overlap
_interval_add = interval_add
_interval_sub = interval_sub
_interval_intersect = interval_intersect
_covers = interval_covers


class _Fact:
    """One exposed read: the instruction, its entry-relative byte ranges,
    path flags, and whether it originates from an IR-level load."""

    __slots__ = ("instr", "ranges", "flags", "is_ir", "what")

    def __init__(self, instr, ranges, flags, is_ir, what):
        self.instr = instr
        self.ranges = ranges
        self.flags = flags
        self.is_ir = is_ir
        self.what = what

    def overlaps(self, ranges) -> bool:
        return any(_overlap(a, b) for a in self.ranges for b in ranges)


class _State:
    __slots__ = ("delta", "masked", "pending", "facts", "covered")

    def __init__(self, delta=0, masked=False, pending=None, facts=None,
                 covered=None):
        self.delta = delta
        self.masked = masked
        #: ranges released under cpsid awaiting their checkpoint, with the
        #: facts that were exposed at release time
        self.pending: List[Tuple[Tuple[int, int], _Fact]] = pending or []
        self.facts: Dict[int, _Fact] = facts or {}
        #: entry-relative byte intervals *definitely* written since the
        #: region started, on every path (must-analysis).  A read fully
        #: inside the covered set observes this region's own writes on
        #: re-execution, so it cannot be the first read of a WAR.
        self.covered: List[Tuple[int, int]] = covered or []

    def copy(self, add_bk=False) -> "_State":
        facts = {
            key: _Fact(
                f.instr, f.ranges, f.flags | (BK if add_bk else 0),
                f.is_ir, f.what,
            )
            for key, f in self.facts.items()
        }
        return _State(
            self.delta, self.masked, list(self.pending), facts,
            list(self.covered),
        )


def _merge(into: _State, new: _State, problems: List[str], where: str) -> bool:
    if into.delta != new.delta:
        problems.append(
            f"inconsistent stack depth at '{where}': "
            f"{into.delta} vs {new.delta} bytes from entry"
        )
        return False
    changed = False
    if new.masked and not into.masked:
        into.masked = True
        changed = True
    for key, fact in new.facts.items():
        old = into.facts.get(key)
        if old is None:
            into.facts[key] = fact
            changed = True
        elif old.flags | fact.flags != old.flags:
            old.flags |= fact.flags
            changed = True
    merged_covered = _interval_intersect(into.covered, new.covered)
    if merged_covered != into.covered:
        into.covered = merged_covered
        changed = True
    return changed


class _MIRWARAnalysis(DataflowProblem):
    """A forward dataflow on the shared worklist engine over concrete
    stack coordinates.  The in-state seed is ``None`` everywhere but the
    entry block (``None`` = unreached — dead blocks are never analysed
    and contribute nothing to joins), every edge copies the out-state,
    and a back edge additionally widens fact flags with ``BK``."""

    def __init__(
        self,
        mfn: MFunction,
        aa: Optional[AliasAnalysis],
        calls_are_checkpoints: bool,
        engine: DiagnosticEngine,
        transparent_callees=None,
    ):
        self.mfn = mfn
        self.aa = aa
        self.calls_are_checkpoints = calls_are_checkpoints
        self.transparent_callees = transparent_callees or set()
        self.engine = engine
        self.structural: List[str] = []
        self.seen = set()
        self.frame_delta = -self._prologue_bytes()
        self.addr_taken = self._address_taken_ranges()
        self.slot_for_alloca = mfn.alloca_slots
        self._index = {b.name: i for i, b in enumerate(mfn.blocks)}

    # -- geometry --------------------------------------------------------
    def _prologue_bytes(self) -> int:
        """Total downward sp motion of the prologue: the delta at which
        every ``lea``/slot access in the body executes."""
        total = 0
        if not self.mfn.blocks:
            return 0
        for instr in self.mfn.blocks[0].instructions:
            if instr.opcode == "push":
                total += 4 * len(instr.regs)
            elif instr.opcode == "subsp":
                total += instr.ops[0]
            elif instr.opcode == "checkpoint":
                continue
            else:
                break
        return total

    def _slot_range(self, slot: StackSlot, delta: int) -> Tuple[int, int]:
        # The machine resolves a slot operand against the *current* sp.
        base = delta + slot.offset
        return (base, base + slot.size)

    def _address_taken_ranges(self) -> List[Tuple[int, int]]:
        """Frame ranges of slots whose address escapes into a register
        (``lea``): the only stack bytes an unknown IR pointer can reach."""
        out = []
        for instr in self.mfn.instructions():
            if instr.opcode == "lea":
                for op in instr.ops:
                    if isinstance(op, StackSlot):
                        out.append(self._slot_range(op, self.frame_delta))
        return out

    # -- access classification ------------------------------------------
    def _ir_ranges(self, instr: MInstr) -> Optional[List[Tuple[int, int]]]:
        """Stack byte ranges an IR-originated access may touch, or None
        when it provably stays in global memory (IR-level territory)."""
        if self.aa is None:
            return self.addr_taken or None
        bases = self.aa.classify(instr.ir_mem.pointer).possible_bases()
        if bases is None:
            return self.addr_taken or None
        ranges: List[Tuple[int, int]] = []
        for base in bases:
            if isinstance(base, GlobalVariable):
                continue
            slot = self.slot_for_alloca.get(id(base))
            if slot is not None:
                ranges.append(self._slot_range(slot, self.frame_delta))
            else:
                # An alloca base with no slot (e.g. promoted away before
                # isel) cannot be addressed; be conservative.
                return self.addr_taken or None
        return ranges or None

    def _read_of(self, instr: MInstr, delta: int):
        """(ranges, is_ir) read by ``instr``, or None."""
        size = _LOAD_SIZE.get(instr.opcode)
        if size is not None:
            base = instr.ops[0]
            if base == "sp":
                start = delta + instr.ops[1]
                return [(start, start + size)], False, "the epilogue restore"
            if isinstance(base, StackSlot):
                start = delta + base.offset + (
                    instr.ops[1] if len(instr.ops) > 1 else 0
                )
                return [(start, start + size)], False, f"slot{base.index}"
            if instr.ir_mem is not None:
                ranges = self._ir_ranges(instr)
                if ranges:
                    return ranges, True, "an address-taken local"
            return None
        if instr.opcode == "pop":
            n = 4 * len(instr.regs)
            return [(delta, delta + n)], False, "the pop restore"
        return None

    def _write_of(self, instr: MInstr, delta: int):
        size = _STORE_SIZE.get(instr.opcode)
        if size is not None:
            base = instr.ops[1]
            if base == "sp":
                start = delta + instr.ops[2]
                return [(start, start + size)], False
            if isinstance(base, StackSlot):
                start = delta + base.offset + (
                    instr.ops[2] if len(instr.ops) > 2 else 0
                )
                return [(start, start + size)], False
            if instr.ir_mem is not None:
                ranges = self._ir_ranges(instr)
                if ranges:
                    return ranges, True
            return None
        if instr.opcode == "push":
            n = 4 * len(instr.regs)
            return [(delta - n, delta)], False
        return None

    # -- transfer --------------------------------------------------------
    def _transfer(self, block, state: _State, report: bool) -> _State:
        for instr in block.instructions:
            op = instr.opcode
            if op == "checkpoint":
                self._at_checkpoint(instr, state, report)
                state.facts.clear()
                state.pending = []
                state.covered = []
                continue
            if op == "bl":
                barrier = self.calls_are_checkpoints and (
                    instr.ops[0] not in self.transparent_callees
                )
                if barrier:
                    # The callee checkpoints at entry: region boundary.
                    state.facts.clear()
                    state.pending = []
                    state.covered = []
                # A callee operates strictly below the caller's sp, so it
                # cannot touch the concrete facts tracked here; accesses
                # through escaped pointers are the IR verifier's job.
                # Transparent callees additionally never checkpoint, so
                # the caller's region (facts + coverage) stays open.
                self._at_call(instr, state, report, barrier)
                continue
            if op == "cpsid":
                state.masked = True
                continue
            if op == "cpsie":
                if report:
                    for released, fact in state.pending:
                        self._report_release(instr, released, fact)
                state.pending = []
                state.masked = False
                continue
            if op == "subsp":
                state.delta -= instr.ops[0]
                continue
            if op == "addsp":
                self._release(instr, state, instr.ops[0], report)
                state.delta += instr.ops[0]
                continue
            if op == "bx_lr":
                if report and state.delta != 0:
                    self.structural.append(
                        f"'{self.mfn.name}' returns with sp {state.delta} "
                        f"bytes away from its entry value"
                    )
                continue

            write = self._write_of(instr, state.delta)
            if write is not None:
                ranges, is_ir = write
                if report:
                    self._check_store(instr, ranges, is_ir, state)
                if state.pending and report:
                    for released, fact in list(state.pending):
                        if any(_overlap(r, released) for r in ranges):
                            self._report_release(instr, released, fact)
                            state.pending.remove((released, fact))
                if not is_ir:
                    # Concrete stack writes are exact (must-writes): the
                    # bytes are now covered by this region's own output.
                    for r in ranges:
                        state.covered = _interval_add(state.covered, r)

            read = self._read_of(instr, state.delta)
            if read is not None:
                ranges, is_ir, what = read
                if _covers(state.covered, ranges):
                    # Every byte this read can touch was definitely
                    # written earlier in the same region on every path:
                    # re-execution reproduces the value, so the read can
                    # never be the exposed half of a WAR (the dynamic
                    # checker's write-before-read rule says the same).
                    pass
                else:
                    old = state.facts.get(id(instr))
                    flags = (old.flags if old else 0) | FW
                    state.facts[id(instr)] = _Fact(
                        instr, ranges, flags, is_ir, what
                    )

            if op == "push":
                state.delta -= 4 * len(instr.regs)
            elif op == "pop":
                self._release(instr, state, 4 * len(instr.regs), report)
                state.delta += 4 * len(instr.regs)
        return state

    # -- subclass hooks (no-ops here) ------------------------------------
    # The idempotence certifier (:mod:`repro.analysis.idempotence`)
    # extends this analysis with cross-call effects and proof-obligation
    # recording; these hooks mark the transfer points it attaches to.
    def _at_checkpoint(self, instr: MInstr, state: _State, report: bool) -> None:
        """Called before a checkpoint clears the region state."""

    def _at_call(self, instr: MInstr, state: _State, report: bool,
                 barrier: bool) -> None:
        """Called after a ``bl``'s barrier effect (if any) was applied."""

    def _release(self, instr: MInstr, state: _State, nbytes: int, report: bool) -> None:
        released = (state.delta, state.delta + nbytes)
        # Released bytes leave the frame: interrupt stacking or a callee
        # may clobber them, so they are no longer covered by our writes.
        state.covered = _interval_sub(state.covered, released)
        exposed = [f for f in state.facts.values() if f.overlaps([released])]
        if not exposed:
            return
        if state.masked:
            # Deferred: legal iff a checkpoint arrives before cpsie with
            # no store into the released bytes in between.
            state.pending.extend((released, f) for f in exposed)
            return
        if report:
            for fact in exposed:
                self._report_release(instr, released, fact)

    # -- reporting -------------------------------------------------------
    def _check_store(self, instr: MInstr, ranges, is_ir: bool, state: _State) -> None:
        for fact in state.facts.values():
            if is_ir and fact.is_ir:
                continue  # delegated to the IR-level verifier
            if not fact.overlaps(ranges):
                continue
            key = (id(fact.instr), id(instr))
            if key in self.seen:
                continue
            self.seen.add(key)
            kind = "forward" if fact.flags & FW else "backward"
            self.engine.emit(Diagnostic(
                severity=ERROR,
                code=f"mir-war-{kind}",
                message=(
                    f"'{instr.opcode}' overwrites stack bytes first read "
                    f"by {fact.what} in the same idempotent region"
                ),
                function=self.mfn.name,
                level=LEVEL_MIR,
                loc=instr.loc,
                related=[(
                    f"first read here by '{fact.instr.opcode}'",
                    fact.instr.loc,
                )],
            ))

    def _report_release(self, instr: MInstr, released, fact: _Fact) -> None:
        key = ("release", id(fact.instr), id(instr))
        if key in self.seen:
            return
        self.seen.add(key)
        self.engine.emit(Diagnostic(
            severity=ERROR,
            code="mir-war-release",
            message=(
                f"'{instr.opcode}' releases stack bytes "
                f"[{released[0]}, {released[1]}) still exposed as reads by "
                f"{fact.what}; interrupt stacking or a later call may "
                f"overwrite them inside the open idempotent region"
            ),
            function=self.mfn.name,
            level=LEVEL_MIR,
            loc=instr.loc,
            related=[(
                f"read here by '{fact.instr.opcode}'",
                fact.instr.loc,
            )],
        ))

    # -- the dataflow problem (shared worklist engine) -------------------
    def nodes(self):
        return self.mfn.blocks

    def key(self, block) -> str:
        return block.name

    def edges(self, block):
        here = self._index[block.name]
        for succ in block.successors():
            yield succ, self._index[succ.name] <= here

    def initial(self, block) -> Optional[_State]:
        return _State() if block is self.mfn.blocks[0] else None

    def transfer(self, block, state: _State) -> _State:
        return self._transfer(block, state.copy(), report=False)

    def flow(self, out: _State, block, succ, is_back: bool) -> _State:
        return out.copy(add_bk=is_back)

    def merge(self, existing: _State, incoming: _State, block) -> bool:
        return _merge(existing, incoming, self.structural, block.name)

    # -- driver ----------------------------------------------------------
    def run(self) -> None:
        if not self.mfn.blocks:
            return
        in_states = solve(self)
        for block in self.mfn.blocks:
            state = in_states[block.name]
            if state is None:
                continue
            self._transfer(block, state.copy(), report=True)
        # structural problems found along the way become diagnostics too,
        # deduplicated (the fixpoint may revisit a join many times)
        for problem in sorted(set(self.structural)):
            self.engine.error(
                "mir-stack-shape", problem,
                function=self.mfn.name, level=LEVEL_MIR,
            )


def verify_mfunction_war(
    mfn: MFunction,
    ir_function=None,
    alias_mode: str = PRECISE,
    points_to=None,
    calls_are_checkpoints: bool = True,
    engine: Optional[DiagnosticEngine] = None,
    transparent_callees=None,
) -> DiagnosticEngine:
    """Statically verify one machine function's stack WAR-freedom.

    ``ir_function`` (the pre-lowering IR function) enables classification
    of IR-originated accesses; without it any such access conservatively
    may touch every address-taken slot.  Run after ``lower_frame`` so the
    prologue/epilogues are present.  ``transparent_callees`` names
    functions lowered without any checkpoint: a ``bl`` to one is not a
    region boundary.
    """
    if engine is None:
        engine = DiagnosticEngine()
    aa = None
    if ir_function is not None:
        aa = AliasAnalysis(ir_function, alias_mode, points_to=points_to)
    _MIRWARAnalysis(
        mfn, aa, calls_are_checkpoints, engine, transparent_callees
    ).run()
    return engine


def verify_mmodule_war(
    mmodule,
    ir_module=None,
    alias_mode: str = PRECISE,
    calls_are_checkpoints: bool = True,
    engine: Optional[DiagnosticEngine] = None,
    summaries=None,
) -> DiagnosticEngine:
    """Verify every machine function of a lowered module.

    ``summaries`` (a :class:`~repro.analysis.summaries.SummaryTable`)
    supplies the whole-program points-to map and the transparent-callee
    set, matching the relaxed call model the back end lowered under.
    """
    if engine is None:
        engine = DiagnosticEngine()
    points_to = None
    ir_functions = {}
    transparent = summaries.transparent_names() if summaries is not None else None
    if ir_module is not None:
        if summaries is not None:
            points_to = summaries.arg_points_to
        else:
            from ..analysis.pointsto import compute_points_to

            points_to = compute_points_to(ir_module)
        ir_functions = {f.name: f for f in ir_module.defined_functions()}
    for mfn in mmodule.functions.values():
        verify_mfunction_war(
            mfn,
            ir_function=ir_functions.get(mfn.name),
            alias_mode=alias_mode,
            points_to=points_to,
            calls_are_checkpoints=calls_are_checkpoints,
            engine=engine,
            transparent_callees=transparent,
        )
    return engine


__all__ = ["verify_mfunction_war", "verify_mmodule_war"]
