"""repro.backend — the Thumb-2-flavoured back end.

Pipeline per function: critical-edge splitting -> instruction selection
(with phi elimination) -> linear-scan register allocation (dedicated
spill slots) -> spill-WAR checkpoint insertion (basic or hitting-set) ->
frame lowering (prologue, epilogue style, call expansion) -> encoding
into one flat executable :class:`~repro.backend.encoder.Program`.
"""

from __future__ import annotations

from typing import Optional

from ..transforms.critedge import split_critical_edges
from ..transforms.simplifycfg import simplify_cfg
from .encoder import GLOBALS_BASE, HALT_ADDRESS, MEMORY_SIZE, STACK_TOP, Program, encode_module
from .frame import EPILOGUE_BUGS, EPILOGUE_STYLES, lower_frame
from .isel import InstructionSelector
from .mir import (
    MFunction,
    MInstr,
    MIRVerificationError,
    MModule,
    StackSlot,
    VReg,
    mfunction_to_str,
    verify_mfunction,
)
from .mir_war import verify_mfunction_war, verify_mmodule_war
from .peephole import eliminate_dead_defs
from .regalloc import allocate_registers
from .spill_checkpoints import find_spill_wars, insert_spill_checkpoints


def lower_module(
    ir_module,
    spill_checkpoint_mode: Optional[str] = None,
    epilogue_style: str = "plain",
    entry_checkpoints: bool = False,
    verify: bool = False,
    transparent=None,
    epilogue_bug: Optional[str] = None,
) -> MModule:
    """Lower an IR module to machine code.

    ``spill_checkpoint_mode`` is ``None`` (no back-end WAR protection,
    for the plain build), ``"basic"`` (Ratchet) or ``"hitting-set"``
    (WARio).  ``entry_checkpoints`` adds the forced checkpoint at every
    non-main function entry.  ``verify`` runs the structural machine-IR
    verifier after selection (virtual-register defined-before-use) and
    after frame lowering (all-physical, slot validity, block shape).

    ``transparent`` (a set of function names from
    :func:`repro.analysis.summaries.compute_summaries`) enables
    cross-call checkpoint elision: a transparent function gets no entry
    checkpoint, calls to it are not spill-WAR barriers in its callers,
    and — when its lowered body still contains no checkpoint and takes
    no address of a slot — it keeps the cheap plain epilogue instead of
    the configured checkpointing style.

    ``epilogue_bug`` (test-only, see :data:`repro.backend.frame.EPILOGUE_BUGS`)
    seeds a deliberately broken epilogue lowering for certifier and
    fault-injection mutation tests.
    """
    transparent = transparent or set()
    barrier_callees = None
    if transparent:
        barrier_callees = set(ir_module.functions) - transparent
    mmodule = MModule(ir_module.name)
    mmodule.globals = dict(ir_module.globals)
    for function in ir_module.defined_functions():
        simplify_cfg(function)
        split_critical_edges(function)
        selector = InstructionSelector(function)
        mfn = selector.run()
        eliminate_dead_defs(mfn)
        if verify:
            verify_mfunction(mfn)
        spills, remats = allocate_registers(mfn)
        is_transparent = function.name in transparent
        if spill_checkpoint_mode is not None:
            insert_spill_checkpoints(
                mfn, spill_checkpoint_mode,
                calls_are_checkpoints=entry_checkpoints,
                barrier_callees=barrier_callees,
            )
        # A transparent function whose lowered body still checkpoints
        # nowhere (the spill inserter may have added some) and never
        # leaks a slot address runs entirely inside the caller's region:
        # the prologue pushes cover the epilogue pops, so the plain
        # epilogue is WAR-free and the checkpointing styles would only
        # waste a checkpoint.
        plain_epilogue = is_transparent and not any(
            i.opcode in ("checkpoint", "lea") for i in mfn.instructions()
        )
        lower_frame(
            mfn,
            spills,
            remats=remats,
            epilogue_style="plain" if plain_epilogue else epilogue_style,
            entry_checkpoint=entry_checkpoints and not is_transparent,
            is_entry_function=(function.name == "main"),
            epilogue_bug=None if plain_epilogue else epilogue_bug,
        )
        if verify:
            verify_mfunction(mfn, after_regalloc=True)
        mmodule.add_function(mfn)
    return mmodule


def compile_to_program(
    ir_module,
    spill_checkpoint_mode: Optional[str] = None,
    epilogue_style: str = "plain",
    entry_checkpoints: bool = False,
    verify: bool = False,
    transparent=None,
    epilogue_bug: Optional[str] = None,
) -> Program:
    """Lower and encode an IR module into an executable image."""
    mmodule = lower_module(
        ir_module, spill_checkpoint_mode, epilogue_style, entry_checkpoints,
        verify=verify, transparent=transparent, epilogue_bug=epilogue_bug,
    )
    return encode_module(mmodule)


__all__ = [
    "lower_module", "compile_to_program",
    "InstructionSelector", "allocate_registers", "lower_frame",
    "insert_spill_checkpoints", "find_spill_wars",
    "verify_mfunction", "MIRVerificationError",
    "verify_mfunction_war", "verify_mmodule_war",
    "encode_module", "Program",
    "MModule", "MFunction", "MInstr", "VReg", "StackSlot", "mfunction_to_str",
    "EPILOGUE_BUGS", "EPILOGUE_STYLES",
    "GLOBALS_BASE", "STACK_TOP", "MEMORY_SIZE", "HALT_ADDRESS",
]
