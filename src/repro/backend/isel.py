"""Instruction selection: IR -> machine IR with virtual registers.

Includes SSA destruction (phi elimination via sequentialised parallel
copies) and compare/branch fusion.  The output is fully explicit: every
block ends with branches, every call carries its argument vregs, and
``ret``/``checkpoint`` remain pseudo-ops expanded by frame lowering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    Checkpoint,
    CondBranch,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue
from .mir import ARG_REGS, PREDICATE_TO_COND, MBlock, MFunction, MInstr, VReg

_BINOP_TO_MOP = {
    "add": "add", "sub": "sub", "mul": "mul",
    "udiv": "udiv", "sdiv": "sdiv",
    "and": "and", "or": "orr", "xor": "eor",
    "shl": "lsl", "lshr": "lsr", "ashr": "asr",
}

#: ops accepting a small immediate second operand
_IMM_OK = {"add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr"}


class SelectionError(Exception):
    pass


def _mem_op(size: int, load: bool) -> str:
    base = "ldr" if load else "str"
    return base + {1: "b", 2: "h", 4: ""}[size]


class InstructionSelector:
    """Lowers one IR function to an :class:`MFunction`."""

    def __init__(self, ir_function):
        self.ir_function = ir_function
        self.mfn = MFunction(ir_function.name)
        self.value_map: Dict[int, VReg] = {}
        self.slot_map: Dict[int, object] = {}   # id(alloca) -> StackSlot
        self.block_map: Dict[int, MBlock] = {}
        self.cur: Optional[MBlock] = None
        self.fused: set = set()                 # ids of fused icmps
        self._block_cache: Dict[object, VReg] = {}  # per-block adr/imm CSE
        self.cur_loc = None                     # loc of the IR instr being lowered

    # -- emission helpers --------------------------------------------------
    def emit(self, opcode: str, dst=None, ops=None, **attrs) -> MInstr:
        attrs.setdefault("loc", self.cur_loc)
        return self.cur.append(MInstr(opcode, dst, ops or [], **attrs))

    def vreg_for(self, value) -> VReg:
        reg = self.value_map.get(id(value))
        if reg is None:
            reg = VReg(getattr(value, "name", "") or "v")
            self.value_map[id(value)] = reg
        return reg

    def operand(self, value) -> VReg:
        """Materialise an IR value into a register at the current point.

        Constants and global addresses are CSE'd per block, as a
        production back end's rematerialisation/MachineCSE would arrange.
        """
        if isinstance(value, Constant):
            key = ("imm", value.value)
            reg = self._block_cache.get(key)
            if reg is None:
                reg = VReg("c")
                self.emit("mov", reg, [value.value])
                self._block_cache[key] = reg
            return reg
        if isinstance(value, GlobalVariable):
            key = ("adr", value.name, 0)
            reg = self._block_cache.get(key)
            if reg is None:
                reg = VReg(f"addr_{value.name}")
                self.emit("adr", reg, [value.name, 0])
                self._block_cache[key] = reg
            return reg
        if isinstance(value, UndefValue):
            reg = VReg("undef")
            self.emit("mov", reg, [0])
            return reg
        if isinstance(value, Argument):
            return self.vreg_for(value)
        return self.vreg_for(value)

    def imm_or_reg(self, value, allow_imm: bool = True, limit: int = 256):
        if allow_imm and isinstance(value, Constant) and 0 <= value.value < limit:
            return value.value
        return self.operand(value)

    # -- driver ------------------------------------------------------------
    def run(self) -> MFunction:
        fn = self.ir_function
        self.mfn.num_args = len(fn.args)
        self.mfn.makes_calls = any(
            isinstance(i, Call) for i in fn.instructions()
        )
        self._find_fusable()
        for block in fn.blocks:
            self.block_map[id(block)] = self.mfn.add_block(block.name)
        # Copy incoming arguments out of r0-r3 into fresh vregs.
        self.cur = self.block_map[id(fn.entry)]
        for i, arg in enumerate(fn.args):
            phys = VReg(ARG_REGS[i], phys=ARG_REGS[i])
            self.emit("mov", self.vreg_for(arg), [phys])
        for block in fn.blocks:
            self.cur = self.block_map[id(block)]
            self._block_cache = {}
            for instr in block.instructions:
                self.cur_loc = instr.loc
                self.lower(instr)
            self.cur_loc = None
        self._eliminate_phis()
        # Alloca -> slot mapping, kept for the machine-level WAR verifier
        # to relate IR pointer bases to concrete frame slots.
        self.mfn.alloca_slots = dict(self.slot_map)
        return self.mfn

    def _find_fusable(self) -> None:
        """ICmps whose single use is a branch/select in the same block can
        feed the flags directly instead of materialising 0/1."""
        counts: Dict[int, int] = {}
        single_user: Dict[int, object] = {}
        for instr in self.ir_function.instructions():
            for op in instr.operands:
                counts[id(op)] = counts.get(id(op), 0) + 1
                single_user[id(op)] = instr
        for instr in self.ir_function.instructions():
            if not isinstance(instr, ICmp):
                continue
            if counts.get(id(instr), 0) != 1:
                continue
            user = single_user[id(instr)]
            if isinstance(user, (CondBranch, Select)) and user.parent is instr.parent:
                if isinstance(user, Select) and user.condition is not instr:
                    continue
                self.fused.add(id(instr))

    # -- per-instruction lowering ----------------------------------------------
    def lower(self, instr) -> None:
        if isinstance(instr, Phi):
            self.vreg_for(instr)  # defined by predecessor copies
            return
        if isinstance(instr, Alloca):
            size = max(4, (instr.allocated_type.size + 3) & ~3)
            slot = self.mfn.new_slot(size, kind="local")
            self.slot_map[id(instr)] = slot
            self.emit("lea", self.vreg_for(instr), [slot])
            return
        if isinstance(instr, Load):
            base, offset = self.address_of(instr.pointer)
            size = instr.type.size
            self.emit(
                _mem_op(size, True), self.vreg_for(instr), [base, offset],
                ir_mem=instr,
            )
            return
        if isinstance(instr, Store):
            value = self.operand(instr.value)
            base, offset = self.address_of(instr.pointer)
            size = instr.pointer.type.pointee.size
            self.emit(
                _mem_op(size, False), None, [value, base, offset],
                ir_mem=instr,
            )
            return
        if isinstance(instr, BinaryOp):
            self.lower_binop(instr)
            return
        if isinstance(instr, GetElementPtr):
            self.lower_gep(instr)
            return
        if isinstance(instr, Cast):
            self.lower_cast(instr)
            return
        if isinstance(instr, ICmp):
            if id(instr) in self.fused:
                return  # emitted at the user
            self.emit_compare(instr)
            dst = self.vreg_for(instr)
            self.emit("mov", dst, [0])
            self.emit("cmov", dst, [1], cond=PREDICATE_TO_COND[instr.predicate])
            return
        if isinstance(instr, Select):
            self.lower_select(instr)
            return
        if isinstance(instr, Branch):
            self.emit("b", ops=[instr.target.name])
            return
        if isinstance(instr, CondBranch):
            self.lower_condbr(instr)
            return
        if isinstance(instr, Call):
            args = [self.operand(a) for a in instr.args]
            dst = self.vreg_for(instr) if instr.type.size != 0 else None
            self.emit("bl", dst, [instr.callee.name], args=args)
            return
        if isinstance(instr, Ret):
            ops = [self.operand(instr.value)] if instr.value is not None else []
            self.emit("ret", ops=ops)
            self.emit("bx_lr")
            return
        if isinstance(instr, Checkpoint):
            self.emit("checkpoint", cause=instr.cause)
            return
        raise SelectionError(f"cannot select {instr!r}")

    def lower_binop(self, instr: BinaryOp) -> None:
        dst = self.vreg_for(instr)
        if instr.op in ("urem", "srem"):
            # r = a - (a / b) * b
            a = self.operand(instr.lhs)
            b = self.operand(instr.rhs)
            quot, prod = VReg("q"), VReg("m")
            self.emit("udiv" if instr.op == "urem" else "sdiv", quot, [a, b])
            self.emit("mul", prod, [quot, b])
            self.emit("sub", dst, [a, prod])
            return
        mop = _BINOP_TO_MOP[instr.op]
        lhs = self.operand(instr.lhs)
        if mop in ("mul", "udiv", "sdiv"):
            rhs = self.operand(instr.rhs)
        else:
            limit = 32 if mop in ("lsl", "lsr", "asr") else 256
            rhs = self.imm_or_reg(instr.rhs, mop in _IMM_OK, limit)
        self.emit(mop, dst, [lhs, rhs])

    def address_of(self, pointer) -> tuple:
        """(base_reg, byte_offset) addressing for a load/store pointer,
        folding constant-index GEPs into the offset field."""
        if isinstance(pointer, GetElementPtr) and isinstance(pointer.index, Constant):
            index = pointer.index.value
            if index >= 1 << 31:
                index -= 1 << 32
            offset = index * pointer.element_size
            if 0 <= offset < 4096:
                return self.operand(pointer.base), offset
        return self.operand(pointer), 0

    def lower_gep(self, instr: GetElementPtr) -> None:
        base = instr.base
        size = instr.element_size
        index = instr.index
        if isinstance(base, GlobalVariable) and isinstance(index, Constant):
            offset = index.value
            if offset >= 1 << 31:
                offset -= 1 << 32
            offset *= size
            key = ("adr", base.name, offset)
            cached = self._block_cache.get(key)
            if cached is None:
                cached = self.vreg_for(instr)
                self.emit("adr", cached, [base.name, offset])
                self._block_cache[key] = cached
            else:
                self.value_map[id(instr)] = cached
            return
        if isinstance(index, Constant):
            offset = (index.value if index.value < 1 << 31 else index.value - (1 << 32)) * size
            if offset == 0:
                # pure decay: reuse the base register
                self.value_map[id(instr)] = self.operand(base)
                return
            base_reg = self.operand(base)
            dst = self.vreg_for(instr)
            if 0 <= offset < 4096:
                self.emit("add", dst, [base_reg, offset])
            elif -4096 < offset < 0:
                self.emit("sub", dst, [base_reg, -offset])
            else:
                tmp = VReg("off")
                self.emit("mov", tmp, [offset & 0xFFFFFFFF])
                self.emit("add", dst, [base_reg, tmp])
            return
        base_reg = self.operand(base)
        idx_reg = self.operand(index)
        dst = self.vreg_for(instr)
        if size == 1:
            self.emit("add", dst, [base_reg, idx_reg])
        elif size & (size - 1) == 0:
            shift = size.bit_length() - 1
            scaled = VReg("sc")
            self.emit("lsl", scaled, [idx_reg, shift])
            self.emit("add", dst, [base_reg, scaled])
        else:
            tmp = VReg("sz")
            self.emit("mov", tmp, [size])
            scaled = VReg("sc")
            self.emit("mul", scaled, [idx_reg, tmp])
            self.emit("add", dst, [base_reg, scaled])

    def lower_cast(self, instr: Cast) -> None:
        src = self.operand(instr.value)
        dst = self.vreg_for(instr)
        src_bits = getattr(instr.value.type, "bits", 32)
        if instr.op == "zext":
            if src_bits == 8:
                self.emit("uxtb", dst, [src])
            elif src_bits == 16:
                self.emit("uxth", dst, [src])
            else:
                self.emit("mov", dst, [src])  # i1 values are already 0/1
        elif instr.op == "sext":
            if src_bits == 8:
                self.emit("sxtb", dst, [src])
            elif src_bits == 16:
                self.emit("sxth", dst, [src])
            else:
                self.emit("mov", dst, [src])
        else:  # trunc: the store/extend consumers mask as needed
            self.emit("mov", dst, [src])

    def emit_compare(self, icmp: ICmp) -> None:
        lhs = self.operand(icmp.lhs)
        rhs = self.imm_or_reg(icmp.rhs)
        self.emit("cmp", None, [lhs, rhs])

    def lower_select(self, instr: Select) -> None:
        dst = self.vreg_for(instr)
        cond = instr.condition
        fval = self.operand(instr.false_value)
        tval = self.imm_or_reg(instr.true_value)
        if isinstance(cond, ICmp) and id(cond) in self.fused:
            self.emit("mov", dst, [fval])
            self.emit_compare(cond)
            self.emit("cmov", dst, [tval], cond=PREDICATE_TO_COND[cond.predicate])
        else:
            cond_reg = self.operand(cond)
            self.emit("mov", dst, [fval])
            self.emit("cmp", None, [cond_reg, 0])
            self.emit("cmov", dst, [tval], cond="ne")

    def lower_condbr(self, instr: CondBranch) -> None:
        cond = instr.condition
        if isinstance(cond, ICmp) and id(cond) in self.fused:
            self.emit_compare(cond)
            cc = PREDICATE_TO_COND[cond.predicate]
        else:
            reg = self.operand(cond)
            self.emit("cmp", None, [reg, 0])
            cc = "ne"
        self.emit("bcc", ops=[instr.true_target.name], cond=cc)
        self.emit("b", ops=[instr.false_target.name])

    # -- phi elimination -----------------------------------------------------------
    def _eliminate_phis(self) -> None:
        for block in self.ir_function.blocks:
            phis = block.phis()
            if not phis:
                continue
            for pred in block.predecessors:
                copies: List[Tuple[VReg, object]] = []
                for phi in phis:
                    incoming = phi.incoming_for(pred)
                    dst = self.vreg_for(phi)
                    if isinstance(incoming, Constant):
                        copies.append((dst, incoming.value))
                    elif isinstance(incoming, UndefValue):
                        copies.append((dst, 0))
                    elif isinstance(incoming, GlobalVariable):
                        copies.append((dst, ("adr", incoming.name)))
                    else:
                        copies.append((dst, self.vreg_for(incoming)))
                self._insert_parallel_copies(self.block_map[id(pred)], copies)

    def _insert_parallel_copies(self, mblock: MBlock, copies) -> None:
        """Sequentialise a parallel copy set, breaking cycles via a temp,
        and insert before the block's trailing branch group."""
        insert_at = len(mblock.instructions)
        while insert_at > 0 and mblock.instructions[insert_at - 1].opcode in ("b", "bcc"):
            insert_at -= 1

        seq: List[MInstr] = []
        pending = [(dst, src) for dst, src in copies if dst is not src]
        while pending:
            progressed = False
            for i, (dst, src) in enumerate(pending):
                if any(s is dst for _, s in pending if isinstance(s, VReg)):
                    continue
                if isinstance(src, tuple) and src[0] == "adr":
                    seq.append(MInstr("adr", dst, [src[1], 0]))
                elif isinstance(src, int):
                    seq.append(MInstr("mov", dst, [src]))
                else:
                    seq.append(MInstr("mov", dst, [src]))
                pending.pop(i)
                progressed = True
                break
            if not progressed:
                # cycle: free one destination through a temporary
                dst, src = pending[0]
                tmp = VReg("cyc")
                seq.append(MInstr("mov", tmp, [dst]))
                pending = [
                    (d, tmp if (isinstance(s, VReg) and s is dst) else s)
                    for d, s in pending
                ]
        for offset, minstr in enumerate(seq):
            mblock.insert(insert_at + offset, minstr)
