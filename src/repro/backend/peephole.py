"""Machine-level cleanups run between instruction selection and register
allocation: dead-definition elimination (address arithmetic left over by
load/store folding) keeps register pressure — and therefore spill WARs —
close to what a production back end would produce."""

from __future__ import annotations

from typing import Dict, Set

from .mir import MFunction, VReg

#: Opcodes with no side effect beyond defining their destination.
_PURE = {
    "mov", "adr", "lea",
    "add", "sub", "mul", "udiv", "sdiv",
    "and", "orr", "eor", "lsl", "lsr", "asr",
    "sxtb", "uxtb", "sxth", "uxth",
    "cmov",
}


def eliminate_dead_defs(fn: MFunction) -> int:
    """Remove pure instructions whose destination vreg is never read."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used: Set[int] = set()
        for instr in fn.instructions():
            for reg in instr.uses():
                used.add(reg.id)
        for block in fn.blocks:
            kept = []
            for instr in block.instructions:
                if (
                    instr.opcode in _PURE
                    and instr.dst is not None
                    and not instr.dst.is_phys
                    and instr.dst.id not in used
                ):
                    removed += 1
                    changed = True
                    continue
                kept.append(instr)
            block.instructions = kept
    return removed
