"""``python -m repro bench`` — the toolchain's own performance harness.

Measures the three costs the engineering work targets and emits one JSON
blob (``BENCH_<rev>.json``) per revision so regressions show up as a
diff:

* **compile** — seconds to compile each benchmark per environment, with
  every cache layer disabled (the honest front-to-back pipeline cost);
* **emulation** — emulated instructions per second of the predecoded
  interpreter on each benchmark (continuous power, WAR checking off);
* **elision** — executed-checkpoint and total-cycle deltas of the
  certificate-guided elision environments (``wario-opt``,
  ``ratchet-opt``) against their baselines, with the statically elided
  count per cell;
* **eval** — wall-clock seconds of a full figure regeneration in a
  subprocess, cold (empty cache directory) then warm (same directory),
  plus the resulting speedup.

``--quick`` shrinks every axis for CI smoke runs (one benchmark, two
environments, Figure 4 only).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

from .benchsuite import BENCHMARKS, clear_program_memo, compile_benchmark
from .core import iclang
from .emulator import Machine
from .eval.runner import default_jobs

FULL_COMPILE_ENVS = ("plain", "ratchet", "wario", "wario-expander")
QUICK_COMPILE_ENVS = ("plain", "wario")
FULL_EVAL_EXPERIMENTS: List[str] = []          # empty = everything
QUICK_EVAL_EXPERIMENTS = ["fig4"]


def _revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def bench_compile(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Seconds per (environment, benchmark) compile, all caches off."""
    envs = QUICK_COMPILE_ENVS if quick else FULL_COMPILE_ENVS
    benches = ["crc"] if quick else list(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    for env in envs:
        out[env] = {}
        for name in benches:
            bench = BENCHMARKS[name]
            start = time.perf_counter()
            iclang(bench.source, env, name=name, cache=False)
            out[env][name] = round(time.perf_counter() - start, 4)
    return out


def bench_emulation(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Emulated instructions per second per benchmark (wario build)."""
    benches = ["crc"] if quick else list(BENCHMARKS)
    out: Dict[str, Dict[str, float]] = {}
    for name in benches:
        bench = BENCHMARKS[name]
        program = compile_benchmark(bench, "wario")
        # warm-up run decodes the program and faults in every code path
        Machine(program, war_check=False).run(
            max_instructions=bench.max_instructions
        )
        machine = Machine(program, war_check=False)
        start = time.perf_counter()
        stats = machine.run(max_instructions=bench.max_instructions)
        elapsed = time.perf_counter() - start
        out[name] = {
            "instructions": stats.instructions,
            "seconds": round(elapsed, 4),
            "instrs_per_sec": round(stats.instructions / elapsed),
            # largest observed inter-checkpoint gap: the dynamic side of
            # the static progress certificate, tracked per revision so
            # bound tightness drifts show up in BENCH_*.json diffs
            "max_region_cycles": stats.max_region_cycles,
            # executed checkpoint count: the runtime quantity the
            # certificate-guided elision pass optimises
            "checkpoints_executed": stats.checkpoints,
        }
    return out


#: baseline → elision-optimised environment pairs the elision table
#: compares (the opt env differs from its baseline by ``call_summaries``
#: + ``checkpoint_elim``; the static ``elided`` count isolates the
#: second factor)
ELISION_PAIRS = (("wario", "wario-opt"), ("ratchet", "ratchet-opt"))


def bench_elision(quick: bool = False) -> Dict[str, Dict[str, object]]:
    """Executed-checkpoint and total-cycle deltas of the
    certificate-guided elision environments against their baselines."""
    benches = ["crc"] if quick else list(BENCHMARKS)
    out: Dict[str, Dict[str, object]] = {}
    for base_env, opt_env in ELISION_PAIRS:
        rows: Dict[str, object] = {}
        for name in benches:
            bench = BENCHMARKS[name]
            cells = {}
            elided = 0
            for env in (base_env, opt_env):
                program = compile_benchmark(bench, env)
                stats = Machine(program, war_check=False).run(
                    max_instructions=bench.max_instructions
                )
                cells[env] = stats
                if env == opt_env:
                    elided = getattr(program, "elisions", 0)
            base, opt = cells[base_env], cells[opt_env]
            rows[name] = {
                "checkpoints_executed": {
                    base_env: base.checkpoints, opt_env: opt.checkpoints,
                    "delta": opt.checkpoints - base.checkpoints,
                },
                "cycles": {
                    base_env: base.cycles, opt_env: opt.cycles,
                    "delta": opt.cycles - base.cycles,
                },
                # statically elided middle-end checkpoints (certificates
                # audited by ``repro lint --level full``)
                "elided": elided,
            }
        out[f"{base_env}->{opt_env}"] = rows
    return out


def bench_eval(quick: bool = False) -> Dict[str, object]:
    """Cold vs warm full-evaluation wall time, in subprocesses sharing a
    fresh cache directory (the cross-process reuse the cache exists for)."""
    experiments = QUICK_EVAL_EXPERIMENTS if quick else FULL_EVAL_EXPERIMENTS
    argv = [sys.executable, "-m", "repro.eval", *experiments, "--jobs", "1"]
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        env = dict(os.environ)
        env["REPRO_CACHE"] = "1"
        env["REPRO_CACHE_DIR"] = cache_dir
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        timings = []
        for _ in ("cold", "warm"):
            start = time.perf_counter()
            proc = subprocess.run(argv, env=env, capture_output=True, text=True)
            timings.append(time.perf_counter() - start)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"evaluation subprocess failed:\n{proc.stderr[-2000:]}"
                )
    cold, warm = timings
    return {
        "experiments": experiments or ["all"],
        "cold_seconds": round(cold, 2),
        "warm_seconds": round(warm, 2),
        "speedup": round(cold / warm, 2),
    }


def run_bench(quick: bool = False, output: Optional[str] = None) -> str:
    """Run every measurement and write the JSON report.  Returns the
    output path."""
    clear_program_memo()
    report = {
        "revision": _revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "quick": quick,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "default_jobs": default_jobs(),
        "compile": bench_compile(quick=quick),
        "emulation": bench_emulation(quick=quick),
        "elision": bench_elision(quick=quick),
        "eval": bench_eval(quick=quick),
    }
    path = output or f"BENCH_{report['revision']}.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def render_report(path: str) -> str:
    with open(path) as handle:
        report = json.load(handle)
    lines = [f"revision {report['revision']} ({report['timestamp']}Z)"]
    for env, per_bench in report["compile"].items():
        total = sum(per_bench.values())
        lines.append(f"compile {env:<16} {total:7.2f}s total")
    for name, row in report["emulation"].items():
        region = row.get("max_region_cycles")
        suffix = f", max region {region:,} cycles" if region else ""
        lines.append(
            f"emulate {name:<16} {row['instrs_per_sec']:>12,} instrs/s"
            f"{suffix}"
        )
    for pair, rows in report.get("elision", {}).items():
        base_env, opt_env = pair.split("->")
        for name, row in rows.items():
            ckpt = row["checkpoints_executed"]
            cyc = row["cycles"]
            pct = cyc["delta"] / cyc[base_env] * 100 if cyc[base_env] else 0.0
            lines.append(
                f"elide   {name:<10} {pair:<22} "
                f"ckpt {ckpt[base_env]:>6,} -> {ckpt[opt_env]:>6,} "
                f"({ckpt['delta']:+d}), cycles {pct:+.2f}%, "
                f"{row['elided']} elided statically"
            )
    ev = report["eval"]
    lines.append(
        f"eval ({'+'.join(ev['experiments'])}): cold {ev['cold_seconds']}s, "
        f"warm {ev['warm_seconds']}s ({ev['speedup']}x)"
    )
    return "\n".join(lines)


__all__ = [
    "bench_compile", "bench_elision", "bench_emulation", "bench_eval",
    "render_report", "run_bench",
]
