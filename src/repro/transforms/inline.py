"""Function inlining.

Used twice in the WARio pipeline (paper §4.6): a plain ``always-inline``
sweep before the middle end, and the heuristic Expander transformation
(`repro.core.expander`) that aggressively inlines to remove the forced
checkpoints at function boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from ..ir.instructions import Branch, Call, Instruction, Phi, Ret
from ..ir.values import Argument, Value


class InlineError(Exception):
    """Raised when a call site cannot be inlined."""


def can_inline(call: Call) -> bool:
    callee = call.callee
    caller = call.function
    if callee.is_declaration:
        return False
    if caller is not None and callee is caller:
        return False  # no self-recursion inlining
    return True


def inline_call(call: Call) -> List[BasicBlock]:
    """Inline ``call``'s callee at the call site.

    Returns the cloned blocks.  The caller is left verified-well-formed;
    note that allocas of the callee keep static frame-slot semantics even
    when the call site sits inside a loop.
    """
    if not can_inline(call):
        raise InlineError(f"cannot inline {call!r}")
    callee = call.callee
    caller_block = call.parent
    caller = caller_block.parent

    # 1. Split the caller block at the call site.
    call_idx = caller_block.index_of(call)
    cont = caller.add_block(f"{caller_block.name}.cont", after=caller_block)
    tail = caller_block.instructions[call_idx + 1 :]
    del caller_block.instructions[call_idx:]
    call.parent = None
    for instr in tail:
        cont.append(instr)
    # Successor phis must now name `cont` as the predecessor.
    for succ in cont.successors:
        for phi in succ.phis():
            for i, pred in enumerate(phi.incoming_blocks):
                if pred is caller_block:
                    phi.incoming_blocks[i] = cont

    # 2. Clone callee blocks.
    value_map: Dict[int, Value] = {}
    for arg, actual in zip(callee.args, call.args):
        value_map[id(arg)] = actual
    block_map: Dict[int, BasicBlock] = {}
    clones: List[BasicBlock] = []
    anchor = caller_block
    for block in callee.blocks:
        clone = caller.add_block(f"{callee.name}.{block.name}", after=anchor)
        anchor = clone
        block_map[id(block)] = clone
        clones.append(clone)

    returns: List = []  # (mapped value or None, clone block)
    for block in callee.blocks:
        clone = block_map[id(block)]
        for instr in block.instructions:
            if isinstance(instr, Ret):
                value = instr.value
                returns.append((value, clone))
                clone.append(Branch(cont))
                continue
            copy = instr.clone()
            copy.loc = instr.loc
            value_map[id(instr)] = copy
            clone.append(copy)

    # 3. Remap operands, branch targets and phi incoming blocks.
    for clone in clones:
        for instr in clone.instructions:
            for i, op in enumerate(instr.operands):
                if id(op) in value_map:
                    instr.operands[i] = value_map[id(op)]
            if hasattr(instr, "targets"):
                instr.targets = [
                    block_map.get(id(t), t) for t in instr.targets
                ]
            if isinstance(instr, Phi):
                instr.incoming_blocks = [
                    block_map.get(id(b), b) for b in instr.incoming_blocks
                ]
    # Return values recorded before remapping may be callee instructions.
    returns = [
        (value_map.get(id(v), v) if v is not None else None, blk)
        for v, blk in returns
    ]

    # 4. Jump into the inlined body.
    caller_block.append(Branch(block_map[id(callee.entry)]))

    # 5. Wire up the return value.
    if call.type.size != 0:
        live_returns = [(v, b) for v, b in returns if v is not None]
        if not live_returns:
            from ..ir.values import UndefValue

            result: Optional[Value] = UndefValue(call.type)
        elif len(live_returns) == 1:
            result: Optional[Value] = live_returns[0][0]
        else:
            phi = Phi(call.type, f"{callee.name}.ret")
            for value, block in live_returns:
                phi.add_incoming(value, block)
            cont.insert(0, phi)
            result = phi
        caller.replace_all_uses(call, result)
    return clones


def inline_always(module, max_instructions: int = 40) -> int:
    """The `-always-inline`-style sweep: inline every call to a small
    leaf-ish function.  Returns the number of call sites inlined."""
    inlined = 0
    changed = True
    while changed:
        changed = False
        for function in module.defined_functions():
            for block in list(function.blocks):
                for instr in list(block.instructions):
                    if not isinstance(instr, Call) or not can_inline(instr):
                        continue
                    size = sum(len(b) for b in instr.callee.blocks)
                    if size > max_instructions:
                        continue
                    if _is_recursive(instr.callee):
                        continue
                    inline_call(instr)
                    inlined += 1
                    changed = True
                    break  # block structure changed; rescan function
                if changed:
                    break
            if changed:
                break
    return inlined


def _is_recursive(function) -> bool:
    return any(
        isinstance(i, Call) and i.callee is function for i in function.instructions()
    )
