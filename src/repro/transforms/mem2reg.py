"""mem2reg: promote scalar stack slots (allocas) to SSA registers.

Classic Cytron et al. construction: phi nodes are placed at the iterated
dominance frontier of the store blocks, then a dominator-tree walk renames
loads/stores to SSA values.  Run early (the paper compiles at -O3) so that
scalar locals live in registers and the remaining memory traffic is the
real NVM traffic that WAR analysis must protect.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..analysis.dominators import dominance_frontiers, dominator_tree
from ..ir.instructions import Alloca, Load, Phi, Store
from ..ir.types import IntType, PointerType
from ..ir.values import UndefValue


def promotable_allocas(function) -> List[Alloca]:
    """Allocas of scalar integer type whose address never escapes: every
    use is a direct load or a store *to* (not of) the slot."""
    allocas = [i for i in function.instructions() if isinstance(i, Alloca)]
    out = []
    for alloca in allocas:
        if not isinstance(alloca.allocated_type, (IntType, PointerType)):
            continue
        escaped = False
        for user in function.users_of(alloca):
            if isinstance(user, Load) and user.pointer is alloca:
                continue
            if isinstance(user, Store) and user.pointer is alloca and user.value is not alloca:
                continue
            escaped = True
            break
        if not escaped:
            out.append(alloca)
    return out


def promote_memory_to_registers(function) -> int:
    """Run mem2reg on one function; returns the number of promoted slots."""
    allocas = promotable_allocas(function)
    if not allocas:
        return 0
    domtree = dominator_tree(function)
    frontiers = dominance_frontiers(function, domtree)
    alloca_ids = {id(a): a for a in allocas}

    # --- phi placement at iterated dominance frontiers -----------------
    phis: Dict[int, Dict[int, Phi]] = {id(a): {} for a in allocas}  # alloca -> block -> phi
    for alloca in allocas:
        def_blocks = {
            id(i.parent): i.parent
            for i in function.instructions()
            if isinstance(i, Store) and i.pointer is alloca
        }
        work = list(def_blocks.values())
        placed: Set[int] = set()
        while work:
            block = work.pop()
            for df_block in frontiers.get(id(block), ()):
                if id(df_block) in placed:
                    continue
                placed.add(id(df_block))
                phi = Phi(alloca.allocated_type, alloca.name)
                df_block.insert(0, phi)
                phis[id(alloca)][id(df_block)] = phi
                if id(df_block) not in def_blocks:
                    work.append(df_block)

    phi_owner = {}
    for aid, by_block in phis.items():
        for phi in by_block.values():
            phi_owner[id(phi)] = alloca_ids[aid]

    # --- renaming walk over the dominator tree --------------------------
    undef = UndefValue(IntType(32))
    replacements: Dict[int, object] = {}  # id(load) -> value
    dead: List = []

    def rename(block, incoming: Dict[int, object]):
        current = dict(incoming)
        for instr in list(block.instructions):
            if isinstance(instr, Phi) and id(instr) in phi_owner:
                current[id(phi_owner[id(instr)])] = instr
            elif isinstance(instr, Load) and id(instr.pointer) in alloca_ids:
                value = current.get(id(instr.pointer), undef)
                replacements[id(instr)] = value
                dead.append(instr)
            elif isinstance(instr, Store) and id(instr.pointer) in alloca_ids:
                current[id(instr.pointer)] = instr.value
                dead.append(instr)
        for succ in block.successors:
            for phi in succ.phis():
                owner = phi_owner.get(id(phi))
                if owner is not None:
                    phi.set_incoming_for(block, current.get(id(owner), undef))
        for child in domtree.children(block):
            rename(child, current)

    rename(function.entry, {})

    # Apply load replacements transitively (a load may map to another load).
    def resolve(value):
        seen = set()
        while id(value) in replacements and id(value) not in seen:
            seen.add(id(value))
            value = replacements[id(value)]
        return value

    for instr in function.instructions():
        for i, op in enumerate(instr.operands):
            if id(op) in replacements:
                instr.operands[i] = resolve(op)

    for instr in dead:
        instr.parent.remove(instr)
    for alloca in allocas:
        alloca.parent.remove(alloca)
    _prune_dead_phis(function, phi_owner)
    return len(allocas)


def _prune_dead_phis(function, phi_owner) -> None:
    """Remove inserted phis that ended up unused (dead cycles included)."""
    changed = True
    while changed:
        changed = False
        counts = function.uses_count()
        for block in function.blocks:
            for phi in list(block.phis()):
                if id(phi) not in phi_owner:
                    continue
                uses = counts.get(id(phi), 0)
                self_uses = sum(1 for op in phi.operands if op is phi)
                if uses - self_uses == 0:
                    block.remove(phi)
                    changed = True


def run_on_module(module) -> int:
    total = 0
    for function in module.defined_functions():
        total += promote_memory_to_registers(function)
    return total
