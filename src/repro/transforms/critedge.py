"""Critical-edge splitting.

Run before instruction selection: phi-elimination places parallel copies
at the end of predecessor blocks, which is only correct when no
predecessor with multiple successors feeds a block with phis.
"""

from __future__ import annotations

from ..ir.block import split_edge


def split_critical_edges(function) -> int:
    """Split every edge pred->succ where pred has several successors and
    succ has phis.  Returns the number of edges split."""
    count = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            if not block.phis():
                continue
            for pred in list(block.predecessors):
                if len(pred.successors) > 1:
                    split_edge(pred, block, f"{pred.name}.crit")
                    count += 1
                    changed = True
                    break
            if changed:
                break
    return count


def run_on_module(module) -> int:
    return sum(split_critical_edges(f) for f in module.defined_functions())
