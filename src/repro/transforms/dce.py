"""Dead code elimination.

Removes unused side-effect-free instructions.  Loads from NVM are pure in
our machine model, so dead loads are removed too — important for WAR
accuracy, since a dead load would otherwise manufacture WAR violations
(and therefore checkpoints) that -O3-compiled code would not contain.
"""

from __future__ import annotations

from ..ir.instructions import Load, Phi


def _removable(instr) -> bool:
    if instr.has_side_effects:
        return False
    if isinstance(instr, Phi):
        return True
    return True  # pure arithmetic, loads, geps, casts, selects


def eliminate_dead_code(function) -> int:
    """Iteratively remove dead instructions; returns the removal count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        counts = function.uses_count()
        for block in function.blocks:
            for instr in list(block.instructions):
                if instr.is_terminator or not _removable(instr):
                    continue
                uses = counts.get(id(instr), 0)
                self_uses = sum(1 for op in instr.operands if op is instr)
                if uses - self_uses == 0:
                    block.remove(instr)
                    removed += 1
                    changed = True
    return removed


def run_on_module(module) -> int:
    return sum(eliminate_dead_code(f) for f in module.defined_functions())
