"""repro.transforms — target-independent middle-end passes."""

from .dce import eliminate_dead_code
from .inline import InlineError, can_inline, inline_always, inline_call
from .mem2reg import promote_memory_to_registers, promotable_allocas
from .simplifycfg import simplify_cfg
from .unroll import UnrollError, UnrolledLoop, can_unroll, unroll_single_block_loop
from .volatile_cache import cache_volatile_data


def optimize_module(module, verify: bool = True) -> None:
    """The -O3-flavoured cleanup pipeline run before WARio's passes
    (paper §4.6: always-inline, then the optimisation level)."""
    from ..ir.verifier import verify_module

    inline_always(module)
    for function in module.defined_functions():
        simplify_cfg(function)
        promote_memory_to_registers(function)
        eliminate_dead_code(function)
        simplify_cfg(function)
    if verify:
        verify_module(module)


__all__ = [
    "eliminate_dead_code",
    "InlineError", "can_inline", "inline_always", "inline_call",
    "promote_memory_to_registers", "promotable_allocas",
    "simplify_cfg",
    "UnrollError", "UnrolledLoop", "can_unroll", "unroll_single_block_loop",
    "optimize_module",
    "cache_volatile_data",
]
