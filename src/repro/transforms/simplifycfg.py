"""CFG simplification: unreachable-block removal, constant-branch folding,
linear block merging, and forwarding-block elimination.

Running this after IR generation turns the front end's rotated loops into
the single-basic-block form that the Loop Write Clusterer targets
(paper Figure 3 shows loops in exactly this shape).
"""

from __future__ import annotations

from ..analysis.cfg import reachable_blocks
from ..ir.instructions import Branch, CondBranch, Phi
from ..ir.values import Constant


def simplify_cfg(function) -> bool:
    """Run all simplifications to a fixed point; True if anything changed."""
    changed_any = False
    while True:
        changed = (
            _fold_constant_branches(function)
            | _remove_unreachable(function)
            | _merge_linear_blocks(function)
            | _remove_forwarding_blocks(function)
        )
        changed_any |= changed
        if not changed:
            return changed_any


def _fold_constant_branches(function) -> bool:
    changed = False
    for block in function.blocks:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        if term.true_target is term.false_target:
            target = term.true_target
        elif isinstance(term.condition, Constant):
            target = term.true_target if term.condition.value else term.false_target
            dead = term.false_target if term.condition.value else term.true_target
            if dead is not target:
                for phi in dead.phis():
                    phi.remove_incoming(block)
        else:
            continue
        block.remove(term)
        block.append(Branch(target))
        changed = True
    return changed


def _remove_unreachable(function) -> bool:
    reachable = reachable_blocks(function)
    dead = [b for b in function.blocks if id(b) not in reachable]
    if not dead:
        return False
    dead_ids = {id(b) for b in dead}
    for block in function.blocks:
        if id(block) in dead_ids:
            continue
        for phi in block.phis():
            for pred in list(phi.incoming_blocks):
                if id(pred) in dead_ids:
                    phi.remove_incoming(pred)
    for block in dead:
        function.remove_block(block)
    return True


def _merge_linear_blocks(function) -> bool:
    """Merge B -> S when B's only successor is S and S's only pred is B."""
    changed = False
    for block in list(function.blocks):
        if block.parent is None:
            continue
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        succ = term.target
        if succ is block or succ is function.entry:
            continue
        if len(succ.predecessors) != 1:
            continue
        # Fold single-incoming phis of succ.
        for phi in list(succ.phis()):
            incoming = phi.incoming_for(block)
            succ.remove(phi)
            function.replace_all_uses(phi, incoming)
        block.remove(term)
        for instr in list(succ.instructions):
            succ.remove(instr)
            block.append(instr)
        # succ's successors now see `block` as their predecessor.
        for nxt in block.successors:
            for phi in nxt.phis():
                for i, pred in enumerate(phi.incoming_blocks):
                    if pred is succ:
                        phi.incoming_blocks[i] = block
        function.remove_block(succ)
        changed = True
    return changed


def _remove_forwarding_blocks(function) -> bool:
    """Delete blocks that contain only ``br X`` (no phis)."""
    changed = False
    for block in list(function.blocks):
        if block is function.entry or block.parent is None:
            continue
        if len(block.instructions) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        target = term.target
        if target is block:
            continue
        preds = block.predecessors
        # Abort if any pred already branches to target: merging the edges
        # would leave target's phis ambiguous.
        if any(target in p.successors for p in preds):
            continue
        target_phis = target.phis()
        for pred in preds:
            pred.replace_successor(block, target)
            for phi in target_phis:
                value = phi.incoming_for(block)
                phi.add_incoming(value, pred)
        for phi in target_phis:
            phi.remove_incoming(block)
        function.remove_block(block)
        changed = True
    return changed


def run_on_module(module) -> bool:
    changed = False
    for function in module.defined_functions():
        changed |= simplify_cfg(function)
    return changed
