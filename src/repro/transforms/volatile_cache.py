"""Volatile-data caching — the paper's §7 "Extensions of WARio" item,
implemented at block scope.

    "WARio can 'cache' some data in volatile memory if that data is both
     generated and used in one idempotent section, as in [33]."  (ALFRED)

Data written and re-read inside one idempotent region never needs the
NVM round-trip: the value is still in a register.  This pass performs the
register-level version: within a basic block, a load that provably reads
a preceding store's value (must-alias, with no possibly-aliasing access
or region boundary in between) is replaced by the stored value.  Besides
saving NVM reads, this *removes WAR material*: a forwarded load no longer
anchors a WAR violation.

When the stored location is additionally overwritten before any other
read (a block-local dead store), the first store disappears entirely —
the data lived only in "volatile" registers, exactly the ALFRED effect.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.alias import AliasAnalysis
from ..analysis.memdep import access_size
from ..ir.instructions import Call, Checkpoint, Load, Store


def cache_volatile_data(module, alias_mode: str = "precise") -> int:
    """Run forwarding + dead-store elimination on every function.

    Returns the number of loads forwarded plus stores removed.
    """
    from ..analysis.pointsto import compute_points_to

    points_to = compute_points_to(module)
    changed = 0
    for function in module.defined_functions():
        aa = AliasAnalysis(function, alias_mode, points_to=points_to)
        for block in function.blocks:
            changed += _forward_loads(function, block, aa)
            changed += _remove_dead_stores(function, block, aa)
    return changed


def _is_region_boundary(instr) -> bool:
    """Checkpoints end the region; calls both checkpoint and may touch
    any memory."""
    return isinstance(instr, (Checkpoint, Call))


def _forward_loads(function, block, aa: AliasAnalysis) -> int:
    forwarded = 0
    for load in [i for i in block.instructions if isinstance(i, Load)]:
        value = _forwardable_value(block, load, aa)
        if value is None:
            continue
        function.replace_all_uses(load, value)
        block.remove(load)
        forwarded += 1
    return forwarded


def _forwardable_value(block, load: Load, aa: AliasAnalysis):
    """The stored value that ``load`` must observe, or None."""
    lsize = access_size(load)
    idx = block.index_of(load)
    for prev in reversed(block.instructions[:idx]):
        if _is_region_boundary(prev):
            return None
        if isinstance(prev, Store):
            if aa.must_alias(prev.pointer, access_size(prev), load.pointer, lsize):
                # width must match exactly: a narrow store does not
                # produce the full loaded value
                if access_size(prev) == lsize and prev.value.type.size == lsize:
                    return prev.value
                return None
            if aa.may_alias(prev.pointer, access_size(prev), load.pointer, lsize):
                return None
    return None


def _remove_dead_stores(function, block, aa: AliasAnalysis) -> int:
    """Remove a store overwritten by a must-alias store later in the same
    block with no intervening possibly-aliasing read or region boundary."""
    removed = 0
    stores = [i for i in block.instructions if isinstance(i, Store)]
    for store in stores:
        if store.parent is not block:
            continue  # already removed
        if _killed_in_block(block, store, aa):
            block.remove(store)
            removed += 1
    return removed


def _killed_in_block(block, store: Store, aa: AliasAnalysis) -> bool:
    ssize = access_size(store)
    idx = block.index_of(store)
    for later in block.instructions[idx + 1 :]:
        if _is_region_boundary(later):
            return False
        if isinstance(later, Load) and aa.may_alias(
            later.pointer, access_size(later), store.pointer, ssize
        ):
            return False
        if isinstance(later, Store):
            if aa.must_alias(
                later.pointer, access_size(later), store.pointer, ssize
            ) and access_size(later) >= ssize:
                return True
            if aa.may_alias(
                later.pointer, access_size(later), store.pointer, ssize
            ):
                return False
    return False
