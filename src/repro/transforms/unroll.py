"""Loop unrolling for single-basic-block loops with early exits.

This is the UnrollLoop step of WARio's Loop Write Clusterer (paper
Algorithm 1 / Figure 3): the body is replicated N times, each replica
keeping its own exit test (so any trip count remains correct), and the
final replica feeding the header phis.  The exit edge is pre-split so all
replicas exit through one dedicated block holding LCSSA phis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.loops import Loop
from ..ir.block import split_edge
from ..ir.instructions import Branch, CondBranch, Instruction, Phi
from ..ir.values import Value


class UnrollError(Exception):
    """Raised when a loop does not have the supported shape."""


@dataclass
class UnrolledLoop:
    """Result of unrolling: the replica chain and the dedicated exit."""

    header: object            # replica 0 == the original header block
    chain: List               # all replicas in execution order (len == N)
    exit_block: object        # dedicated exit holding the LCSSA phis
    factor: int


def can_unroll(loop: Loop) -> bool:
    """Supported shape: single-block loop (header == latch) whose
    terminator is a 2-way branch between the header and one exit, or that
    only exits via a conditional branch; entry through a preheader."""
    if not loop.is_single_block():
        return False
    header = loop.header
    if loop.single_latch is not header:
        return False
    term = header.terminator
    if isinstance(term, CondBranch):
        targets = term.targets
        if header not in targets:
            return False
        exits = [t for t in targets if t is not header]
        return len(exits) == 1
    return False


def unroll_single_block_loop(loop: Loop, factor: int) -> UnrolledLoop:
    """Unroll ``loop`` by ``factor`` (>= 2).  Returns the replica chain."""
    if factor < 2:
        raise UnrollError("unroll factor must be >= 2")
    if not can_unroll(loop):
        raise UnrollError(f"unsupported loop shape at {loop.header.name}")
    header = loop.header
    function = header.parent
    term = header.terminator
    exit_target = term.true_target if term.true_target is not header else term.false_target

    # 1. Dedicated exit block on the (single) exit edge.
    exit_block = split_edge(header, exit_target, f"{header.name}.exit")

    # 2. LCSSA: values defined in the header and used outside flow through
    #    phis in the dedicated exit block.
    _make_lcssa(header, exit_block, function)

    # 3. Replicate the body.  Capture the branch orientation now: the
    #    header's terminator is retargeted as replicas are chained in.
    true_is_continue = term.true_target is header
    original_condition = term.condition
    header_phis = header.phis()
    latch_values = {id(phi): phi.incoming_for(header) for phi in header_phis}
    # value maps: replica k sees the header phi as the value computed by
    # replica k-1 (for k == 0 the phi itself).
    prev_map: Dict[int, Value] = {id(phi): phi for phi in header_phis}
    chain = [header]
    body = [i for i in header.instructions if not isinstance(i, Phi)]

    exit_phis = exit_block.phis()
    for k in range(1, factor):
        clone_block = function.add_block(f"{header.name}.unroll{k}", after=chain[-1])
        cur_map: Dict[int, Value] = {}
        for phi in header_phis:
            incoming = latch_values[id(phi)]
            cur_map[id(phi)] = _lookup(prev_map, incoming)
        for instr in body:
            if instr.is_terminator:
                continue
            copy = instr.clone()
            copy.loc = instr.loc
            for i, op in enumerate(copy.operands):
                copy.operands[i] = _lookup_chained(cur_map, prev_map, op)
            cur_map[id(instr)] = copy
            clone_block.append(copy)
        # Replica terminator: same test; the continue edge provisionally
        # targets the header and is retargeted when the next replica (or
        # the final back edge) is wired up.
        cond = _lookup_chained(cur_map, prev_map, original_condition)
        if true_is_continue:
            clone_block.append(CondBranch(cond, header, exit_block))
        else:
            clone_block.append(CondBranch(cond, exit_block, header))
        # Exit phis gain an incoming from this replica.
        for phi in exit_phis:
            original = phi.incoming_for(header)
            phi.add_incoming(_lookup_chained(cur_map, prev_map, original), clone_block)
        # Previous replica now falls through here instead of looping.
        chain[-1].replace_successor(header, clone_block)
        prev_map = _merge_maps(prev_map, cur_map)
        chain.append(clone_block)

    # 4. Close the loop: the last replica already branches back to the
    #    header; the header phis take their latch values from it.
    last = chain[-1]
    for phi in header_phis:
        incoming = latch_values[id(phi)]
        mapped = _lookup(prev_map, incoming)
        phi.remove_incoming(header)
        phi.add_incoming(mapped, last)
    return UnrolledLoop(header=header, chain=chain, exit_block=exit_block, factor=factor)


def _make_lcssa(header, exit_block, function) -> None:
    """Route all out-of-loop uses of header-defined values through phis in
    the dedicated exit block."""
    header_values = [
        i for i in header.instructions if i.type.size != 0 or isinstance(i, Phi)
    ]
    in_loop = {id(header)}
    for value in header_values:
        outside_users = []
        for block in function.blocks:
            if id(block) in in_loop or block is exit_block:
                continue
            for instr in block.instructions:
                if any(op is value for op in instr.operands):
                    outside_users.append(instr)
        exit_uses = [
            instr
            for instr in exit_block.instructions
            if not isinstance(instr, Phi) and any(op is value for op in instr.operands)
        ]
        outside_users.extend(exit_uses)
        if not outside_users:
            continue
        phi = Phi(value.type, f"{value.name}.lcssa")
        phi.add_incoming(value, header)
        exit_block.insert(0, phi)
        for instr in outside_users:
            instr.replace_uses_of(value, phi)


def _lookup(mapping: Dict[int, Value], value: Value) -> Value:
    return mapping.get(id(value), value)


def _lookup_chained(cur: Dict[int, Value], prev: Dict[int, Value], value: Value) -> Value:
    if id(value) in cur:
        return cur[id(value)]
    return prev.get(id(value), value)


def _merge_maps(prev: Dict[int, Value], cur: Dict[int, Value]) -> Dict[int, Value]:
    merged = dict(prev)
    merged.update(cur)
    return merged
