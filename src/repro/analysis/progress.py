"""Static forward-progress certification (paper §6, Surbatovich et al.).

An intermittently-powered device only completes a program if every
checkpoint-delimited region fits inside one power-on window: correctness
of intermittent execution includes *progress*, not just memory
consistency.  This module is the third leg of the certification stack
after WAR-freedom and idempotence — a sound, machine-level bound on the
worst-case cycle cost of every region.

Three layers:

**Loop trip bounds** (:func:`loop_trip_bounds`) are inferred on the
instrumented middle-end IR: a loop whose dominating exit compares a
constant-step induction variable (:func:`repro.analysis.loops.
find_induction_variables`) against a constant, starting from a constant
entry value, gets a closed-form bound on its body executions.  Anything
else is the lattice top, ``unbounded`` (represented as ``float("inf")``).
The back end preserves block names (instruction selection creates one
machine block per IR block), so the IR bounds transfer to machine loops
by header name.

**Region bounds** are computed on the final machine IR with the
emulator's real :class:`~repro.emulator.costs.CostModel` — the very
costs the differential validator's dynamic runs are charged — not the
middle-end estimate table.  Branches are assumed taken (worst case:
base cost plus the pipeline refill), a checkpoint's commit cost is
charged to the *following* region (matching
``Machine._take_checkpoint``, which records ``region_cycles`` before
resetting), and calls compose callee summaries bottom-up over the
Tarjan SCC order of :mod:`repro.analysis.summaries` (a recursive SCC is
``unbounded``).  Within a function, loops are collapsed innermost-first
into summary nodes and the resulting DAG is evaluated with the generic
worklist solver of :mod:`repro.analysis.dataflow`.

Every path set is summarised by four components (the *progress
lattice*, see ``docs/PROGRESS.md``):

* ``through`` — the dearest checkpoint-free entry-to-exit path, or
  ``None`` when every path crosses a checkpoint;
* ``pre``    — per ending checkpoint, the dearest entry-to-*first*-
  checkpoint prefix;
* ``post``   — the dearest last-checkpoint-to-exit suffix;
* ``gaps``   — per ending checkpoint, the dearest complete interior
  checkpoint-to-checkpoint gap.

The **diagnostics** (``progress-*`` family, certify level):

* ``progress-unbounded`` — a loop with no inferable trip bound has a
  checkpoint-free iteration path (or the function is recursive /
  structurally unanalysable): under a short-enough power-on window the
  program livelocks.  Warning normally, error when certifying against
  an explicit ``--budget``.
* ``progress-budget-exceeded`` — a region's worst-case bound exceeds
  the requested cycle budget.
* ``progress-region-bound-unsound`` — the middle end's
  :mod:`repro.core.region_bound` pass promised ``max_region_cycles``,
  but the machine-level bound exceeds it: the IR estimate did not
  survive the back end (spills, prologues, call expansion).

Certificates are per-function JSON dicts (schema in
``docs/PROGRESS.md``); :func:`progress_bound` folds a module's
certificates into the single program-level bound the fault-injection
differential compares dynamic gaps against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..diagnostics import LEVEL_CERTIFY, DiagnosticEngine
from ..emulator.costs import DEFAULT_COSTS, CostModel
from .dataflow import DataflowProblem, solve
from .dominators import dominator_tree
from .loops import find_induction_variables, loop_info

#: The lattice top: no finite bound.
UNBOUNDED = float("inf")

_M32 = 0xFFFFFFFF


class IrreducibleCFG(Exception):
    """The condensed machine CFG is not a DAG after collapsing natural
    loops — positional back edges did not capture its cycles, so no
    structural bound exists.  The caller degrades to ``unbounded``."""


# ---------------------------------------------------------------------------
# Loop trip-bound inference (middle-end IR)
# ---------------------------------------------------------------------------

def _signed(value: int) -> int:
    value &= _M32
    return value - (1 << 32) if value >= (1 << 31) else value


def _chase_affine(value) -> Tuple[object, int]:
    """Decompose ``value`` as ``base + offset`` through a chain of
    constant adds/subs (as loop rotation and unrolling produce)."""
    from ..ir.instructions import BinaryOp
    from ..ir.values import Constant

    offset = 0
    for _ in range(64):  # bound the walk
        if (
            isinstance(value, BinaryOp)
            and value.op in ("add", "sub")
            and isinstance(value.rhs, Constant)
        ):
            step = _signed(value.rhs.value)
            offset += -step if value.op == "sub" else step
            value = value.lhs
            continue
        break
    return value, offset


#: ``a pred b`` ⇔ ``b SWAP[pred] a``
_SWAP = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
}

_NEGATE = {
    "eq": "ne", "ne": "eq",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
}


def _count_true(pred: str, start: int, step: int, limit: int) -> Optional[int]:
    """How many ``k >= 0`` satisfy ``pred(start + k*step, limit)``
    before the first failure; ``None`` when the sequence never fails
    (or wraps in a way the closed forms do not cover)."""
    if pred in ("slt", "sle", "sgt", "sge"):
        s, b = _signed(start), _signed(limit)
    else:
        s, b = start & _M32, limit & _M32
    if pred in ("slt", "ult"):
        if s >= b:
            return 0
        return None if step <= 0 else -((s - b) // step)
    if pred in ("sle", "ule"):
        if s > b:
            return 0
        return None if step <= 0 else (b - s) // step + 1
    if pred in ("sgt", "ugt"):
        if s <= b:
            return 0
        return None if step >= 0 else -((b - s) // -step)
    if pred in ("sge", "uge"):
        if s < b:
            return 0
        return None if step >= 0 else (s - b) // -step + 1
    if pred == "ne":
        if s == b:
            return 0
        if step > 0 and b > s and (b - s) % step == 0:
            return (b - s) // step
        if step < 0 and s > b and (s - b) % -step == 0:
            return (s - b) // -step
        return None
    if pred == "eq":
        return 1 if s == b else 0
    return None


def _entry_constant(loop, phi) -> Optional[int]:
    from ..ir.values import Constant

    entering = [v for v, pred in phi.incoming if not loop.contains(pred)]
    if len(entering) == 1 and isinstance(entering[0], Constant):
        return entering[0].value
    return None


def argument_constants(module) -> Dict[str, Dict[int, Tuple[int, ...]]]:
    """Whole-program constant-argument sets: for each defined function,
    the constant values each parameter takes across *all* call sites in
    the module.  A parameter that any call site passes a non-constant
    value for (or a function with no call sites at all) is absent — its
    value set is unknown.

    Mini-C has no indirect calls and ``main`` is the only external
    entry, so every way a parameter can be bound appears as a literal
    ``Call`` operand somewhere in the module."""
    from ..ir.instructions import Call
    from ..ir.values import Constant

    defined = {fn.name: fn for fn in module.defined_functions()}
    values: Dict[str, Dict[int, set]] = {name: {} for name in defined}
    poisoned: Dict[str, set] = {name: set() for name in defined}
    called: set = set()
    for fn in defined.values():
        for block in fn.blocks:
            for instr in block.instructions:
                if not isinstance(instr, Call):
                    continue
                callee = instr.callee.name
                if callee not in defined:
                    continue
                called.add(callee)
                for index, arg in enumerate(instr.args):
                    if isinstance(arg, Constant):
                        values[callee].setdefault(index, set()).add(arg.value)
                    else:
                        poisoned[callee].add(index)
    return {
        name: {
            index: tuple(sorted(vals))
            for index, vals in per_arg.items()
            if index not in poisoned[name]
        }
        for name, per_arg in values.items()
        if name in called
    }


def _limit_values(value, offset: int,
                  arg_values: Optional[Dict[int, Tuple[int, ...]]]):
    """The constant values an affine-chased loop limit can take: a
    literal constant, or a parameter whose call sites all pass
    constants.  ``None`` when the limit is not statically enumerable."""
    from ..ir.values import Argument, Constant

    if isinstance(value, Constant):
        return (value.value + offset,)
    if isinstance(value, Argument) and arg_values:
        vals = arg_values.get(value.index)
        if vals:
            return tuple(v + offset for v in vals)
    return None


def loop_trip_bounds(
    function,
    arg_values: Optional[Dict[int, Tuple[int, ...]]] = None,
) -> Dict[str, float]:
    """Per loop-header block name, the maximum number of body executions
    each time the loop is entered (:data:`UNBOUNDED` when no dominating
    exit yields a closed form).

    Only exits that dominate every latch may bound the trip count — a
    test inside a conditional can be skipped by an iteration, so it
    guarantees nothing.  The inferred count is widened by one so both
    top- and bottom-tested rotations are covered.
    """
    from ..ir.instructions import Branch, CondBranch, ICmp

    domtree = dominator_tree(function)
    info = loop_info(function, domtree)
    bounds: Dict[str, float] = {}
    for loop in info.loops:
        ivs = {
            id(phi): (phi, step)
            for phi, step in find_induction_variables(loop).values()
        }
        best = UNBOUNDED
        for inside, _outside in loop.exit_edges():
            if not all(domtree.dominates(inside, latch) for latch in loop.latches):
                continue
            term = inside.terminator
            if isinstance(term, Branch):
                best = min(best, 1)  # unconditionally leaves the loop
                continue
            if not isinstance(term, CondBranch):
                continue
            exits_true = not loop.contains(term.true_target)
            exits_false = not loop.contains(term.false_target)
            if exits_true and exits_false:
                best = min(best, 1)
                continue
            cond = term.condition
            if not isinstance(cond, ICmp):
                continue
            base_l, off_l = _chase_affine(cond.lhs)
            base_r, off_r = _chase_affine(cond.rhs)
            pred = cond.predicate
            if id(base_l) in ivs:
                phi, step = ivs[id(base_l)]
                offset = off_l
                limits = _limit_values(base_r, off_r, arg_values)
            elif id(base_r) in ivs:
                phi, step = ivs[id(base_r)]
                offset = off_r
                limits = _limit_values(base_l, off_l, arg_values)
                pred = _SWAP[pred]
            else:
                continue
            if not limits:
                continue
            init = _entry_constant(loop, phi)
            if init is None:
                continue
            continue_pred = _NEGATE[pred] if exits_true else pred
            counts = [
                _count_true(continue_pred, init + offset, step, limit)
                for limit in limits
            ]
            if all(count is not None for count in counts):
                best = min(best, max(counts) + 1)
        bounds[loop.header.name] = best
    return bounds


# ---------------------------------------------------------------------------
# The progress lattice: path summaries over machine IR
# ---------------------------------------------------------------------------

class PathSummary:
    """Worst-case cycle summary of a set of paths (see module docs)."""

    __slots__ = ("through", "pre", "post", "gaps")

    def __init__(self, through=0, pre=None, post=None, gaps=None):
        self.through: Optional[float] = through
        self.pre: Dict[str, float] = pre or {}
        self.post: Optional[float] = post
        self.gaps: Dict[str, float] = gaps or {}

    def copy(self) -> "PathSummary":
        return PathSummary(self.through, dict(self.pre), self.post,
                           dict(self.gaps))

    def __repr__(self):
        return (f"<PathSummary through={self.through} pre={self.pre} "
                f"post={self.post} gaps={self.gaps}>")


def _merge_max(into: Dict[str, float], new: Dict[str, float],
               shift: float = 0) -> bool:
    changed = False
    for label, value in new.items():
        value = value + shift
        if into.get(label, -1) < value:
            into[label] = value
            changed = True
    return changed


def _seq(a: PathSummary, b: PathSummary) -> PathSummary:
    """Sequential composition: every path of ``a`` followed by every
    path of ``b``."""
    out = PathSummary(
        through=(a.through + b.through
                 if a.through is not None and b.through is not None else None),
        pre=dict(a.pre),
        post=b.post,
        gaps=dict(a.gaps),
    )
    if a.through is not None:
        _merge_max(out.pre, b.pre, a.through)
    if a.post is not None and b.through is not None:
        candidate = a.post + b.through
        if out.post is None or candidate > out.post:
            out.post = candidate
    _merge_max(out.gaps, b.gaps)
    if a.post is not None:
        _merge_max(out.gaps, b.pre, a.post)
    return out


def _join_into(existing: PathSummary, incoming: PathSummary) -> bool:
    """Path-alternative join (pointwise max); mutates ``existing``."""
    changed = False
    if incoming.through is not None and (
        existing.through is None or incoming.through > existing.through
    ):
        existing.through = incoming.through
        changed = True
    if incoming.post is not None and (
        existing.post is None or incoming.post > existing.post
    ):
        existing.post = incoming.post
        changed = True
    changed |= _merge_max(existing.pre, incoming.pre)
    changed |= _merge_max(existing.gaps, incoming.gaps)
    return changed


def _power(body: PathSummary, trips: float) -> PathSummary:
    """``body`` iterated up to ``trips`` times (``trips`` may be
    :data:`UNBOUNDED`; the caller clamps to at least one)."""
    if trips <= 1:
        return body.copy()
    if body.through is None:
        # Every iteration checkpoints: iterating only adds the
        # wrap-around gap (last checkpoint of one iteration to the first
        # of the next); an unbounded trip count is still fully bounded.
        out = PathSummary(None, dict(body.pre), body.post, dict(body.gaps))
        if body.post is not None:
            _merge_max(out.gaps, body.pre, body.post)
        return out
    if trips == UNBOUNDED:
        out = PathSummary(
            UNBOUNDED,
            {label: UNBOUNDED for label in body.pre},
            UNBOUNDED if body.post is not None else None,
            dict(body.gaps),
        )
        if body.post is not None:
            for label in body.pre:
                out.gaps[label] = UNBOUNDED
        return out
    through = body.through
    out = PathSummary(
        through * trips,
        {label: value + through * (trips - 1)
         for label, value in body.pre.items()},
        body.post + through * (trips - 1) if body.post is not None else None,
        dict(body.gaps),
    )
    if body.post is not None:
        _merge_max(out.gaps, body.pre, body.post + through * (trips - 2))
    return out


# ---------------------------------------------------------------------------
# Machine-IR loop forest (positional back edges, same convention as
# repro.backend.mir_war / CFGProblem)
# ---------------------------------------------------------------------------

class _MLoop:
    __slots__ = ("header", "blocks", "latches", "parent", "children", "trips")

    def __init__(self, header: str):
        self.header = header
        self.blocks = {header}
        self.latches: set = set()
        self.parent: Optional["_MLoop"] = None
        self.children: List["_MLoop"] = []
        self.trips: float = UNBOUNDED


def _mir_loops(mfn) -> Tuple[Dict[str, _MLoop], Dict[str, List[str]]]:
    """Natural loops of a machine function, from real dominance over the
    machine CFG (back edge = edge whose target dominates its source;
    :func:`~repro.analysis.dominators._chk_idoms` reused through a name
    graph, since machine blocks expose ``successors()`` as a method
    rather than the IR property).

    Returns ``(loops by header name, successor names by block name)``;
    raises :class:`IrreducibleCFG` when a retreating edge is not a back
    edge or the loops are not properly nested."""
    from .dominators import DominatorTree, _chk_idoms

    preds: Dict[str, List[str]] = {block.name: [] for block in mfn.blocks}
    succs: Dict[str, List[str]] = {}
    by_name = {block.name: block for block in mfn.blocks}
    for block in mfn.blocks:
        names = [succ.name for succ in block.successors()]
        succs[block.name] = names
        for name in names:
            preds[name].append(block.name)
    entry_block = mfn.blocks[0]

    # Reverse postorder from the entry (unreachable blocks excluded).
    rpo: List = []
    visited = set()

    def dfs(block):
        visited.add(block.name)
        for name in succs[block.name]:
            if name not in visited:
                dfs(by_name[name])
        rpo.append(block)

    dfs(entry_block)
    rpo.reverse()
    rpo_index = {block.name: i for i, block in enumerate(rpo)}
    idom = _chk_idoms(
        rpo, entry_block, lambda b: [by_name[p] for p in preds[b.name]
                                     if p in rpo_index]
    )
    domtree = DominatorTree(idom, entry_block, rpo)

    loops: Dict[str, _MLoop] = {}
    for block in rpo:
        for succ in succs[block.name]:
            if rpo_index.get(succ, len(rpo)) > rpo_index[block.name]:
                continue  # forward (or cross-to-unreachable) edge
            if not domtree.dominates(by_name[succ], block):
                raise IrreducibleCFG(
                    f"retreating edge {block.name} → {succ} whose target "
                    f"does not dominate its source"
                )
            loop = loops.setdefault(succ, _MLoop(succ))
            loop.latches.add(block.name)
            stack = [block.name]
            loop.blocks.add(block.name)
            while stack:
                name = stack.pop()
                if name == loop.header:
                    continue
                for pred in preds[name]:
                    if pred not in loop.blocks and pred in rpo_index:
                        loop.blocks.add(pred)
                        stack.append(pred)
    ordered = sorted(loops.values(), key=lambda l: len(l.blocks))
    for loop in ordered:
        for candidate in ordered:
            if candidate is loop or len(candidate.blocks) <= len(loop.blocks):
                continue
            if loop.header in candidate.blocks:
                if not loop.blocks <= candidate.blocks:
                    raise IrreducibleCFG(
                        f"loops at {loop.header} and {candidate.header} "
                        f"overlap without nesting"
                    )
                loop.parent = candidate
                candidate.children.append(loop)
                break
    return loops, succs


# ---------------------------------------------------------------------------
# Region condensation + the worklist solve
# ---------------------------------------------------------------------------

class _RegionProblem(DataflowProblem):
    """Forward max-cost propagation over one condensed (DAG) region.

    Nodes are block names or collapsed-loop headers; the in-state at a
    node is the :class:`PathSummary` of all region-entry→node-entry
    paths.  ``transfer`` appends the node's own summary; joins take the
    pointwise maximum.  The condensation is guaranteed acyclic before
    the solver runs, so the round-robin fixpoint is one pass."""

    def __init__(self, order, edges, summaries, entry):
        self._order = order            # node keys, topologically sorted
        self._edges = edges            # key -> [key]
        self._summaries = summaries    # key -> PathSummary
        self._entry = entry

    def nodes(self):
        return self._order

    def key(self, node):
        return node

    def edges(self, node):
        for succ in self._edges[node]:
            yield succ, False

    def initial(self, node):
        return PathSummary() if node == self._entry else None

    def transfer(self, node, state):
        return _seq(state, self._summaries[node])

    def flow(self, out, node, succ, is_back):
        return out.copy()

    def merge(self, existing, incoming, node):
        return _join_into(existing, incoming)


def _block_summary(block, costs: CostModel,
                   callee_summaries: Dict[str, PathSummary]) -> PathSummary:
    """Fold one machine block's instructions into a summary.

    Branches charge the taken cost (base + pipeline refill) — the sound
    worst case.  A checkpoint ends the current gap *before* its commit
    cost and charges the commit to the following region, exactly as the
    emulator accounts ``region_cycles``.  A call splices in the callee's
    summary (its interior gaps are certified in the callee's own
    certificate)."""
    summary = PathSummary()
    for index, instr in enumerate(block.instructions):
        op = instr.opcode
        if op == "checkpoint":
            label = f"{block.name}@{index}"
            atom = PathSummary(None, {label: 0}, costs.checkpoint_cycles, {})
        elif op == "bl":
            cost = costs.cost_of(instr) + costs.pipeline_refill
            callee = instr.ops[0]
            target = callee_summaries.get(callee)
            if target is None:
                # Unknown or external callee: nothing is bounded.
                atom = PathSummary(UNBOUNDED, {}, None, {})
            else:
                pre = {}
                if target.pre:
                    pre[f"{block.name}@{index}:bl:{callee}"] = (
                        cost + max(target.pre.values())
                    )
                atom = PathSummary(
                    None if target.through is None else cost + target.through,
                    pre,
                    target.post,
                    {},
                )
        elif op in ("b", "bcc", "bx_lr"):
            atom = PathSummary(costs.cost_of(instr) + costs.pipeline_refill)
        else:
            atom = PathSummary(costs.cost_of(instr))
        summary = _seq(summary, atom)
    return summary


def _condense(members, entry: str, loops: List[_MLoop],
              succs: Dict[str, List[str]],
              node_summaries: Dict[object, PathSummary],
              iteration: bool):
    """Evaluate one region (a whole function body, or a loop body with
    its back edges cut) over its condensed node graph.

    Returns ``(exit summary, iteration summary or None)``: the exit
    summary joins every path leaving the region (function: blocks with
    no successors; loop: edges leaving the member set), the iteration
    summary joins the paths reaching a latch (only requested for
    loops, ``iteration=True``)."""
    top: Dict[str, object] = {}
    for name in members:
        top[name] = name
    for loop in loops:
        key = ("loop", loop.header)
        for name in loop.blocks:
            top[name] = key

    keys: List[object] = []
    for name in members:  # membership order = layout order
        key = top[name]
        if key not in node_summaries:
            raise IrreducibleCFG(f"node {key} has no summary")
        if key not in keys:
            keys.append(key)
    entry_key = top[entry]

    edges: Dict[object, List[object]] = {key: [] for key in keys}
    exit_sources: List[object] = []
    for name in members:
        out_of_region = False
        for succ in succs[name]:
            if succ not in top:
                out_of_region = True
                continue
            source, target = top[name], top[succ]
            if source == target:
                continue
            if target == entry_key:
                if iteration:
                    continue  # the loop's own back edge
                raise IrreducibleCFG(f"residual back edge into {entry}")
            if isinstance(target, tuple) and succ != target[1]:
                raise IrreducibleCFG(f"side entry into loop at {target[1]}")
            if target not in edges[source]:
                edges[source].append(target)
        if not succs[name] or out_of_region:
            if top[name] not in exit_sources:
                exit_sources.append(top[name])

    # Topological order (Kahn); residual cycles mean the positional
    # back-edge classification missed something — degrade, don't loop.
    incoming = {key: 0 for key in keys}
    for source in keys:
        for target in edges[source]:
            incoming[target] += 1
    ready = [key for key in keys if incoming[key] == 0]
    topo: List[object] = []
    while ready:
        key = ready.pop(0)
        topo.append(key)
        for target in edges[key]:
            incoming[target] -= 1
            if incoming[target] == 0:
                ready.append(target)
    if len(topo) != len(keys):
        raise IrreducibleCFG("condensed region is not acyclic")

    states = solve(_RegionProblem(topo, edges, node_summaries, entry_key))

    def out_state(key) -> Optional[PathSummary]:
        state = states.get(key)
        if state is None:
            return None
        return _seq(state, node_summaries[key])

    exit_summary: Optional[PathSummary] = None
    for key in exit_sources:
        out = out_state(key)
        if out is None:
            continue
        if exit_summary is None:
            exit_summary = out
        else:
            _join_into(exit_summary, out)

    iteration_summary: Optional[PathSummary] = None
    if iteration:
        # latches: any member block with an edge back to the entry block
        latch_keys = []
        for name in members:
            if entry in succs[name]:
                key = top[name]
                if key not in latch_keys:
                    latch_keys.append(key)
        for key in latch_keys:
            out = out_state(key)
            if out is None:
                continue
            if iteration_summary is None:
                iteration_summary = out
            else:
                _join_into(iteration_summary, out)
    return exit_summary, iteration_summary


def _summarize_mfunction(mfn, costs: CostModel, trips: Dict[str, float],
                         callee_summaries: Dict[str, PathSummary]):
    """Whole-function path summary plus per-loop metadata."""
    loops, succs = _mir_loops(mfn)
    node_summaries: Dict[object, PathSummary] = {
        block.name: _block_summary(block, costs, callee_summaries)
        for block in mfn.blocks
    }

    loops_meta: List[Dict[str, object]] = []
    # Innermost first: children before parents.
    for loop in sorted(loops.values(), key=lambda l: len(l.blocks)):
        loop.trips = trips.get(loop.header, UNBOUNDED)
        members = [b.name for b in mfn.blocks if b.name in loop.blocks]
        _exit, body = _condense(
            members, loop.header, loop.children, succs, node_summaries,
            iteration=True,
        )
        if body is None:
            raise IrreducibleCFG(f"loop at {loop.header} has no latch path")
        checkpoint_free = body.through is not None
        iterated = _power(body, max(loop.trips, 1))
        partial = _exit  # one additional partial pass to the exit edge
        summary = _seq(iterated, partial) if partial is not None else iterated
        node_summaries[("loop", loop.header)] = summary
        loops_meta.append({
            "header": loop.header,
            "trip_bound": None if loop.trips == UNBOUNDED else int(loop.trips),
            "checkpoint_free_iteration": checkpoint_free,
        })

    members = [block.name for block in mfn.blocks]
    top_loops = [loop for loop in loops.values() if loop.parent is None]
    summary, _ = _condense(
        members, mfn.blocks[0].name, top_loops, succs, node_summaries,
        iteration=False,
    )
    if summary is None:
        summary = PathSummary(UNBOUNDED, {}, None, {})
    return summary, loops_meta


# ---------------------------------------------------------------------------
# Certificates + diagnostics
# ---------------------------------------------------------------------------

def _bound_json(value: Optional[float]):
    if value is None or value == UNBOUNDED:
        return None
    return int(value)


def _certificate(name: str, summary: PathSummary,
                 loops_meta: List[Dict[str, object]],
                 notes: List[str]) -> Dict[str, object]:
    regions: List[Dict[str, object]] = []
    for label, value in sorted(summary.pre.items()):
        regions.append({"kind": "entry", "to": label,
                        "bound": _bound_json(value)})
    for label, value in sorted(summary.gaps.items()):
        regions.append({"kind": "interior", "to": label,
                        "bound": _bound_json(value)})
    if summary.post is not None:
        regions.append({"kind": "exit", "to": "return",
                        "bound": _bound_json(summary.post)})
    if summary.through is not None:
        regions.append({"kind": "through", "to": "return",
                        "bound": _bound_json(summary.through)})
    bounds = [region["bound"] for region in regions]
    unbounded = any(bound is None for bound in bounds)
    max_bound = None if unbounded or not bounds else max(bounds)
    return {
        "function": name,
        "verdict": "unbounded" if unbounded else "bounded",
        "max_bound": max_bound,
        "regions": regions,
        "loops": loops_meta,
        "notes": notes,
    }


def certify_module_progress(
    ir_module,
    mmodule,
    cost_model: Optional[CostModel] = None,
    engine: Optional[DiagnosticEngine] = None,
    budget: Optional[int] = None,
    region_budget: Optional[int] = None,
):
    """Certify forward progress of a lowered module.

    ``ir_module`` is the instrumented middle-end IR (trip bounds),
    ``mmodule`` the lowered machine module (cycle costs).  ``budget``
    is the caller's cycle budget per region (``progress-*`` findings
    harden to errors against it); ``region_budget`` is the middle end's
    own ``max_region_cycles`` promise, cross-checked at machine level.
    Returns ``(engine, certificates)``."""
    from .summaries import _call_graph_sccs, _calls_self

    costs = cost_model or DEFAULT_COSTS
    engine = engine or DiagnosticEngine()
    certificates: List[Dict[str, object]] = []
    summaries: Dict[str, PathSummary] = {}
    unbounded_severity = engine.error if budget is not None else engine.warning

    arg_constants = argument_constants(ir_module)
    trip_bounds = {
        fn.name: loop_trip_bounds(fn, arg_constants.get(fn.name))
        for fn in ir_module.defined_functions()
    }

    for scc in _call_graph_sccs(ir_module):
        recursive = len(scc) > 1 or _calls_self(scc[0])
        for fn in scc:
            mfn = mmodule.functions.get(fn.name)
            if mfn is None:
                continue
            notes: List[str] = []
            if recursive:
                summary = PathSummary(UNBOUNDED, {}, None, {})
                loops_meta: List[Dict[str, object]] = []
                notes.append("recursive call cycle: no structural bound")
                unbounded_severity(
                    "progress-unbounded",
                    f"@{fn.name}: recursive call cycle "
                    f"({', '.join(f.name for f in scc)}) — regions spanning "
                    f"the recursion have no inferable cycle bound",
                    function=fn.name, level=LEVEL_CERTIFY,
                )
            else:
                try:
                    summary, loops_meta = _summarize_mfunction(
                        mfn, costs, trip_bounds.get(fn.name, {}), summaries
                    )
                except IrreducibleCFG as exc:
                    summary = PathSummary(UNBOUNDED, {}, None, {})
                    loops_meta = []
                    notes.append(f"unanalysable control flow: {exc}")
                    unbounded_severity(
                        "progress-unbounded",
                        f"@{fn.name}: {exc} — no structural region bound",
                        function=fn.name, level=LEVEL_CERTIFY,
                    )
                for meta in loops_meta:
                    if meta["trip_bound"] is None and \
                            meta["checkpoint_free_iteration"]:
                        unbounded_severity(
                            "progress-unbounded",
                            f"@{fn.name}: loop at {meta['header']} has no "
                            f"inferable trip bound and a checkpoint-free "
                            f"iteration path — it can livelock under a "
                            f"short power-on window",
                            function=fn.name, level=LEVEL_CERTIFY,
                        )
            summaries[fn.name] = summary
            certificate = _certificate(fn.name, summary, loops_meta, notes)
            certificates.append(certificate)

            max_bound = certificate["max_bound"]
            if budget is not None and certificate["verdict"] == "bounded" \
                    and max_bound is not None and max_bound > budget:
                engine.error(
                    "progress-budget-exceeded",
                    f"@{fn.name}: worst-case region bound {max_bound} "
                    f"cycles exceeds the progress budget {budget}",
                    function=fn.name, level=LEVEL_CERTIFY,
                )
            if region_budget is not None and max_bound is not None \
                    and max_bound > region_budget:
                engine.warning(
                    "progress-region-bound-unsound",
                    f"@{fn.name}: the middle-end region_bound pass promised "
                    f"≤ {region_budget} estimated cycles per region, but the "
                    f"machine-level bound is {max_bound} — the IR estimate "
                    f"did not survive the back end",
                    function=fn.name, level=LEVEL_CERTIFY,
                )
    certificates.sort(key=lambda cert: cert["function"])
    return engine, certificates


def progress_bound(certificates: List[Dict[str, object]]) -> Optional[int]:
    """Fold per-function certificates into the program-level region
    bound (``None`` = unbounded).

    The entry function's summary already composes callee prologue and
    epilogue gaps at every call site, so only *interior* gaps of the
    other functions (certified locally, spliced out of call atoms) need
    to be folded in on top of the entry function's full region list."""
    best = 0
    for certificate in certificates:
        is_entry = certificate["function"] == "main"
        for region in certificate["regions"]:
            if not is_entry and region["kind"] not in ("interior",):
                continue
            if region["bound"] is None:
                return None
            if region["bound"] > best:
                best = region["bound"]
    return best


def module_progress_verdict(certificates) -> str:
    """``bounded`` iff every certificate is bounded."""
    return (
        "bounded"
        if all(c["verdict"] == "bounded" for c in certificates)
        else "unbounded"
    )


__all__ = [
    "UNBOUNDED", "IrreducibleCFG", "PathSummary",
    "argument_constants", "loop_trip_bounds", "certify_module_progress",
    "progress_bound", "module_progress_verdict",
]
