"""The shared dataflow engine: one worklist solver, pluggable lattices.

Every static analysis in this repository is an instance of the same
scheme — iterate a monotone transfer function over a graph until the
per-node abstract states stop changing.  Before this module existed the
scheme was spelled out three times: the IR-level exposed-load dataflow
(:mod:`repro.analysis.static_war`), the machine-level stack dataflow
(:mod:`repro.backend.mir_war`), and the defined-before-use must-check in
:mod:`repro.backend.mir`.  They now all instantiate
:class:`DataflowProblem` and call :func:`solve`; the idempotence
certifier (:mod:`repro.analysis.idempotence`) builds on the same engine.

The solver is deliberately a *round-robin* iteration over a fixed node
order rather than a priority worklist: for the monotone join lattices
used here the fixpoint is unique and order-independent, but the
*incidental* outputs the verifiers derive along the way (the order
structural problems are first observed in, which join first widened a
flag) are not — and the refactor onto this engine is required to be
byte-identical to the historical per-analysis loops, which were all
round-robin.  Determinism beats asymptotics at these function sizes.

Lattice direction is the client's choice: a **may** analysis starts from
bottom (empty) and unions at joins; a **must** analysis starts from top
(here encoded as ``None`` = "no path has reached this node yet") and
intersects.  ``None`` doubles as the unreachable marker — the solver
never runs a transfer on a ``None`` in-state, so unreachable nodes keep
their initial value and dead paths contribute nothing to any join,
exactly the convention the historical loops used.

A *backward* analysis is the same solver run on the reverse graph:
:class:`CFGProblem` derives node order and edges from a block list and
a successor function, and flips both when ``direction=BACKWARD``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Path flags carried by flow facts: the fact reaches this program point
#: without crossing a loop back edge (``FW``, same iteration) or after
#: wrapping at least one (``BK``, a later iteration).  Shared by the IR
#: and machine WAR verifiers and the idempotence certifier so that a
#: fact can cross between them without translation.
FW = 1
BK = 2

#: Analysis directions for :class:`CFGProblem`.
FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """One dataflow instance: a graph plus a lattice.

    Subclasses define the graph (:meth:`nodes`, :meth:`edges`), the
    lattice (:meth:`initial`, :meth:`merge`), and the semantics
    (:meth:`transfer`, optionally :meth:`flow`).  :func:`solve` returns
    the fixpoint map of *in*-states keyed by :meth:`key`.

    Contracts the solver relies on:

    * ``transfer`` must not mutate the in-state it is handed — copy
      first.  (The same in-state is transferred once per round.)
    * ``merge`` mutates ``existing`` in place and returns whether it
      changed; it must be a monotone join (or meet) so the iteration
      terminates at a unique fixpoint.
    * ``flow`` may return the out-state itself when the edge does not
      tag it; whatever it returns may be stored directly as a successor
      in-state, so return a fresh object whenever the state is mutable
      and the edge-specific copy matters.
    """

    def nodes(self) -> Iterable:
        """Nodes in fixed iteration order (also the round-robin order)."""
        raise NotImplementedError

    def key(self, node):
        """Hashable identity of a node in the result map."""
        return id(node)

    def edges(self, node) -> Iterator[Tuple[object, bool]]:
        """Yield ``(successor, is_back_edge)`` pairs for ``node``."""
        raise NotImplementedError

    def initial(self, node):
        """The seed in-state, or ``None`` for "not yet reached": such a
        node is skipped until some edge flows a state into it."""
        raise NotImplementedError

    def transfer(self, node, state):
        """The node's out-state for the given in-state (not mutated)."""
        raise NotImplementedError

    def flow(self, out, node, succ, is_back):
        """Edge-specific view of ``out`` flowing along ``node → succ``
        (e.g. tag facts with ``BK`` on a back edge).  Default: ``out``
        unchanged."""
        return out

    def merge(self, existing, incoming, node) -> bool:
        """Join ``incoming`` into ``existing`` in place; return True iff
        ``existing`` changed.  ``node`` is the join point (the successor
        whose in-state is being widened) — useful for diagnostics such
        as inconsistent-stack-depth reports."""
        raise NotImplementedError


def solve(problem: DataflowProblem) -> Dict:
    """Round-robin the problem to its fixpoint; return in-states by key.

    Unreached nodes (initial ``None``, never flowed into) keep ``None``.
    """
    nodes = list(problem.nodes())
    in_states: Dict = {problem.key(n): problem.initial(n) for n in nodes}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            state = in_states[problem.key(node)]
            if state is None:
                continue
            out = problem.transfer(node, state)
            for succ, is_back in problem.edges(node):
                flowed = problem.flow(out, node, succ, is_back)
                skey = problem.key(succ)
                existing = in_states.get(skey)
                if existing is None:
                    in_states[skey] = flowed
                    changed = True
                elif problem.merge(existing, flowed, succ):
                    changed = True
    return in_states


class CFGProblem(DataflowProblem):
    """A :class:`DataflowProblem` over an explicit block list.

    Derives iteration order, edges, and back-edge classification from
    the block list and a successor function; ``direction=BACKWARD``
    solves over the reverse graph (predecessor edges, reverse order), so
    a liveness-style analysis needs only a lattice and a transfer.
    Back edges are classified positionally — an edge whose target does
    not come strictly later in the (direction-adjusted) order — which
    for the layout orders the back end emits coincides with loop back
    edges, the same convention :mod:`repro.backend.mir_war` uses.
    """

    def __init__(self, blocks, successors=None, direction: str = FORWARD):
        self.blocks = list(blocks)
        self._successors = successors or (lambda b: b.successors())
        self.direction = direction
        self._forward: Dict[object, List] = {}
        self._index = {self.key(b): i for i, b in enumerate(self.blocks)}
        for block in self.blocks:
            self._forward[self.key(block)] = list(self._successors(block))
        if direction == BACKWARD:
            inverted: Dict[object, List] = {self.key(b): [] for b in self.blocks}
            for block in self.blocks:
                for succ in self._forward[self.key(block)]:
                    inverted[self.key(succ)].append(block)
            self._edges = inverted
            self._order = list(reversed(self.blocks))
        else:
            self._edges = self._forward
            self._order = self.blocks

    def nodes(self):
        return self._order

    def edges(self, node):
        here = self._index[self.key(node)]
        for succ in self._edges[self.key(node)]:
            there = self._index[self.key(succ)]
            if self.direction == BACKWARD:
                yield succ, there >= here
            else:
                yield succ, there <= here
        return


# ---------------------------------------------------------------------------
# lattice helpers
# ---------------------------------------------------------------------------
#
# The two recurring lattices: *flagged-fact maps* (a may-set of facts
# keyed by identity, each carrying an FW/BK flag word that only ever
# widens) and *interval sets* (sorted disjoint half-open byte ranges
# over entry-relative stack coordinates, used both as may-footprints
# and — under intersection — as must-coverage).


def merge_flagged_facts(into: Dict, new: Dict) -> bool:
    """Join two ``key -> (payload, flags)`` may-maps in place."""
    changed = False
    for key, (payload, flags) in new.items():
        old = into.get(key)
        if old is None:
            into[key] = (payload, flags)
            changed = True
        elif old[1] | flags != old[1]:
            into[key] = (payload, old[1] | flags)
            changed = True
    return changed


def intersect_must_set(existing: set, incoming: set) -> bool:
    """Meet two must-sets in place (``existing &= incoming``)."""
    if existing.issubset(incoming):
        return False
    existing.intersection_update(incoming)
    return True


Interval = Tuple[int, int]


def intervals_overlap(a: Interval, b: Interval) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def interval_add(intervals: List[Interval], new: Interval) -> List[Interval]:
    """Union ``new`` into a sorted disjoint interval list."""
    lo, hi = new
    out: List[Interval] = []
    for a, b in intervals:
        if b < lo or a > hi:
            out.append((a, b))
        else:
            lo = min(lo, a)
            hi = max(hi, b)
    out.append((lo, hi))
    out.sort()
    return out


def interval_sub(intervals: List[Interval], cut: Interval) -> List[Interval]:
    """Remove ``cut`` from every interval of the list."""
    lo, hi = cut
    out: List[Interval] = []
    for a, b in intervals:
        if b <= lo or a >= hi:
            out.append((a, b))
            continue
        if a < lo:
            out.append((a, lo))
        if b > hi:
            out.append((hi, b))
    return out


def interval_intersect(xs: List[Interval], ys: List[Interval]) -> List[Interval]:
    out: List[Interval] = []
    for a, b in xs:
        for c, d in ys:
            lo, hi = max(a, c), min(b, d)
            if lo < hi:
                out.append((lo, hi))
    out.sort()
    return out


def interval_covers(intervals: List[Interval], ranges) -> bool:
    """True if every byte of every range lies inside the interval set."""
    for lo, hi in ranges:
        pos = lo
        for a, b in intervals:
            if a <= pos < b:
                pos = b
                if pos >= hi:
                    break
        if pos < hi:
            return False
    return True


__all__ = [
    "FW", "BK", "FORWARD", "BACKWARD",
    "DataflowProblem", "CFGProblem", "solve",
    "merge_flagged_facts", "intersect_must_set",
    "Interval", "intervals_overlap",
    "interval_add", "interval_sub", "interval_intersect", "interval_covers",
]
