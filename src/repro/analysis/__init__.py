"""repro.analysis — CFG, dominance, loop, alias and memory-dependence
analyses (the NOELLE/PDG stand-in that WARio's transformations consume)."""

from .alias import AFFINE, ALIAS_MODES, CONSERVATIVE, PRECISE, AliasAnalysis, PointerInfo
from .cfg import predecessors_map, reachability, reachable_blocks, reverse_postorder
from .dominators import (
    DominatorTree,
    PostDominatorTree,
    dominance_frontiers,
    dominator_tree,
    post_dominator_tree,
)
from .loops import Loop, LoopInfo, find_induction_variables, loop_info
from .memdep import (
    BACKWARD,
    FORWARD,
    WARViolation,
    access_size,
    block_memory_accesses,
    find_wars,
    summary_sets_intersect,
)
from .pointsto import (
    MAX_GEP_DEPTH,
    TopCause,
    compute_points_to,
    report_top_causes,
)
from .redundancy import (
    DEFAULT_ELISION_BUDGET,
    ElisionDecision,
    RedundancyAnalysis,
)
from .static_war import (
    StaticWARError,
    verify_function_war,
    verify_module_war,
)
from .summaries import (
    AndersenPointsTo,
    FunctionSummary,
    SummaryTable,
    compute_summaries,
)

__all__ = [
    "AliasAnalysis", "PointerInfo", "PRECISE", "CONSERVATIVE", "AFFINE",
    "ALIAS_MODES",
    "reverse_postorder", "reachability", "reachable_blocks", "predecessors_map",
    "DominatorTree", "PostDominatorTree", "dominator_tree",
    "post_dominator_tree", "dominance_frontiers",
    "Loop", "LoopInfo", "loop_info", "find_induction_variables",
    "WARViolation", "find_wars", "access_size", "block_memory_accesses",
    "FORWARD", "BACKWARD", "summary_sets_intersect",
    "MAX_GEP_DEPTH", "TopCause", "compute_points_to", "report_top_causes",
    "AndersenPointsTo", "FunctionSummary", "SummaryTable", "compute_summaries",
    "DEFAULT_ELISION_BUDGET", "ElisionDecision", "RedundancyAnalysis",
    "StaticWARError", "verify_function_war", "verify_module_war",
]
