"""Interprocedural mod/ref summaries over an inclusion-based points-to
analysis.

Two layers:

:class:`AndersenPointsTo`
    A whole-program, Andersen-style (inclusion-based) points-to analysis.
    Unlike the lightweight argument map of :mod:`repro.analysis.pointsto`
    it tracks *every* pointer-valued SSA value, follows pointers stored
    into memory, and keeps the heap field-sensitive: the contents of a
    global or alloca are split per constant byte offset (computed with
    the same affine decomposition the alias analysis uses for GEP
    chains), with a ``'*'`` summary field for offsets that are not
    compile-time constants.

:func:`compute_summaries`
    Per-function **mod/ref summaries**: the set of objects (globals,
    allocas) a function may write (``mod``) or read (``ref``), directly
    or through any callee, computed bottom-up over the call graph with a
    Tarjan-SCC fixpoint for recursion.  ``None`` means TOP
    (unanalysable); every degradation to TOP records a
    :class:`~repro.analysis.pointsto.TopCause` in the ``analysis-*``
    diagnostic family.

On top of the summaries sits the **transparency** classification that
unlocks cross-call checkpoint elision (the point of this module): a
function is *transparent* when a region of its caller may safely span a
call to it — no entry checkpoint is forced, calls to it are not barriers
for the WAR dataflow, and the call site instead contributes the
callee's ref set as reads and mod set as writes.  The criterion:

* defined, not ``main``, and not (mutually) recursive;
* mod and ref summaries are bounded (not TOP);
* every call inside it targets a transparent callee;
* it contains no ``Checkpoint`` instructions (this keeps the
  classification stable when recomputed on post-insertion IR: a
  function that needed middle-end checkpoints is a barrier both before
  and after they are materialised);
* its own body is WAR-free under the relaxed call model
  (:func:`repro.analysis.memdep.find_wars` returns nothing).

A function's *external* summary excludes its own non-escaping allocas:
callers cannot name them, and a transparent callee that is well-formed
writes its locals before reading them, so the byte-granular dynamic
checker never sees a first-access read of those slots either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..diagnostics import DiagnosticEngine
from ..ir.instructions import (
    Alloca,
    Call,
    Checkpoint,
    GetElementPtr,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.types import is_pointer
from ..ir.values import Argument, GlobalVariable
from .alias import PRECISE, AliasAnalysis, _affine_index
from .pointsto import MAX_GEP_DEPTH, PointsToMap, TopCause, report_top_causes

#: Field key for "some statically-unknown offset inside the object".
ANY_FIELD = "*"


def _describe(value) -> str:
    name = getattr(value, "name", "")
    return f"'{name}'" if name else f"<{type(value).__name__.lower()}>"


# ---------------------------------------------------------------------------
# Andersen-style inclusion-based points-to
# ---------------------------------------------------------------------------


class AndersenPointsTo:
    """Whole-program inclusion-based points-to with a field-sensitive
    heap.

    ``pts`` maps ``id(value)`` of every pointer-valued SSA value to the
    set of objects it may point into (``None`` = TOP).  ``heap`` maps
    ``(id(object), field)`` — field a constant byte offset or
    :data:`ANY_FIELD` — to the objects a pointer *stored at* that field
    may point into.
    """

    def __init__(self, module):
        self.module = module
        self.pts: Dict[int, Set] = {}
        self.top: Set[int] = set()
        #: (id(object), field) -> set of objects, or None for TOP
        self.heap: Dict[Tuple[int, object], Optional[Set]] = {}
        #: a pointer escaped through a TOP location: every heap read is TOP
        self.heap_top = False
        self.causes: List[TopCause] = []
        self._objects_by_id: Dict[int, object] = {}
        #: objects whose address is stored to memory, returned, or passed
        #: to an external callee; None = everything escapes
        self._escaped: Optional[Set] = set()
        self._solve()

    # -- basic lattice ops ----------------------------------------------
    def pointees(self, value) -> Optional[Set]:
        """Objects ``value`` may point to (``None`` = TOP)."""
        if isinstance(value, (GlobalVariable, Alloca)):
            return {value}
        if value is None:
            return set()
        if id(value) in self.top:
            return None
        return self.pts.get(id(value), set())

    def _flow_into(self, dst, new: Optional[Set]) -> bool:
        """pts(dst) ⊇ new; returns True on growth."""
        did = id(dst)
        if did in self.top:
            return False
        if new is None:
            self.top.add(did)
            return True
        cur = self.pts.setdefault(did, set())
        grew = new - cur
        if grew:
            cur |= grew
            return True
        return False

    def _mark_top(self, dst, code: str, fname: str, detail: str) -> bool:
        if id(dst) in self.top:
            return False
        self.top.add(id(dst))
        self.causes.append(TopCause(code, fname, detail,
                                    getattr(dst, "loc", None)))
        return True

    # -- pointer decomposition ------------------------------------------
    def _decompose(self, ptr, fname: str):
        """Chase ``ptr``'s GEP chain to ``(root, field)``.

        ``field`` is the constant byte offset of the chain when every
        index is affine-constant, else :data:`ANY_FIELD`.  A chain
        deeper than :data:`~repro.analysis.pointsto.MAX_GEP_DEPTH`
        degrades to an unknown root (recorded as a cause).
        """
        offset = 0
        exact = True
        depth = 0
        value = ptr
        while isinstance(value, GetElementPtr):
            depth += 1
            if depth > MAX_GEP_DEPTH:
                self.causes.append(TopCause(
                    "analysis-gep-depth", fname,
                    f"GEP chain rooted at {_describe(ptr)} exceeds depth "
                    f"{MAX_GEP_DEPTH}; the access degrades to TOP",
                    getattr(ptr, "loc", None),
                ))
                return None, ANY_FIELD
            idx = _affine_index(value.index)
            if idx.exact and idx.iv is None:
                offset += idx.const * value.element_size
            else:
                exact = False
            value = value.base
        return value, (offset if exact else ANY_FIELD)

    def objects_of(self, ptr, fname: str = "?") -> Optional[Set]:
        """Objects an access through ``ptr`` may touch (``None`` = TOP)."""
        root, _field = self._decompose(ptr, fname)
        if root is None:
            return None
        return self.pointees(root)

    # -- heap cells ------------------------------------------------------
    def _heap_write(self, obj, fld, new: Optional[Set]) -> bool:
        key = (id(obj), fld)
        self._objects_by_id[id(obj)] = obj
        cur = self.heap.get(key, set())
        if cur is None:
            return False
        if new is None:
            self.heap[key] = None
            return True
        grew = new - cur
        if grew:
            self.heap[key] = cur | grew
            return True
        return False

    def _heap_read(self, obj, fld) -> Optional[Set]:
        if self.heap_top:
            return None
        out: Set = set()
        for (oid, f), cell in self.heap.items():
            if oid != id(obj):
                continue
            if fld == ANY_FIELD or f == ANY_FIELD or f == fld:
                if cell is None:
                    return None
                out |= cell
        return out

    # -- the solver ------------------------------------------------------
    def _solve(self) -> None:
        copies: List[Tuple[object, object]] = []      # (dst, src)
        loads: List[Tuple[object, object, str]] = []  # (dst, ptr, fn)
        stores: List[Tuple[object, object, str]] = [] # (ptr, src, fn)
        rets: Dict[str, List[object]] = {}            # fn name -> ret values

        for function in self.module.defined_functions():
            fname = function.name
            for instr in function.instructions():
                if isinstance(instr, GetElementPtr):
                    copies.append((instr, instr.base))
                elif isinstance(instr, Phi) and is_pointer(instr.type):
                    for value in instr.operands:
                        copies.append((instr, value))
                elif isinstance(instr, Select) and is_pointer(instr.type):
                    copies.append((instr, instr.true_value))
                    copies.append((instr, instr.false_value))
                elif isinstance(instr, Load) and is_pointer(instr.type):
                    loads.append((instr, instr.pointer, fname))
                elif isinstance(instr, Store) and is_pointer(instr.value.type):
                    stores.append((instr.pointer, instr.value, fname))
                elif isinstance(instr, Ret) and instr.value is not None \
                        and is_pointer(instr.value.type):
                    rets.setdefault(fname, []).append(instr.value)
                elif isinstance(instr, Call):
                    callee = instr.callee
                    if callee.is_declaration:
                        for actual in instr.args:
                            if is_pointer(actual.type):
                                self._escaped = None
                                self.causes.append(TopCause(
                                    "analysis-external-call", fname,
                                    f"pointer passed to external function "
                                    f"'{callee.name}'; escape analysis and "
                                    f"the heap degrade to TOP",
                                    getattr(instr, "loc", None),
                                ))
                                self.heap_top = True
                        if is_pointer(instr.type):
                            self._mark_top(
                                instr, "analysis-external-call", fname,
                                f"pointer returned by external function "
                                f"'{callee.name}' is unanalysable (TOP)")
                        continue
                    for param, actual in zip(callee.args, instr.args):
                        if is_pointer(param.type):
                            copies.append((param, actual))
                    if is_pointer(instr.type):
                        copies.append((instr, ("ret", callee.name)))

        # escape roots: pointers stored into memory, returned, or passed
        # to externals (handled above)
        escape_sources = [src for _ptr, src, _f in stores]
        escape_sources.extend(v for vs in rets.values() for v in vs)

        # pre-decompose the access paths once (they are static)
        store_paths = [
            (self._decompose(ptr, f), src, f) for ptr, src, f in stores
        ]
        load_paths = [
            (dst, self._decompose(ptr, f), f) for dst, ptr, f in loads
        ]

        changed = True
        while changed:
            changed = False
            for dst, src in copies:
                if isinstance(src, tuple):  # ("ret", callee name)
                    new: Optional[Set] = set()
                    for value in rets.get(src[1], ()):
                        pointees = self.pointees(value)
                        if pointees is None:
                            new = None
                            break
                        new |= pointees
                else:
                    new = self.pointees(src)
                if self._flow_into(dst, new):
                    changed = True
            for (root, fld), src, fname in store_paths:
                val = self.pointees(src)
                targets = None if root is None else self.pointees(root)
                if targets is None:
                    if not self.heap_top:
                        self.heap_top = True
                        self.causes.append(TopCause(
                            "analysis-heap-store-top", fname,
                            "store of a pointer through an unbounded "
                            "pointer; every heap cell degrades to TOP",
                            None,
                        ))
                        changed = True
                    continue
                for obj in targets:
                    cell_field = fld if root is obj else ANY_FIELD
                    if self._heap_write(obj, cell_field, val):
                        changed = True
            for dst, (root, fld), fname in load_paths:
                targets = None if root is None else self.pointees(root)
                if targets is None or self.heap_top:
                    if self._mark_top(
                        dst, "analysis-unknown-root", fname,
                        f"load of a pointer through an unbounded pointer "
                        f"in '{fname}'; its points-to set degrades to TOP",
                    ):
                        changed = True
                    continue
                new = set()
                for obj in targets:
                    cell = self._heap_read(
                        obj, fld if root is obj else ANY_FIELD)
                    if cell is None:
                        new = None
                        break
                    new |= cell
                if self._flow_into(dst, new):
                    changed = True

        # finalise escapes
        if self._escaped is not None:
            for src in escape_sources:
                pointees = self.pointees(src)
                if pointees is None:
                    self._escaped = None
                    break
                self._escaped |= pointees

    # -- results ---------------------------------------------------------
    def escaped_objects(self) -> Optional[Set]:
        """Objects whose address escapes (``None`` = all of them may)."""
        return self._escaped

    def argument_map(self) -> PointsToMap:
        """The per-argument slice, compatible with
        :class:`~repro.analysis.alias.AliasAnalysis`'s ``points_to``."""
        out: PointsToMap = {}
        for function in self.module.defined_functions():
            for arg in function.args:
                if not is_pointer(arg.type):
                    continue
                if id(arg) in self.top:
                    out[id(arg)] = None
                else:
                    out[id(arg)] = frozenset(self.pts.get(id(arg), set()))
        return out


# ---------------------------------------------------------------------------
# mod/ref summaries
# ---------------------------------------------------------------------------


@dataclass
class FunctionSummary:
    """Objects a function may write/read, transitively.  ``None`` = TOP."""

    name: str
    mod: Optional[FrozenSet] = frozenset()
    ref: Optional[FrozenSet] = frozenset()
    recursive: bool = False
    top_causes: Tuple[str, ...] = ()

    @property
    def pure(self) -> bool:
        """Touches no memory at all (LLVM ``readnone``)."""
        return self.mod == frozenset() and self.ref == frozenset()

    @property
    def read_only(self) -> bool:
        """Writes no memory (LLVM ``readonly``)."""
        return self.mod == frozenset()


class SummaryTable:
    """All per-function summaries plus the transparency classification.

    ``transparent`` holds the names of functions a caller's idempotent
    region may span: no forced entry checkpoint, calls to them are not
    dataflow barriers, and the call site contributes the callee's
    ``ref``/``mod`` sets as reads/writes.
    """

    def __init__(self, module, alias_mode: str,
                 functions: Dict[str, FunctionSummary],
                 arg_points_to: PointsToMap,
                 causes: List[TopCause],
                 points_to: AndersenPointsTo):
        self.module = module
        self.alias_mode = alias_mode
        self.functions = functions
        self.transparent: Set[str] = set()
        self.arg_points_to = arg_points_to
        self.causes = causes
        self.points_to = points_to

    def summary(self, name: str) -> Optional[FunctionSummary]:
        return self.functions.get(name)

    def is_transparent_call(self, call: Call) -> bool:
        callee = call.callee
        return (not callee.is_declaration) and callee.name in self.transparent

    def call_mod(self, call: Call) -> Optional[FrozenSet]:
        summary = self.functions.get(call.callee.name)
        return None if summary is None else summary.mod

    def call_ref(self, call: Call) -> Optional[FrozenSet]:
        summary = self.functions.get(call.callee.name)
        return None if summary is None else summary.ref

    def transparent_names(self) -> Set[str]:
        return set(self.transparent)


def _call_graph_sccs(module) -> List[List]:
    """SCCs of the defined-function call graph, callees before callers
    (Tarjan emits them in reverse topological order)."""
    functions = list(module.defined_functions())
    edges: Dict[int, List] = {}
    for fn in functions:
        callees = []
        seen = set()
        for instr in fn.instructions():
            if isinstance(instr, Call) and not instr.callee.is_declaration:
                if id(instr.callee) not in seen:
                    seen.add(id(instr.callee))
                    callees.append(instr.callee)
        edges[id(fn)] = callees

    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List = []
    sccs: List[List] = []
    counter = [0]

    def strongconnect(root) -> None:
        # iterative Tarjan: (node, iterator over callees)
        work = [(root, iter(edges[id(root)]))]
        index[id(root)] = lowlink[id(root)] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(id(root))
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if id(succ) not in index:
                    index[id(succ)] = lowlink[id(succ)] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(id(succ))
                    work.append((succ, iter(edges[id(succ)])))
                    advanced = True
                    break
                if id(succ) in on_stack:
                    lowlink[id(node)] = min(lowlink[id(node)], index[id(succ)])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[id(parent)] = min(lowlink[id(parent)],
                                          lowlink[id(node)])
            if lowlink[id(node)] == index[id(node)]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    scc.append(member)
                    if member is node:
                        break
                sccs.append(scc)

    for fn in functions:
        if id(fn) not in index:
            strongconnect(fn)
    return sccs


def _calls_self(fn) -> bool:
    return any(
        isinstance(i, Call) and i.callee is fn for i in fn.instructions()
    )


def _summarize(fn, pt: AndersenPointsTo,
               functions: Dict[str, FunctionSummary],
               recursive: bool) -> FunctionSummary:
    """One bottom-up step: direct accesses plus folded callee summaries."""
    mod: Optional[Set] = set()
    ref: Optional[Set] = set()
    causes: List[str] = []

    def widen(current: Optional[Set], objs: Optional[Set], why: str):
        if current is None:
            return None
        if objs is None:
            causes.append(why)
            return None
        return current | objs

    for instr in fn.instructions():
        if isinstance(instr, Load):
            objs = pt.objects_of(instr.pointer, fn.name)
            ref = widen(ref, objs,
                        f"load through an unbounded pointer in '{fn.name}'")
        elif isinstance(instr, Store):
            objs = pt.objects_of(instr.pointer, fn.name)
            mod = widen(mod, objs,
                        f"store through an unbounded pointer in '{fn.name}'")
        elif isinstance(instr, Call):
            if instr.callee.is_declaration:
                causes.append(
                    f"call to external function '{instr.callee.name}'")
                mod = ref = None
                continue
            callee = functions.get(instr.callee.name)
            if callee is None:
                continue  # forward edge into an unprocessed SCC member
            mod = widen(mod, None if callee.mod is None else set(callee.mod),
                        f"callee '{instr.callee.name}' has TOP mod")
            ref = widen(ref, None if callee.ref is None else set(callee.ref),
                        f"callee '{instr.callee.name}' has TOP ref")
    return FunctionSummary(
        fn.name,
        None if mod is None else frozenset(mod),
        None if ref is None else frozenset(ref),
        recursive=recursive,
        top_causes=tuple(causes),
    )


def _externalize(summary: FunctionSummary, fn,
                 escaped: Optional[Set]) -> FunctionSummary:
    """Drop the function's own non-escaping allocas from its summary —
    callers cannot name them, and each activation writes them before any
    read (a read-before-write of an own local would have kept the
    function out of the transparent set via its own WAR check)."""
    if summary.mod is None and summary.ref is None:
        return summary
    own = {id(i) for i in fn.instructions() if isinstance(i, Alloca)}
    if not own:
        return summary

    def filtered(objs: Optional[FrozenSet]) -> Optional[FrozenSet]:
        if objs is None:
            return None
        return frozenset(
            o for o in objs
            if not (id(o) in own
                    and (escaped is not None and o not in escaped))
        )

    return FunctionSummary(
        summary.name, filtered(summary.mod), filtered(summary.ref),
        recursive=summary.recursive, top_causes=summary.top_causes,
    )


def compute_summaries(
    module,
    alias_mode: str = PRECISE,
    engine: Optional[DiagnosticEngine] = None,
) -> SummaryTable:
    """Compute mod/ref summaries and the transparency classification.

    ``engine`` (optional) receives warning-level ``analysis-*``
    diagnostics for every recorded precision loss.
    """
    from .loops import loop_info
    from .memdep import find_wars

    pt = AndersenPointsTo(module)
    arg_points_to = pt.argument_map()
    escaped = pt.escaped_objects()
    sccs = _call_graph_sccs(module)

    functions: Dict[str, FunctionSummary] = {}
    for scc in sccs:
        recursive = len(scc) > 1 or _calls_self(scc[0])
        for fn in scc:
            functions[fn.name] = FunctionSummary(
                fn.name, frozenset(), frozenset(), recursive=recursive)
        changed = True
        while changed:
            changed = False
            for fn in scc:
                new = _summarize(fn, pt, functions, recursive)
                old = functions[fn.name]
                if (new.mod, new.ref, new.top_causes) != (
                        old.mod, old.ref, old.top_causes):
                    functions[fn.name] = new
                    changed = True
        # externalize before any caller SCC folds these summaries
        for fn in scc:
            functions[fn.name] = _externalize(functions[fn.name], fn, escaped)

    table = SummaryTable(module, alias_mode, functions, arg_points_to,
                         list(pt.causes), pt)

    # transparency, bottom-up (callee classification is final before any
    # caller is examined)
    for scc in sccs:
        if len(scc) > 1:
            continue
        fn = scc[0]
        if fn.name == "main" or _calls_self(fn):
            continue
        summary = functions[fn.name]
        if summary.mod is None or summary.ref is None:
            continue
        if any(isinstance(i, Checkpoint) for i in fn.instructions()):
            continue
        calls = [i for i in fn.instructions() if isinstance(i, Call)]
        if any(not table.is_transparent_call(c) for c in calls):
            continue
        aa = AliasAnalysis(fn, alias_mode, points_to=arg_points_to)
        if find_wars(fn, aa, loop_info(fn), calls_are_checkpoints=True,
                     summaries=table):
            continue
        table.transparent.add(fn.name)

    report_top_causes(table.causes, engine)
    return table


__all__ = [
    "ANY_FIELD",
    "AndersenPointsTo",
    "FunctionSummary",
    "SummaryTable",
    "compute_summaries",
]
