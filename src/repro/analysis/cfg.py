"""CFG traversal orders and reachability over IR functions."""

from __future__ import annotations

from typing import Dict, List, Set


def reverse_postorder(function) -> List:
    """Blocks in reverse postorder from the entry (unreachable blocks last)."""
    visited: Set[int] = set()
    order: List = []

    def dfs(block):
        visited.add(id(block))
        for succ in block.successors:
            if id(succ) not in visited:
                dfs(succ)
        order.append(block)

    dfs(function.entry)
    rpo = list(reversed(order))
    for block in function.blocks:
        if id(block) not in visited:
            rpo.append(block)
    return rpo


def reachable_blocks(function) -> Set[int]:
    """Ids of blocks reachable from entry."""
    seen: Set[int] = set()
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        stack.extend(block.successors)
    return seen


def reachability(function) -> Dict[int, Set[int]]:
    """For each block id, the set of block ids reachable via >= 1 edge.

    O(V * E) DFS per block; functions here are small enough for that.
    """
    result: Dict[int, Set[int]] = {}
    for block in function.blocks:
        seen: Set[int] = set()
        stack = list(block.successors)
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.successors)
        result[id(block)] = seen
    return result


def predecessors_map(function) -> Dict[int, List]:
    """Map block id -> predecessor blocks, computed in one pass."""
    preds: Dict[int, List] = {id(b): [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors:
            preds[id(succ)].append(block)
    return preds
