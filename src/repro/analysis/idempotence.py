"""The static idempotence certifier: per-region re-execution proofs.

WAR-freedom is a *proxy* for the property intermittent execution
actually needs — Surbatovich et al.'s observation is that a
checkpoint-delimited region must be **memory-idempotent**: re-executing
it from its checkpoint after a power failure must observe exactly the
values the first execution observed, so that the second execution
recomputes the same results.  The first execution can only break this by
*clobbering* a location it (or an interrupt, or a callee) later re-reads
— which is why WAR-freedom implies idempotence, but only once every way
a region's inputs can be overwritten has been enumerated.

This module certifies the full property per region by abstract
re-execution over both IR levels, on the shared dataflow engine
(:mod:`repro.analysis.dataflow`).  Conceptually each region's abstract
store is executed twice; the certifier discharges, per region, one
*proof obligation* for every way execution two could observe a value
execution one wrote:

``region-reexecution`` (IR level)
    No abstract location is read before being overwritten inside the
    region — the exposed-load dataflow of
    :mod:`repro.analysis.static_war`, whose facts are exactly the
    locations execution two would re-read and whose flagged stores are
    exactly the clobbers execution one performs.

``exposed-release`` / ``masked-release`` (machine level)
    An upward sp adjustment publishes stack bytes to interrupt stacking
    and callees; if re-execution still reads those bytes the release
    must either happen after the region's final checkpoint, or inside an
    interrupt-masked window that commits (checkpoints) before
    re-enabling interrupts — WARio's Epilog Optimizer contract.

``masked-window`` (machine level)
    A masked window that released exposed bytes must reach its
    checkpoint before ``cpsie`` (and no store may touch the released
    bytes in between).

``cross-call`` (machine level)
    A transparent callee's mod/ref summary (PR 2) is re-played at the
    call site: its reads of the caller's frame become exposed facts the
    release rule must respect — the one hazard neither WAR verifier can
    see, because the callee reads the caller's slot through a pointer
    argument and the caller's ``bl`` is opaque to byte-level analysis.

``entry-barrier`` (machine level)
    Every instrumented, non-transparent function begins with its entry
    checkpoint — the structural fact that lets callers treat ``bl`` as
    a region boundary.

Each function gets a machine-checkable JSON *certificate* listing every
obligation with its discharging fact or violation; undischarged
obligations are also emitted as ``idempotence-*`` diagnostics at the
``certify`` level.  The fault-injection campaign
(:mod:`repro.faultinject.differential`) is the certifier's soundness
oracle: a statically certified cell must never diverge dynamically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..diagnostics import (
    ERROR,
    LEVEL_CERTIFY,
    Diagnostic,
    DiagnosticEngine,
)
from ..ir.instructions import Call, Load
from ..ir.values import GlobalVariable
from .alias import PRECISE, AliasAnalysis
from .dataflow import FW, interval_covers, solve
from .loops import loop_info
from .memdep import BACKWARD, FORWARD
from .static_war import (
    _FunctionWARAnalysis,
    describe_access,
    region_labels,
)

#: Verdicts a certificate can carry.
CERTIFIED = "certified"
VIOLATED = "violated"


def _where(instr) -> str:
    loc = getattr(instr, "loc", None)
    if loc is not None and loc.known:
        return str(loc)
    block = getattr(instr, "parent", None)
    return getattr(block, "name", "") or "<unknown>"


def _obligation(kind: str, region: str, at: str, detail: str,
                discharged_by: Optional[str] = None,
                violation: Optional[str] = None) -> Dict[str, object]:
    return {
        "kind": kind,
        "region": region,
        "at": at,
        "detail": detail,
        "status": VIOLATED if violation is not None else "discharged",
        "discharged_by": discharged_by,
        "violation": violation,
    }


# ---------------------------------------------------------------------------
# IR level: per-region abstract re-execution
# ---------------------------------------------------------------------------


class _CapturingReporter:
    """Drives :class:`static_war._FunctionWARAnalysis`'s reporting pass,
    but instead of ``war-*`` diagnostics it records clobbered-read
    events per region and emits ``idempotence-war`` findings."""

    def __init__(self, engine: DiagnosticEngine, function, aa, labels):
        self.engine = engine
        self.function = function
        self.aa = aa
        self.labels = labels
        self.seen: Set = set()
        #: region label -> violation detail strings
        self.violations: Dict[str, List[str]] = {}

    def _region_of(self, instr) -> str:
        block = getattr(instr, "parent", None)
        if block is None:
            return "entry"
        return self.labels.get(id(block), "entry")

    def _describe(self, instr) -> str:
        if isinstance(instr, Call):
            return f"call to '{instr.callee.name}'"
        return describe_access(instr, self.aa)

    def _record(self, region: str, detail: str, load, store) -> None:
        self.violations.setdefault(region, []).append(detail)
        self.engine.emit(Diagnostic(
            severity=ERROR,
            code="idempotence-war",
            message=(
                f"region '{region}' is not idempotent: {detail}; "
                f"re-execution from the region's checkpoint would observe "
                f"the clobbered value"
            ),
            function=self.function.name,
            region=region,
            level=LEVEL_CERTIFY,
            loc=getattr(store, "loc", None),
            related=[(
                "the clobbered location is first read here",
                getattr(load, "loc", None),
            )],
        ))

    # -- the reporter interface static_war's reporting pass drives -------
    def war(self, load, flags: int, store, kind: str) -> None:
        key = (id(load), id(store))
        if key in self.seen:
            return
        self.seen.add(key)
        region = self._region_of(load)
        if kind == "call":
            detail = (
                f"a store to {self._describe(store)} follows "
                f"{self._describe(load)} whose callee may already have "
                f"read the location"
            )
        else:
            when = {
                FORWARD: "earlier in the region",
                BACKWARD: "in an earlier iteration of the region",
            }[kind]
            detail = (
                f"{self._describe(store)} overwrites a location first "
                f"read by {self._describe(load)} {when}"
            )
        self._record(region, detail, load, store)

    def call_in_region(self, call, block, idx, state) -> None:
        key = ("call", id(call))
        if key in self.seen:
            return
        self.seen.add(key)
        sample = next(iter(state.values()))[0]
        region = self._region_of(sample)
        self._record(
            region,
            f"call to '{call.callee.name}' may overwrite locations already "
            f"read in the region (no barrier model covers it)",
            sample if isinstance(sample, Load) else call,
            call,
        )


def _certify_ir_function(function, aa, summaries,
                         engine: DiagnosticEngine) -> List[Dict[str, object]]:
    """Abstract re-execution of every region of one IR function; one
    ``region-reexecution`` obligation per region."""
    analysis = _FunctionWARAnalysis(
        function, aa, loop_info(function), True, summaries
    )
    analysis.run()
    labels = region_labels(function, True, summaries)
    reporter = _CapturingReporter(engine, function, aa, labels)
    analysis.report(reporter)

    # Regions in block-layout order, deduplicated.
    regions: List[str] = []
    for block in function.blocks:
        label = labels.get(id(block), "entry")
        if label not in regions:
            regions.append(label)
    obligations = []
    for region in regions:
        found = reporter.violations.get(region)
        if found:
            for detail in found:
                obligations.append(_obligation(
                    "region-reexecution", region, region, detail,
                    violation=detail,
                ))
        else:
            obligations.append(_obligation(
                "region-reexecution", region, region,
                "no abstract location is read before being overwritten "
                "inside the region",
                discharged_by="exposed-load dataflow reached a fixpoint "
                              "with no clobbered read",
            ))
    return obligations


# ---------------------------------------------------------------------------
# machine level: release windows and cross-call effects
# ---------------------------------------------------------------------------


def _machine_certifier_class():
    """The machine-level region certifier, built lazily to keep
    ``repro.analysis`` importable without the backend package."""
    from ..backend.mir_war import _Fact, _MIRWARAnalysis

    class _MachineRegionCertifier(_MIRWARAnalysis):
        """Extends the machine WAR dataflow with transparent-callee
        mod/ref effects and proof-obligation recording.  Inherits the
        exact transfer semantics of :mod:`repro.backend.mir_war`; emits
        ``idempotence-*`` diagnostics instead of ``mir-war-*``."""

        def __init__(self, mfn, aa, engine, transparent_callees, summaries):
            super().__init__(
                mfn, aa, True, engine,
                transparent_callees=transparent_callees,
            )
            self.summaries = summaries
            self.obligations: List[Dict[str, object]] = []
            self._block = None

        # -- plumbing ---------------------------------------------------
        def _transfer(self, block, state, report):
            self._block = block
            return super()._transfer(block, state, report)

        def _region(self) -> str:
            return self._block.name if self._block is not None else ""

        def _record(self, kind: str, at, detail: str,
                    discharged_by=None, violation=None) -> None:
            self.obligations.append(_obligation(
                kind, self._region(), _where(at), detail,
                discharged_by=discharged_by, violation=violation,
            ))

        def _emit(self, code: str, message: str, instr, related) -> None:
            self.engine.emit(Diagnostic(
                severity=ERROR,
                code=code,
                message=message,
                function=self.mfn.name,
                region=self._region(),
                level=LEVEL_CERTIFY,
                loc=instr.loc,
                related=related,
            ))

        # -- cross-call effects (the mir_war blind spot) ----------------
        def _callee_frame_ranges(self, name: str, want_mod: bool):
            """Caller-frame byte ranges the callee's summary may touch."""
            if self.summaries is None:
                return []
            summary = self.summaries.summary(name)
            if summary is None:
                return []
            objs = summary.mod if want_mod else summary.ref
            if objs is None:
                # TOP summaries never classify transparent; conservative.
                return list(self.addr_taken)
            ranges = []
            for obj in objs:
                if isinstance(obj, GlobalVariable):
                    continue
                slot = self.slot_for_alloca.get(id(obj))
                if slot is not None:
                    ranges.append(self._slot_range(slot, self.frame_delta))
            return ranges

        def _at_call(self, instr, state, report, barrier):
            if barrier:
                if report:
                    self._record(
                        "call-barrier", instr,
                        f"the region ends at the call to '{instr.ops[0]}'",
                        discharged_by=(
                            f"callee '{instr.ops[0]}' carries an entry "
                            f"checkpoint (entry-barrier obligation)"
                        ),
                    )
                return
            name = instr.ops[0]
            ref = self._callee_frame_ranges(name, want_mod=False)
            mod = self._callee_frame_ranges(name, want_mod=True)
            if report:
                for fact in state.facts.values():
                    if fact.is_ir:
                        continue  # ir-ir pairs are the IR level's job
                    if mod and fact.overlaps(mod):
                        detail = (
                            f"transparent callee '{name}' may overwrite "
                            f"caller stack bytes first read by {fact.what} "
                            f"in the open region"
                        )
                        self._record("cross-call", instr, detail,
                                     violation=detail)
                        self._emit(
                            "idempotence-war",
                            detail + "; re-execution would observe the "
                                     "callee's value",
                            instr,
                            [(f"first read here by '{fact.instr.opcode}'",
                              fact.instr.loc)],
                        )
            if ref and not interval_covers(state.covered, ref):
                # The callee reads our frame inside the still-open
                # region: those bytes join the exposed-read set that the
                # release rule protects.
                old = state.facts.get(id(instr))
                flags = (old.flags if old else 0) | FW
                state.facts[id(instr)] = _Fact(
                    instr, ref, flags, True,
                    f"the transparent callee '{name}'",
                )
                if report:
                    self._record(
                        "cross-call", instr,
                        f"transparent callee '{name}' reads caller stack "
                        f"bytes {ref} inside the open region",
                        discharged_by=(
                            "the reads join the exposed set; every later "
                            "release of these bytes must discharge them"
                        ),
                    )
            elif report:
                self._record(
                    "cross-call", instr,
                    f"transparent callee '{name}' touches no exposed "
                    f"caller stack bytes",
                    discharged_by="mod/ref summary is disjoint from the "
                                  "caller's live frame reads",
                )

        # -- release-window obligations ---------------------------------
        def _at_checkpoint(self, instr, state, report):
            if not report:
                return
            for released, fact in state.pending:
                self._record(
                    "masked-release", instr,
                    f"stack bytes [{released[0]}, {released[1]}) were "
                    f"released under masked interrupts while read by "
                    f"{fact.what}",
                    discharged_by=(
                        "a checkpoint commits the region before "
                        "interrupts re-enable (WARio epilogue contract)"
                    ),
                )

        def _check_store(self, instr, ranges, is_ir, state):
            for fact in state.facts.values():
                if is_ir and fact.is_ir:
                    continue  # delegated to the IR-level re-execution
                if not fact.overlaps(ranges):
                    continue
                key = (id(fact.instr), id(instr))
                if key in self.seen:
                    continue
                self.seen.add(key)
                detail = (
                    f"'{instr.opcode}' overwrites stack bytes first read "
                    f"by {fact.what} in the same region"
                )
                self._record("region-reexecution", instr, detail,
                             violation=detail)
                self._emit(
                    "idempotence-war",
                    detail + "; re-execution would observe the new value",
                    instr,
                    [(f"first read here by '{fact.instr.opcode}'",
                      fact.instr.loc)],
                )

        def _report_release(self, instr, released, fact):
            key = ("release", id(fact.instr), id(instr))
            if key in self.seen:
                return
            self.seen.add(key)
            if instr.opcode == "cpsie":
                detail = (
                    f"the masked window re-enables interrupts before a "
                    f"checkpoint commits the release of bytes "
                    f"[{released[0]}, {released[1]}) still read by "
                    f"{fact.what}"
                )
                code = "idempotence-unmasked-window"
                kind = "masked-window"
            else:
                detail = (
                    f"'{instr.opcode}' publishes stack bytes "
                    f"[{released[0]}, {released[1]}) still read by "
                    f"{fact.what} in the open region; interrupt stacking "
                    f"or a callee may clobber them before re-execution"
                )
                code = "idempotence-exposed-release"
                kind = "exposed-release"
            self._record(kind, instr, detail, violation=detail)
            self._emit(
                code, detail, instr,
                [(f"read here by '{fact.instr.opcode}'", fact.instr.loc)],
            )

        # -- driver (no structural re-reporting: mir_war owns those) ----
        def run(self):
            if not self.mfn.blocks:
                return
            in_states = solve(self)
            for block in self.mfn.blocks:
                state = in_states[block.name]
                if state is None:
                    continue
                self._transfer(block, state.copy(), report=True)

    return _MachineRegionCertifier


def _entry_barrier_obligation(mfn, transparent: Set[str],
                              engine: DiagnosticEngine) -> Dict[str, object]:
    """The structural fact callers rely on: a non-transparent function
    checkpoints before touching any state."""
    first = None
    for instr in mfn.instructions():
        first = instr
        break
    at = mfn.blocks[0].name if mfn.blocks else "<empty>"
    detail = (
        f"callers treat 'bl {mfn.name}' as a region boundary; "
        f"'{mfn.name}' must checkpoint at entry"
    )
    if first is not None and first.opcode == "checkpoint":
        return _obligation(
            "entry-barrier", "entry", at, detail,
            discharged_by="the prologue begins with the entry checkpoint",
        )
    violation = (
        f"'{mfn.name}' does not begin with an entry checkpoint, but "
        f"instrumented callers assume every call is a region boundary"
    )
    engine.emit(Diagnostic(
        severity=ERROR,
        code="idempotence-entry-barrier",
        message=violation,
        function=mfn.name,
        region="entry",
        level=LEVEL_CERTIFY,
        loc=first.loc if first is not None else None,
    ))
    return _obligation("entry-barrier", "entry", at, detail,
                       violation=violation)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def certify_module_idempotence(
    ir_module,
    mmodule,
    alias_mode: str = PRECISE,
    summaries=None,
    engine: Optional[DiagnosticEngine] = None,
) -> Tuple[DiagnosticEngine, List[Dict[str, object]]]:
    """Certify per-region idempotence of an instrumented module.

    Runs the IR-level abstract re-execution over every function of
    ``ir_module`` and the machine-level release/cross-call analysis over
    every function of ``mmodule`` (the same module after lowering).
    Returns ``(engine, certificates)`` — one certificate dict per
    function, in module order, each carrying its proof obligations.
    Only meaningful for instrumented configurations (the analysis model
    assumes checkpoints delimit regions).
    """
    if engine is None:
        engine = DiagnosticEngine()
    if summaries is not None:
        points_to = summaries.arg_points_to
        transparent = summaries.transparent_names()
    else:
        from .pointsto import compute_points_to

        points_to = compute_points_to(ir_module)
        transparent = set()

    machine_cls = _machine_certifier_class()
    certificates: List[Dict[str, object]] = []
    for function in ir_module.defined_functions():
        before = len(engine.diagnostics)
        aa = AliasAnalysis(function, alias_mode, points_to=points_to)
        obligations = _certify_ir_function(function, aa, summaries, engine)

        mfn = mmodule.functions.get(function.name) if mmodule else None
        if mfn is not None:
            if function.name != "main" and function.name not in transparent:
                obligations.append(
                    _entry_barrier_obligation(mfn, transparent, engine)
                )
            certifier = machine_cls(mfn, aa, engine, transparent, summaries)
            certifier.run()
            obligations.extend(certifier.obligations)

        violated = [o for o in obligations if o["status"] == VIOLATED]
        certificates.append({
            "function": function.name,
            "verdict": VIOLATED if violated else CERTIFIED,
            "obligations": obligations,
            "diagnostics": len(engine.diagnostics) - before,
        })
    return engine, certificates


def certificates_verdict(certificates: List[Dict[str, object]]) -> str:
    return (
        CERTIFIED
        if all(c["verdict"] == CERTIFIED for c in certificates)
        else VIOLATED
    )


__all__ = [
    "CERTIFIED", "VIOLATED",
    "certify_module_idempotence", "certificates_verdict",
]
