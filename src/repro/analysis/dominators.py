"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy) plus
dominance frontiers, over the IR CFG."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import predecessors_map, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree with O(depth) ``dominates`` queries."""

    def __init__(self, idom: Dict[int, object], root, blocks: List):
        self._idom = idom  # id(block) -> idom block (root maps to itself)
        self.root = root
        self.blocks = blocks
        self._children: Dict[int, List] = {id(b): [] for b in blocks}
        for block in blocks:
            parent = idom.get(id(block))
            if parent is not None and parent is not block:
                self._children[id(parent)].append(block)
        self._depth: Dict[int, int] = {}
        self._compute_depths()

    def _compute_depths(self):
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            self._depth[id(node)] = d
            for child in self._children[id(node)]:
                stack.append((child, d + 1))

    def idom(self, block) -> Optional[object]:
        parent = self._idom.get(id(block))
        return None if parent is block else parent

    def children(self, block) -> List:
        return self._children.get(id(block), [])

    def dominates(self, a, b) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node = b
        depth_a = self._depth.get(id(a))
        if depth_a is None or id(b) not in self._depth:
            return False
        while node is not None and self._depth[id(node)] >= depth_a:
            if node is a:
                return True
            parent = self._idom.get(id(node))
            node = None if parent is node else parent
        return False

    def strictly_dominates(self, a, b) -> bool:
        return a is not b and self.dominates(a, b)

    def preorder(self) -> List:
        out, stack = [], [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(self._children[id(node)]))
        return out


def _chk_idoms(nodes: List, entry, preds_of) -> Dict[int, object]:
    """Cooper-Harvey-Kennedy iterative idom computation.

    ``nodes`` must be in reverse postorder starting at ``entry``;
    unreachable nodes are skipped.
    """
    rpo_index = {id(b): i for i, b in enumerate(nodes)}
    idom: Dict[int, object] = {id(entry): entry}

    def intersect(a, b):
        while a is not b:
            while rpo_index[id(a)] > rpo_index[id(b)]:
                a = idom[id(a)]
            while rpo_index[id(b)] > rpo_index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in nodes:
            if block is entry:
                continue
            new_idom = None
            for pred in preds_of(block):
                if id(pred) not in rpo_index:
                    continue  # unreachable predecessor
                if id(pred) in idom:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is None:
                continue
            if idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True
    return idom


def dominator_tree(function) -> DominatorTree:
    rpo = reverse_postorder(function)
    preds = predecessors_map(function)
    reachable = {id(b) for b in rpo}
    # reverse_postorder appends unreachable blocks at the end; drop them.
    seen: Set[int] = set()
    stack = [function.entry]
    while stack:
        b = stack.pop()
        if id(b) in seen:
            continue
        seen.add(id(b))
        stack.extend(b.successors)
    rpo = [b for b in rpo if id(b) in seen]
    idom = _chk_idoms(rpo, function.entry, lambda b: preds[id(b)])
    return DominatorTree(idom, function.entry, rpo)


class PostDominatorTree:
    """Post-dominator relation, handling multiple exit blocks through a
    virtual sink that every ``ret``-terminated block edges to."""

    def __init__(self, function):
        exits = [b for b in function.blocks if not b.successors]
        self._sink = object()
        succ_map: Dict[int, List] = {}
        for block in function.blocks:
            succs = list(block.successors)
            if not succs:
                succs = [self._sink]
            succ_map[id(block)] = succs
        pred_map: Dict[int, List] = {id(b): [] for b in function.blocks}
        pred_map[id(self._sink)] = list(exits)
        for block in function.blocks:
            for succ in block.successors:
                pred_map[id(succ)].append(block)

        # Reverse postorder on the reversed CFG, rooted at the sink.
        order: List = []
        visited: Set[int] = set()

        def dfs(node):
            visited.add(id(node))
            for nxt in pred_map[id(node)]:
                if id(nxt) not in visited:
                    dfs(nxt)
            order.append(node)

        dfs(self._sink)
        rpo = list(reversed(order))
        idom = _chk_idoms(rpo, self._sink, lambda n: succ_map.get(id(n), []))
        self._idom = idom
        self._rpo = rpo
        self._depth: Dict[int, int] = {id(self._sink): 0}
        children: Dict[int, List] = {id(n): [] for n in rpo}
        for node in rpo:
            parent = idom.get(id(node))
            if parent is not None and parent is not node:
                children[id(parent)].append(node)
        stack = [(self._sink, 0)]
        while stack:
            node, d = stack.pop()
            self._depth[id(node)] = d
            for child in children[id(node)]:
                stack.append((child, d + 1))

    def post_dominates(self, a, b) -> bool:
        """True if every path from ``b`` to function exit passes ``a``."""
        if id(a) not in self._depth or id(b) not in self._depth:
            return False
        node = b
        depth_a = self._depth[id(a)]
        while node is not None and self._depth.get(id(node), -1) >= depth_a:
            if node is a:
                return True
            parent = self._idom.get(id(node))
            node = None if parent is node else parent
        return False


def post_dominator_tree(function) -> PostDominatorTree:
    return PostDominatorTree(function)


def dominance_frontiers(function, domtree: Optional[DominatorTree] = None) -> Dict[int, Set]:
    """Cytron et al. dominance frontiers: id(block) -> set of blocks."""
    domtree = domtree or dominator_tree(function)
    preds = predecessors_map(function)
    frontiers: Dict[int, Set] = {id(b): set() for b in function.blocks}
    for block in domtree.blocks:
        block_preds = [p for p in preds[id(block)] if id(p) in {id(x) for x in domtree.blocks}]
        if len(block_preds) < 2:
            continue
        for pred in block_preds:
            runner = pred
            while runner is not None and runner is not domtree.idom(block):
                frontiers[id(runner)].add(block)
                runner = domtree.idom(runner)
                if runner is None:
                    break
    return frontiers
