"""Whole-program points-to sets for pointer arguments.

NOELLE computes its PDG over the *linked whole-program* IR, so a callee's
pointer parameter carries the set of objects its callers actually pass.
Ratchet's built-in alias analysis is function-local: a pointer parameter
may alias anything.  This module supplies that whole-program slice: a
fixpoint over the call graph mapping every pointer argument to the set of
named objects (globals / allocas) it can point into — or ``None`` (TOP)
when something unanalysable flows in.

Losing a set to TOP is a *precision* event, not an error — but a silent
one used to be impossible to debug.  Every place a set degrades now
records a :class:`TopCause`, rendered as warning-level diagnostics in
the ``analysis-*`` code family (``python -m repro analyze`` surfaces
them; see also :mod:`repro.analysis.summaries`, which reuses the same
cause channel for its inclusion-based engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..diagnostics import Diagnostic, DiagnosticEngine, LEVEL_IR, WARNING
from ..ir.instructions import Alloca, Call, GetElementPtr
from ..ir.types import is_pointer
from ..ir.values import Argument, GlobalVariable

#: id(Argument) -> frozenset of base objects, or None for TOP.
PointsToMap = Dict[int, Optional[FrozenSet]]

#: Longest GEP chain the root chase follows before giving up.
MAX_GEP_DEPTH = 64


@dataclass
class TopCause:
    """Why a points-to set (or a mod/ref summary) degraded to TOP."""

    code: str          # diagnostic code, ``analysis-*`` family
    function: str      # function the degradation happened in
    detail: str        # human-readable explanation
    loc: object = None  # Optional[SourceLoc]

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            severity=WARNING,
            code=self.code,
            message=self.detail,
            function=self.function,
            level=LEVEL_IR,
            loc=self.loc,
        )


def report_top_causes(
    causes: List[TopCause], engine: Optional[DiagnosticEngine]
) -> None:
    """Emit every recorded precision-loss cause as a warning diagnostic,
    deduplicated by (code, function, detail)."""
    if engine is None:
        return
    seen = set()
    for cause in causes:
        key = (cause.code, cause.function, cause.detail)
        if key in seen:
            continue
        seen.add(key)
        engine.emit(cause.to_diagnostic())


def _describe_value(value) -> str:
    name = getattr(value, "name", "")
    return f"'{name}'" if name else f"<{type(value).__name__.lower()}>"


def _root_of(value, causes: Optional[List[TopCause]] = None,
             function: str = "?"):
    """Chase a pointer expression to its root: a named object, an
    argument, or None (unanalysable).  When ``causes`` is given, every
    None outcome records why the chase failed."""
    original = value
    seen = 0
    while isinstance(value, GetElementPtr):
        value = value.base
        seen += 1
        if seen > MAX_GEP_DEPTH:
            if causes is not None:
                causes.append(TopCause(
                    "analysis-gep-depth", function,
                    f"GEP chain rooted at {_describe_value(original)} exceeds "
                    f"depth {MAX_GEP_DEPTH}; its points-to set degrades to TOP",
                    getattr(original, "loc", None),
                ))
            return None
    if isinstance(value, (GlobalVariable, Alloca, Argument)):
        return value
    if causes is not None:
        causes.append(TopCause(
            "analysis-unknown-root", function,
            f"pointer expression rooted at {_describe_value(value)} "
            f"({type(value).__name__}) is not a named object; its "
            f"points-to set degrades to TOP",
            getattr(original, "loc", None),
        ))
    return None


def compute_points_to(
    module,
    engine: Optional[DiagnosticEngine] = None,
    causes: Optional[List[TopCause]] = None,
) -> PointsToMap:
    """Fixpoint points-to for every pointer argument in the module.

    ``engine`` (optional) receives an ``analysis-*`` warning for every
    cause of precision loss; ``causes`` (optional) collects the raw
    :class:`TopCause` records for programmatic consumers.
    """
    if causes is None:
        causes = []
    sets: Dict[int, set] = {}
    top: set = set()
    args_by_id: Dict[int, Argument] = {}
    for function in module.defined_functions():
        for arg in function.args:
            if is_pointer(arg.type):
                sets[id(arg)] = set()
                args_by_id[id(arg)] = arg

    call_edges = []  # (caller name, param Argument, actual Value)
    for function in module.defined_functions():
        for instr in function.instructions():
            if not isinstance(instr, Call) or instr.callee.is_declaration:
                continue
            for param, actual in zip(instr.callee.args, instr.args):
                if is_pointer(param.type):
                    call_edges.append((function.name, param, actual))

    changed = True
    while changed:
        changed = False
        for caller, param, actual in call_edges:
            pid = id(param)
            if pid in top:
                continue
            root = _root_of(actual, causes, caller)
            if root is None:
                top.add(pid)
                changed = True
            elif isinstance(root, Argument):
                rid = id(root)
                if rid in top or rid not in sets:
                    if pid not in top:
                        if rid not in sets:
                            causes.append(TopCause(
                                "analysis-unknown-root", caller,
                                f"pointer argument {_describe_value(root)} is "
                                f"not tracked (non-pointer or external); the "
                                f"parameter it flows into degrades to TOP",
                                getattr(actual, "loc", None),
                            ))
                        top.add(pid)
                        changed = True
                else:
                    new = sets[rid] - sets[pid]
                    if new:
                        sets[pid] |= new
                        changed = True
            else:
                if root not in sets[pid]:
                    sets[pid].add(root)
                    changed = True

    report_top_causes(causes, engine)
    result: PointsToMap = {}
    for pid, bases in sets.items():
        result[pid] = None if pid in top else frozenset(bases)
    return result
