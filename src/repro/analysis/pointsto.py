"""Whole-program points-to sets for pointer arguments.

NOELLE computes its PDG over the *linked whole-program* IR, so a callee's
pointer parameter carries the set of objects its callers actually pass.
Ratchet's built-in alias analysis is function-local: a pointer parameter
may alias anything.  This module supplies that whole-program slice: a
fixpoint over the call graph mapping every pointer argument to the set of
named objects (globals / allocas) it can point into — or ``None`` (TOP)
when something unanalysable flows in.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from ..ir.instructions import Alloca, Call, GetElementPtr
from ..ir.types import is_pointer
from ..ir.values import Argument, GlobalVariable

#: id(Argument) -> frozenset of base objects, or None for TOP.
PointsToMap = Dict[int, Optional[FrozenSet]]


def _root_of(value):
    """Chase a pointer expression to its root: a named object, an
    argument, or None (unanalysable)."""
    seen = 0
    while isinstance(value, GetElementPtr):
        value = value.base
        seen += 1
        if seen > 64:
            return None
    if isinstance(value, (GlobalVariable, Alloca, Argument)):
        return value
    return None


def compute_points_to(module) -> PointsToMap:
    """Fixpoint points-to for every pointer argument in the module."""
    sets: Dict[int, set] = {}
    top: set = set()
    args_by_id: Dict[int, Argument] = {}
    for function in module.defined_functions():
        for arg in function.args:
            if is_pointer(arg.type):
                sets[id(arg)] = set()
                args_by_id[id(arg)] = arg

    call_edges = []  # (param Argument, actual Value)
    for function in module.defined_functions():
        for instr in function.instructions():
            if not isinstance(instr, Call) or instr.callee.is_declaration:
                continue
            for param, actual in zip(instr.callee.args, instr.args):
                if is_pointer(param.type):
                    call_edges.append((param, actual))

    changed = True
    while changed:
        changed = False
        for param, actual in call_edges:
            pid = id(param)
            if pid in top:
                continue
            root = _root_of(actual)
            if root is None:
                top.add(pid)
                changed = True
            elif isinstance(root, Argument):
                rid = id(root)
                if rid in top or rid not in sets:
                    if pid not in top:
                        top.add(pid)
                        changed = True
                else:
                    new = sets[rid] - sets[pid]
                    if new:
                        sets[pid] |= new
                        changed = True
            else:
                if root not in sets[pid]:
                    sets[pid].add(root)
                    changed = True

    result: PointsToMap = {}
    for pid, bases in sets.items():
        result[pid] = None if pid in top else frozenset(bases)
    return result
