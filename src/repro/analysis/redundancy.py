"""Merged-region redundancy analysis: is a checkpoint provably elidable?

The three static certification legs — WAR-freedom
(:mod:`repro.analysis.static_war`), idempotence
(:mod:`repro.analysis.idempotence`) and forward progress
(:mod:`repro.analysis.progress` / :mod:`repro.core.region_bound`) — are
verify-only: they prove the inserter's output safe but never feed back
into placement.  This module turns the same facts into an *optimisation
oracle*: for a candidate checkpoint ``c`` it abstractly merges the two
checkpoint-delimited regions adjacent to ``c`` (the IR is analysed with
``c`` treated as absent; nothing is mutated) and re-discharges all three
proof obligations on the merged region:

``placement-war``
    the exposed-load dataflow of :class:`static_war._FunctionWARAnalysis`
    (including cross-call mod/ref facts from
    :mod:`repro.analysis.summaries` under the relaxed call model) reaches
    a fixpoint with no store clobbering an exposed read;

``placement-idempotence``
    the idempotence certifier's abstract re-execution over the same
    merged fixpoint records no clobbered-read event in any region — the
    merged region re-executes to the same state after a power failure;

``placement-progress``
    the merged region's statically-estimated worst-case cycle gap stays
    within the elision budget: per-block path summaries over the
    :mod:`repro.core.region_bound` cost table are composed exactly like
    the machine-level progress certifier — loops collapsed
    innermost-first under real trip bounds, transparent callees spliced
    in bottom-up — so the merge cannot starve a device the un-merged
    program served.

If and only if all three hold, ``c`` is provably redundant: every
behaviour the merged region can exhibit under power failure was already
proven consistent, and the machine-level certifiers re-verify the elided
module end-to-end after lowering (the elision budget is deliberately
below the CI progress budget so back-end expansion cannot silently push
a merged region past it).

The driver that orders candidates, runs the fixpoint and emits the
``placement-*`` certificates lives in :mod:`repro.core.checkpoint_elim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..diagnostics import DiagnosticEngine
from ..ir.instructions import CKPT_MIDDLE_END, Call, Checkpoint
from .alias import AliasAnalysis
from .idempotence import _CapturingReporter, _obligation
from .loops import LoopInfo, loop_info
from .static_war import _FunctionWARAnalysis, describe_access, region_labels

#: Default estimated-cycle budget for a merged region.  Chosen well below
#: the CI machine-level progress budget (40 000 cycles, see
#: ``.github/workflows/ci.yml``) so the back end's expansion overhead
#: (spills, prologues, call marshalling) cannot push an elision-merged
#: region past the budget the *machine-level* progress certifier is held
#: to when it re-certifies the optimised module.
DEFAULT_ELISION_BUDGET = 20_000

#: Sub-proof kinds, in certificate order.
PLACEMENT_WAR = "placement-war"
PLACEMENT_IDEMPOTENCE = "placement-idempotence"
PLACEMENT_PROGRESS = "placement-progress"
SUBPROOF_KINDS = (PLACEMENT_WAR, PLACEMENT_IDEMPOTENCE, PLACEMENT_PROGRESS)


@dataclass
class ElisionDecision:
    """The outcome of asking "can this checkpoint be elided?"."""

    checkpoint: object
    function: str
    block: str
    #: instruction index of the candidate at decision time
    index: int
    cause: str
    #: the elision-order weight the driver assigned (hotter = larger)
    weight: float
    #: all three sub-proofs discharged on the merged region
    redundant: bool
    #: the decision was imposed by the TEST-ONLY ``force_unsafe_elision``
    #: knob rather than proven (sub-proofs are still evaluated/recorded)
    forced: bool
    subproofs: List[Dict[str, object]] = field(default_factory=list)


class _CountingReporter:
    """Collects WAR findings of a merged-region trial analysis as plain
    strings (no diagnostics escape a trial that only *asks*)."""

    def __init__(self, aa: AliasAnalysis):
        self.aa = aa
        self.findings: List[str] = []
        self.seen: Set = set()

    def _describe(self, instr) -> str:
        if isinstance(instr, Call):
            return f"call to '{instr.callee.name}'"
        return describe_access(instr, self.aa)

    def war(self, load, flags: int, store, kind: str) -> None:
        key = (id(load), id(store))
        if key in self.seen:
            return
        self.seen.add(key)
        self.findings.append(
            f"{kind} WAR: {self._describe(store)} overwrites a location "
            f"read by {self._describe(load)}"
        )

    def call_in_region(self, call, block, idx, state) -> None:
        key = ("call", id(call))
        if key in self.seen:
            return
        self.seen.add(key)
        self.findings.append(
            f"call to '{call.callee.name}' inside an open region with "
            f"exposed reads"
        )


# ---------------------------------------------------------------------------
# progress sub-proof: trip-bound-aware path summaries on the merged IR
# ---------------------------------------------------------------------------


def _instr_cost(instr) -> int:
    # the shared middle-end estimate table, parity-pinned against the
    # emulator's CostModel by tests/test_region_bound.py
    from ..core.region_bound import _cost

    return _cost(instr)


class _LoopNames:
    """Name-keyed view of an IR :class:`~repro.analysis.loops.Loop` so
    the progress certifier's condensation (which works on block *names*,
    machine-IR convention) can consume middle-end loops unchanged."""

    __slots__ = ("header", "blocks")

    def __init__(self, loop):
        self.header = loop.header.name
        self.blocks = {block.name for block in loop.blocks}


class _ProgressEstimator:
    """Worst-case estimated checkpoint-free gap of a function with an
    elision candidate treated as absent.

    This is the middle-end analogue of the machine-level progress
    certifier: per-block :class:`~repro.analysis.progress.PathSummary`
    atoms over the :mod:`repro.core.region_bound` cost table, loops
    collapsed innermost-first with real trip bounds
    (:func:`~repro.analysis.progress.loop_trip_bounds`), transparent
    callees spliced in bottom-up (they have no entry checkpoint, so
    their interior joins the caller's open region), and opaque calls
    treated as region boundaries — the same convention as the inserter's
    region-bound pass, whose estimate table this shares.  A recursive or
    irreducible shape yields :data:`~repro.analysis.progress.UNBOUNDED`
    and the sub-proof fails conservatively.
    """

    def __init__(self, function, summaries=None, arg_constants=None):
        self.function = function
        self.summaries = summaries
        #: per-function constant-argument sets for trip-bound inference
        #: (:func:`~repro.analysis.progress.argument_constants`)
        if arg_constants is None:
            module = function.parent
            if module is not None:
                from .progress import argument_constants

                arg_constants = argument_constants(module)
        self.arg_constants = arg_constants or {}
        self._callee_memo: Dict[str, object] = {}
        self._trips_memo: Dict[str, Dict[str, float]] = {}
        self._visiting: Set[str] = set()

    # -- composition ------------------------------------------------------
    def _trip_bounds(self, function) -> Dict[str, float]:
        from .progress import loop_trip_bounds

        bounds = self._trips_memo.get(function.name)
        if bounds is None:
            bounds = loop_trip_bounds(
                function, self.arg_constants.get(function.name)
            )
            self._trips_memo[function.name] = bounds
        return bounds

    def _callee_summary(self, callee):
        from .progress import UNBOUNDED, IrreducibleCFG, PathSummary

        summary = self._callee_memo.get(callee.name)
        if summary is not None:
            return summary
        if callee.is_declaration or callee.name in self._visiting:
            # external body or recursion: no finite composition
            summary = PathSummary(UNBOUNDED, {}, None, {})
        else:
            self._visiting.add(callee.name)
            try:
                summary = self._summarize(callee, frozenset())
            except IrreducibleCFG:
                summary = PathSummary(UNBOUNDED, {}, None, {})
            finally:
                self._visiting.discard(callee.name)
        self._callee_memo[callee.name] = summary
        return summary

    def _block_summary(self, block, ignore):
        from .progress import PathSummary, _seq

        summary = PathSummary()
        for index, instr in enumerate(block.instructions):
            if isinstance(instr, Checkpoint):
                if id(instr) in ignore:
                    continue  # the abstractly-elided candidate is absent
                label = f"{block.name}@{index}"
                atom = PathSummary(None, {label: 0}, _instr_cost(instr), {})
            elif isinstance(instr, Call):
                cost = _instr_cost(instr)
                if (self.summaries is not None
                        and self.summaries.is_transparent_call(instr)):
                    target = self._callee_summary(instr.callee)
                    pre: Dict[str, float] = {}
                    if target.pre:
                        pre[f"{block.name}@{index}:call:"
                            f"{instr.callee.name}"] = (
                            cost + max(target.pre.values())
                        )
                    atom = PathSummary(
                        None if target.through is None
                        else cost + target.through,
                        pre,
                        target.post,
                        {},
                    )
                else:
                    # opaque callee: its machine-level entry checkpoint
                    # ends the caller's gap (region-bound's convention)
                    label = f"{block.name}@{index}:call"
                    atom = PathSummary(None, {label: 0}, cost, {})
            else:
                atom = PathSummary(_instr_cost(instr))
            summary = _seq(summary, atom)
        return summary

    def _summarize(self, function, ignore):
        from .progress import (
            UNBOUNDED,
            IrreducibleCFG,
            PathSummary,
            _condense,
            _power,
            _seq,
        )

        li = loop_info(function)
        succs = {
            block.name: [succ.name for succ in block.successors]
            for block in function.blocks
        }
        node_summaries: Dict[object, object] = {
            block.name: self._block_summary(block, ignore)
            for block in function.blocks
        }
        trips = self._trip_bounds(function)
        named = {id(loop): _LoopNames(loop) for loop in li.loops}
        # innermost first: children collapse before their parents
        for loop in sorted(li.loops, key=lambda l: len(l.blocks)):
            members = [
                block.name for block in function.blocks if loop.contains(block)
            ]
            children = [named[id(child)] for child in loop.children]
            exit_summary, body = _condense(
                members, loop.header.name, children, succs, node_summaries,
                iteration=True,
            )
            if body is None:
                raise IrreducibleCFG(
                    f"loop at {loop.header.name} has no latch path"
                )
            iterated = _power(
                body, max(trips.get(loop.header.name, UNBOUNDED), 1)
            )
            node_summaries[("loop", loop.header.name)] = (
                _seq(iterated, exit_summary)
                if exit_summary is not None
                else iterated
            )
        top = [named[id(loop)] for loop in li.loops if loop.parent is None]
        summary, _ = _condense(
            [block.name for block in function.blocks],
            function.entry.name, top, succs, node_summaries,
            iteration=False,
        )
        if summary is None:
            return PathSummary(UNBOUNDED, {}, None, {})
        return summary

    def worst_gap(self, ignore=frozenset()) -> float:
        """The largest checkpoint-free bound anywhere in the function
        with the ``ignore`` checkpoints treated as absent
        (:data:`~repro.analysis.progress.UNBOUNDED` when any region has
        no structural bound)."""
        from .progress import UNBOUNDED, IrreducibleCFG

        try:
            summary = self._summarize(self.function, frozenset(ignore))
        except IrreducibleCFG:
            return UNBOUNDED
        bounds = list(summary.pre.values()) + list(summary.gaps.values())
        if summary.post is not None:
            bounds.append(summary.post)
        if summary.through is not None:
            bounds.append(summary.through)
        return max(bounds) if bounds else 0.0


# ---------------------------------------------------------------------------
# the per-function redundancy oracle
# ---------------------------------------------------------------------------


class RedundancyAnalysis:
    """Decides redundancy of middle-end checkpoints of one function.

    Each :meth:`decide` re-solves the merged-region dataflow against the
    function's *current* IR, so the driver may interleave decisions with
    actual elisions: a decision always reflects every elision already
    applied.  (Removing a barrier only ever grows the exposed-fact sets
    — the analysis is monotone in barrier removal — so a candidate that
    failed once can never become redundant later; the driver exploits
    this to retire failed candidates permanently.)
    """

    def __init__(self, function, aa: AliasAnalysis,
                 li: Optional[LoopInfo] = None, summaries=None,
                 budget: Optional[int] = None, arg_constants=None):
        self.function = function
        self.aa = aa
        self.li = li if li is not None else loop_info(function)
        self.summaries = summaries
        self.budget = budget if budget is not None else DEFAULT_ELISION_BUDGET
        self._estimator = _ProgressEstimator(
            function, summaries=summaries, arg_constants=arg_constants
        )

    def candidates(self) -> List[Checkpoint]:
        """Middle-end checkpoints of the function, in layout order.
        (Entry/exit/spill checkpoints are back-end constructs that do
        not exist at this level; region-bound checkpoints exist to cap
        the gap the progress sub-proof measures, so they are never
        candidates.)"""
        return [
            instr
            for block in self.function.blocks
            for instr in block.instructions
            if isinstance(instr, Checkpoint) and instr.cause == CKPT_MIDDLE_END
        ]

    def decide(self, ckpt: Checkpoint, weight: float = 0.0,
               forced: bool = False) -> ElisionDecision:
        """Evaluate all three sub-proofs for eliding ``ckpt``."""
        block = ckpt.parent
        at = f"{block.name}@{block.index_of(ckpt)}"
        labels = region_labels(self.function, True, self.summaries)
        region = labels.get(id(block), "entry")

        # One merged-region fixpoint serves both memory sub-proofs.
        merged = _FunctionWARAnalysis(
            self.function, self.aa, self.li, True, self.summaries,
            ignore={id(ckpt)},
        )
        merged.run()

        subproofs = [
            self._war_subproof(merged, region, at),
            self._idempotence_subproof(merged, labels, region, at),
            self._progress_subproof(ckpt, region, at),
        ]
        redundant = all(o["status"] == "discharged" for o in subproofs)
        return ElisionDecision(
            checkpoint=ckpt,
            function=self.function.name,
            block=block.name,
            index=block.index_of(ckpt),
            cause=ckpt.cause,
            weight=weight,
            redundant=redundant,
            forced=forced,
            subproofs=subproofs,
        )

    # -- the three sub-proofs -------------------------------------------
    def _war_subproof(self, merged, region: str, at: str):
        reporter = _CountingReporter(self.aa)
        merged.report(reporter)
        if reporter.findings:
            detail = (
                f"{len(reporter.findings)} WAR(s) in the merged region: "
                + reporter.findings[0]
            )
            ob = _obligation(PLACEMENT_WAR, region, at, detail,
                             violation=detail)
        else:
            ob = _obligation(
                PLACEMENT_WAR, region, at,
                "no store in the merged region overwrites an exposed read",
                discharged_by="exposed-load dataflow over the merged "
                              "region reached a fixpoint with no WAR",
            )
        return ob

    def _idempotence_subproof(self, merged, labels, region: str, at: str):
        # abstract re-execution: the idempotence certifier's capturing
        # reporter over the merged fixpoint; its diagnostics go to a
        # throwaway engine (a trial merge only *asks*)
        reporter = _CapturingReporter(
            DiagnosticEngine(), self.function, self.aa, labels
        )
        merged.report(reporter)
        clobbered = [
            detail
            for details in reporter.violations.values()
            for detail in details
        ]
        if clobbered:
            detail = (
                f"abstract re-execution of the merged region clobbers "
                f"{len(clobbered)} read(s): {clobbered[0]}"
            )
            ob = _obligation(PLACEMENT_IDEMPOTENCE, region, at, detail,
                             violation=detail)
        else:
            ob = _obligation(
                PLACEMENT_IDEMPOTENCE, region, at,
                "no abstract location is read before being overwritten "
                "inside the merged region",
                discharged_by="abstract re-execution recorded no "
                              "clobbered read in any region",
            )
        return ob

    def _progress_subproof(self, ckpt: Checkpoint, region: str, at: str):
        gap = self._estimator.worst_gap(ignore={id(ckpt)})
        if gap > self.budget:
            over = (
                "has no structural bound" if gap == float("inf")
                else f"is estimated at {int(gap)} cycles"
            )
            detail = (
                f"the merged region's worst checkpoint-free gap {over}, "
                f"exceeding the elision budget of {self.budget} cycles"
            )
            ob = _obligation(PLACEMENT_PROGRESS, region, at, detail,
                             violation=detail)
        else:
            ob = _obligation(
                PLACEMENT_PROGRESS, region, at,
                f"estimated worst checkpoint-free gap of {int(gap)} "
                f"cycles is within the elision budget of {self.budget}",
                discharged_by="trip-bounded path-summary composition "
                              "over the merged region (region-bound "
                              "cost table, transparent callees spliced "
                              "bottom-up)",
            )
        ob["bound"] = None if gap > self.budget else int(gap)
        ob["budget"] = self.budget
        return ob


__all__ = [
    "DEFAULT_ELISION_BUDGET",
    "PLACEMENT_WAR", "PLACEMENT_IDEMPOTENCE", "PLACEMENT_PROGRESS",
    "SUBPROOF_KINDS",
    "ElisionDecision", "RedundancyAnalysis",
]
