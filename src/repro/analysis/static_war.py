"""Static WAR-freedom verification on the middle-end IR.

The emulator's :class:`~repro.emulator.warcheck.WARChecker` proves
WAR-freedom *dynamically*: byte-granular, but only for the paths one run
happens to execute.  This module proves the same invariant *statically*,
for every path and every input, following Surbatovich et al.'s
observation that intermittent-execution correctness is a static property
of checkpoint-delimited regions.

The verifier is a forward may-dataflow over each function's CFG.  The
abstract state at a program point is the set of *exposed loads*: loads
whose location may have been read since the last barrier (checkpoint, or
call when entry/exit checkpoints are in force) on **some** path to this
point.  Facts carry two path flags:

``FORWARD``
    the load reaches this point without crossing a loop back edge — the
    load and the current instruction execute in the same iteration;

``BACKWARD``
    the fact flowed around at least one back edge — the current
    instruction executes in a *later* iteration than the load.

A store is a WAR violation when it may alias an exposed load under the
matching alias query: plain ``may_alias`` for same-iteration facts,
``may_alias_cross_iteration`` (over the pair's innermost common loop)
for facts that wrapped a back edge.  A checkpoint kills all facts — on
that path the idempotent region containing the load has ended before the
store.  This is exactly the invariant the dynamic checker tests, lifted
to abstract locations: *static clean implies dynamically clean on every
input* (the converse does not hold — the analysis over-approximates
aliasing exactly as the PDG checkpoint inserter does).

Interprocedural behaviour follows the instrumentation model:

* ``calls_are_checkpoints=True`` (every instrumented environment) —
  calls are barriers, because callees checkpoint at entry and before
  every epilogue stack release (paper §3.1.2/§3.1.3).
* ``calls_are_checkpoints=False`` (the ``plain`` build) — a call may
  both read and write arbitrary memory inside the caller's open region,
  so a call with exposed loads is itself reported, and the call becomes
  an exposed load of *everything* (the whole-program points-to summary
  bounds nothing once the region spans unknown callees).
* ``summaries`` (a :class:`~repro.analysis.summaries.SummaryTable`) —
  the relaxed call model: a call is a barrier only when the callee is
  not *transparent*; a transparent call is checked as a write of the
  callee's mod set against the exposed loads, then becomes an exposed
  read of the callee's ref set.  This mirrors
  :func:`repro.analysis.memdep.find_wars` exactly, so the verifier
  re-certifies what the summaries-aware inserter produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..diagnostics import (
    LEVEL_IR,
    Diagnostic,
    DiagnosticEngine,
    ERROR,
    WARNING,
)
from ..ir.instructions import Call, Checkpoint, Load, Store
from .alias import AliasAnalysis, PRECISE
from .cfg import reverse_postorder
from .dataflow import DataflowProblem, FW, BK, merge_flagged_facts, solve
from .loops import LoopInfo, loop_info
from .memdep import BACKWARD, FORWARD, access_size, summary_sets_intersect


class StaticWARError(Exception):
    """Raised by ``verify_static`` pipelines when a module fails static
    WAR verification.  Carries the collecting engine."""

    def __init__(self, engine: DiagnosticEngine):
        self.engine = engine
        super().__init__(
            f"static WAR verification failed: {engine.summary()}\n"
            + engine.render_text()
        )


# ---------------------------------------------------------------------------
# CFG helpers
# ---------------------------------------------------------------------------


def retreating_edges(function) -> set:
    """Edges ``(id(pred), id(succ))`` that go backwards in reverse
    postorder.  For the reducible CFGs the mini-C front end produces this
    is exactly the set of loop back edges; for an irreducible graph it is
    a superset, which only makes the analysis more conservative (extra
    ``BK`` flags can only add reports, never hide one)."""
    rpo = reverse_postorder(function)
    index = {id(b): i for i, b in enumerate(rpo)}
    edges = set()
    for block in function.blocks:
        for succ in block.successors:
            if index.get(id(succ), 0) <= index.get(id(block), 0):
                edges.add((id(block), id(succ)))
    return edges


def region_labels(function, calls_are_checkpoints: bool,
                  summaries=None) -> Dict[int, str]:
    """A human-readable idempotent-region identifier for every block
    entry: the position of the nearest *dominating* barrier, or
    ``"entry"``.  Purely informational — the dataflow itself is
    path-sensitive and does not consume these labels."""
    from .dominators import dominator_tree

    domtree = dominator_tree(function)
    labels: Dict[int, str] = {}

    def label_at_entry(block) -> str:
        if id(block) in labels:
            return labels[id(block)]
        parent = domtree.idom(block)
        if parent is None:
            label = "entry"
        else:
            label = label_at_exit(parent)
        labels[id(block)] = label
        return label

    def label_at_exit(block) -> str:
        label = label_at_entry(block)
        for idx, instr in enumerate(block.instructions):
            if _is_barrier(instr, calls_are_checkpoints, summaries):
                label = f"{block.name}@{idx}"
        return label

    for block in function.blocks:
        label_at_entry(block)
    return labels


def _is_barrier(instr, calls_are_checkpoints: bool, summaries=None) -> bool:
    if isinstance(instr, Checkpoint):
        return True
    if not calls_are_checkpoints or not isinstance(instr, Call):
        return False
    if summaries is not None and summaries.is_transparent_call(instr):
        return False
    return True


# ---------------------------------------------------------------------------
# the region dataflow
# ---------------------------------------------------------------------------

#: A dataflow state: id(instr) -> (instr, flags).  ``instr`` is a Load,
#: or a Call standing in for "the callee may have read anything".
State = Dict[int, Tuple[object, int]]

#: The join is the shared flagged-fact lattice from the dataflow engine.
_merge = merge_flagged_facts


class _FunctionWARAnalysis(DataflowProblem):
    """One function's exposed-load dataflow plus the reporting pass.

    A forward may-analysis on the shared engine: the in-state seed is
    the empty fact map for every reachable block, facts union at joins,
    and a back edge tags everything it carries with ``BK``.

    ``ignore`` is a set of instruction ids (checkpoints only) treated as
    absent: facts flow straight through them, so the analysis sees the
    two adjacent regions *abstractly merged*.  The redundancy analysis
    (:mod:`repro.analysis.redundancy`) uses this to ask "would the
    module still verify if this checkpoint were elided?" without
    mutating the IR."""

    def __init__(
        self,
        function,
        aa: AliasAnalysis,
        li: LoopInfo,
        calls_are_checkpoints: bool,
        summaries=None,
        ignore=frozenset(),
    ):
        self.function = function
        self.aa = aa
        self.li = li
        self.calls_are_checkpoints = calls_are_checkpoints
        self.summaries = summaries
        self.ignore = frozenset(ignore)
        self.back_edges = retreating_edges(function)
        self.in_states: Dict[int, State] = {id(b): {} for b in function.blocks}

    # -- transfer --------------------------------------------------------
    def _transfer_block(self, block, state: State, report=None) -> State:
        state = dict(state)
        for idx, instr in enumerate(block.instructions):
            if id(instr) in self.ignore and isinstance(instr, Checkpoint):
                # abstract region merge: the elision candidate is absent
                continue
            if _is_barrier(instr, self.calls_are_checkpoints, self.summaries):
                state.clear()
                if isinstance(instr, Call):
                    # The callee's entry checkpoint ends the region, but the
                    # call's own reads/writes then start a fresh one; model
                    # the call result as nothing exposed (the callee's final
                    # exit checkpoint precedes any post-return accesses).
                    pass
                continue
            if isinstance(instr, Call):
                if self.calls_are_checkpoints:
                    # Transparent callee (relaxed model): the call writes
                    # its mod set inside the still-open region — check it
                    # against the exposed loads — then exposes its ref set
                    # as a read.
                    if report is not None:
                        for fact_instr, flags in list(state.values()):
                            kind = self._war_kind(fact_instr, flags, instr)
                            if kind is not None:
                                report.war(fact_instr, flags, instr, kind)
                else:
                    # Region spans the call (plain build): report it against
                    # the open exposed loads, then treat the callee as having
                    # read arbitrary memory inside the still-open region.
                    if report is not None and state:
                        report.call_in_region(instr, block, idx, state)
                state[id(instr)] = (instr, state.get(id(instr), (instr, 0))[1] | FW)
                continue
            if isinstance(instr, Load):
                old = state.get(id(instr))
                state[id(instr)] = (instr, (old[1] if old else 0) | FW)
                continue
            if isinstance(instr, Store):
                if report is not None:
                    for fact_instr, flags in list(state.values()):
                        kind = self._war_kind(fact_instr, flags, instr)
                        if kind is not None:
                            report.war(fact_instr, flags, instr, kind)
        return state

    def _endpoint_objects(self, instr, want_mod: bool):
        """Objects a fact/store endpoint may touch (None = TOP)."""
        if isinstance(instr, Call):
            if self.summaries is None:
                return None
            if want_mod:
                return self.summaries.call_mod(instr)
            return self.summaries.call_ref(instr)
        return self.aa.classify(instr.pointer).possible_bases()

    def _war_kind(self, fact_instr, flags: int, store) -> Optional[str]:
        """Does ``store`` (a Store, or a transparent Call standing in for
        its mod set) form a WAR with the exposed ``fact_instr``?"""
        if isinstance(fact_instr, Call) and not self.calls_are_checkpoints:
            return "call"
        if isinstance(fact_instr, Call) or isinstance(store, Call):
            if fact_instr is store and not flags & BK:
                # One execution of one call: the callee's internal
                # ordering was proven WAR-free when it was classified
                # transparent.
                return None
            overlap = summary_sets_intersect(
                self._endpoint_objects(fact_instr, want_mod=False),
                self._endpoint_objects(store, want_mod=True),
            )
            if not overlap:
                return None
            # Object-granular facts alias identically in every iteration.
            return FORWARD if flags & FW and fact_instr is not store else BACKWARD
        load = fact_instr
        lsize = access_size(load)
        ssize = access_size(store)
        if flags & FW and self.aa.may_alias(
            load.pointer, lsize, store.pointer, ssize
        ):
            return FORWARD
        if flags & BK:
            common = self.li.common_loop(load.parent, store.parent)
            if common is not None:
                if self.aa.may_alias_cross_iteration(
                    load.pointer, lsize, store.pointer, ssize, common
                ):
                    return BACKWARD
            elif self.aa.may_alias(load.pointer, lsize, store.pointer, ssize):
                # The fact wrapped a back edge of a loop that does not
                # contain both endpoints: the load's address was fixed when
                # it executed, so the same-iteration query is the right one.
                return BACKWARD
        return None

    # -- the dataflow problem (shared worklist engine) -------------------
    def nodes(self):
        return reverse_postorder(self.function)

    def edges(self, block):
        for succ in block.successors:
            yield succ, (id(block), id(succ)) in self.back_edges

    def initial(self, block) -> State:
        return {}

    def transfer(self, block, state: State) -> State:
        return self._transfer_block(block, state)

    def flow(self, out: State, block, succ, is_back: bool) -> State:
        if is_back:
            return {
                key: (instr, flags | BK)
                for key, (instr, flags) in out.items()
            }
        return out

    def merge(self, existing: State, incoming: State, block) -> bool:
        return _merge(existing, incoming)

    def run(self) -> None:
        # Unreachable blocks are not solved (no path reaches them) but
        # the reporting pass still walks them with an empty in-state, so
        # straight-line WARs inside dead code are still flagged.
        self.in_states.update(solve(self))

    def report(self, reporter) -> None:
        for block in self.function.blocks:
            self._transfer_block(block, self.in_states[id(block)], report=reporter)


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def describe_access(instr, aa: Optional[AliasAnalysis] = None) -> str:
    """A short human-readable description of a load/store's location."""
    pointer = instr.pointer
    if aa is not None:
        info = aa.classify(pointer)
        if info.base is not None and getattr(info.base, "name", ""):
            prefix = "@" if type(info.base).__name__ == "GlobalVariable" else "%"
            desc = f"{prefix}{info.base.name}"
            if info.exact and info.iv is None and info.const_offset:
                desc += f"+{info.const_offset}"
            elif not info.exact or info.iv is not None:
                desc += "[...]"
            return desc
    name = getattr(pointer, "name", "")
    return f"%{name}" if name else "<unknown>"


class _Reporter:
    """Deduplicates findings across the reporting pass and turns them
    into diagnostics."""

    def __init__(self, engine, function, aa, labels, seen):
        self.engine = engine
        self.function = function
        self.aa = aa
        self.labels = labels
        self.seen = seen

    def _region_of(self, load) -> str:
        block = getattr(load, "parent", None)
        if block is None:
            return ""
        return self.labels.get(id(block), "entry")

    def _describe_endpoint(self, instr) -> str:
        if isinstance(instr, Call):
            return f"call to '{instr.callee.name}'"
        return describe_access(instr, self.aa)

    def war(self, load, flags: int, store, kind: str) -> None:
        key = (id(load), id(store))
        if key in self.seen:
            return
        self.seen.add(key)
        if kind == "call":
            call = load
            self.engine.emit(Diagnostic(
                severity=ERROR,
                code="war-after-call",
                message=(
                    f"store to {describe_access(store, self.aa)} follows a "
                    f"call to '{call.callee.name}' in the same idempotent "
                    f"region; the callee may already have read this "
                    f"location"
                ),
                function=self.function.name,
                region=self._region_of(call),
                level=LEVEL_IR,
                loc=getattr(store, "loc", None),
                related=[(
                    "region-spanning call is here",
                    getattr(call, "loc", None),
                )],
            ))
            return
        where = {
            FORWARD: "later in the same idempotent region",
            BACKWARD: "in a later iteration of the same idempotent region",
        }[kind]
        if isinstance(store, Call):
            store_clause = (
                f"{self._describe_endpoint(store)} may overwrite (via its "
                f"mod set) a location"
            )
        else:
            store_clause = (
                f"store to {describe_access(store, self.aa)} may overwrite "
                f"a location"
            )
        if isinstance(load, Call):
            read_by = f"inside {self._describe_endpoint(load)} (its ref set)"
        else:
            read_by = f"by load {describe_access(load, self.aa)}"
        diag = Diagnostic(
            severity=ERROR,
            code=f"war-{kind}",
            message=(
                f"{store_clause} first read {where}; re-execution after a "
                f"power failure would observe the new value"
            ),
            function=self.function.name,
            region=self._region_of(load),
            level=LEVEL_IR,
            loc=getattr(store, "loc", None),
            related=[(
                f"location first read here {read_by}",
                getattr(load, "loc", None),
            )],
        )
        self.engine.emit(diag)

    def call_in_region(self, call, block, idx, state) -> None:
        key = ("call", id(call))
        if key in self.seen:
            return
        self.seen.add(key)
        sample = next(iter(state.values()))[0]
        self.engine.emit(Diagnostic(
            severity=ERROR,
            code="war-call",
            message=(
                f"call to '{call.callee.name}' inside an idempotent region "
                f"with exposed reads: the callee may overwrite a location "
                f"already read in this region (no entry checkpoint breaks "
                f"the region in this configuration)"
            ),
            function=self.function.name,
            region=self._region_of(sample),
            level=LEVEL_IR,
            loc=getattr(call, "loc", None),
            related=[(
                "a location is first read here",
                getattr(sample, "loc", None),
            )] if isinstance(sample, Load) else [],
        ))


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def verify_function_war(
    function,
    alias_mode: str = PRECISE,
    points_to=None,
    calls_are_checkpoints: bool = True,
    engine: Optional[DiagnosticEngine] = None,
    summaries=None,
) -> DiagnosticEngine:
    """Statically verify one function's WAR-freedom; returns the engine."""
    if engine is None:
        engine = DiagnosticEngine()
    aa = AliasAnalysis(function, alias_mode, points_to=points_to)
    li = loop_info(function)
    analysis = _FunctionWARAnalysis(
        function, aa, li, calls_are_checkpoints, summaries
    )
    analysis.run()
    labels = region_labels(function, calls_are_checkpoints, summaries)
    reporter = _Reporter(engine, function, aa, labels, set())
    analysis.report(reporter)
    return engine


def verify_module_war(
    module,
    alias_mode: str = PRECISE,
    calls_are_checkpoints: bool = True,
    engine: Optional[DiagnosticEngine] = None,
    summaries=None,
) -> DiagnosticEngine:
    """Statically verify every defined function of ``module``.

    The verifier must see the *final* middle-end IR — i.e. run it after
    checkpoint insertion (or on an uninstrumented module to demonstrate
    why ``plain`` is unsafe under intermittent power).

    When ``summaries`` is given its whole-program points-to map drives
    alias queries and transparent callees stop acting as barriers; the
    verifier then certifies the same relaxed call model the inserter
    used.
    """
    from .pointsto import compute_points_to

    if engine is None:
        engine = DiagnosticEngine()
    if summaries is not None:
        points_to = summaries.arg_points_to
    else:
        points_to = compute_points_to(module)
    for function in module.defined_functions():
        verify_function_war(
            function,
            alias_mode=alias_mode,
            points_to=points_to,
            calls_are_checkpoints=calls_are_checkpoints,
            engine=engine,
            summaries=summaries,
        )
    return engine


__all__ = [
    "FW", "BK",
    "StaticWARError",
    "describe_access", "retreating_edges", "region_labels",
    "verify_function_war", "verify_module_war",
]
