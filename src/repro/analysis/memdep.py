"""Memory-dependence analysis: the PDG slice WARio consumes.

The central product is the list of *WAR violations*: (load, store) pairs
over possibly-the-same NVM address where the store executes after the load
(possibly via a loop back edge) with no intervening forced checkpoint.
Re-executing such a region after a power failure makes the load observe
the new value (paper Figure 1), so each WAR must be broken by a
checkpoint between its read and its write.

With a :class:`~repro.analysis.summaries.SummaryTable` the call model is
relaxed: a call is a barrier only when the callee may actually checkpoint
(it is not *transparent*); a call to a transparent callee instead
participates as a memory access itself — its ref set as a read, its mod
set as a write — so WARs through the call are found and breakable while
WAR-free callees stop forcing entry/exit checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Call, Checkpoint, Load, Store
from .alias import AliasAnalysis
from .cfg import reachability
from .loops import Loop, LoopInfo

#: WAR kinds: ``forward`` = store strictly after load in the same-iteration
#: program order; ``backward`` = the store only reaches the load around a
#: loop back edge (store earlier in the block/loop body than the load).
FORWARD = "forward"
BACKWARD = "backward"


@dataclass
class WARViolation:
    """One WAR violation that a checkpoint must break.

    Either endpoint may be a :class:`Call` to a transparent callee (the
    read then stands for the callee's ref set, the write for its mod
    set).
    """

    load: Load
    store: Store
    kind: str

    def __repr__(self):
        return f"<WAR {self.kind} {self.load!r} -> {self.store!r}>"


def access_size(instr) -> int:
    """Byte width of a load/store's memory access."""
    if isinstance(instr, Load):
        return instr.type.size
    if isinstance(instr, Store):
        return instr.pointer.type.pointee.size
    raise TypeError(f"not a memory access: {instr!r}")


def summary_sets_intersect(a: Optional[frozenset], b: Optional[frozenset]) -> bool:
    """Object-granular overlap; ``None`` (TOP) intersects everything."""
    if a is None or b is None:
        return True
    return bool(a & b)


def _endpoint_objects(instr, aa: AliasAnalysis, summaries, want_mod: bool):
    """Objects an endpoint (load/store/transparent call) may touch, or
    None for TOP."""
    if isinstance(instr, Call):
        return summaries.call_mod(instr) if want_mod else summaries.call_ref(instr)
    return aa.classify(instr.pointer).possible_bases()


def find_wars(
    function,
    aa: AliasAnalysis,
    loop_info: LoopInfo,
    calls_are_checkpoints: bool = True,
    summaries=None,
) -> List[WARViolation]:
    """All unresolved WAR violations of ``function``.

    ``calls_are_checkpoints`` models the forced checkpoints at function
    entry/exit: a call on every path between the read and the write of a
    WAR already breaks it (paper §3.1.2, PDG Checkpoint Inserter).
    Checkpoint instructions already present in the IR likewise resolve.

    ``summaries`` (a :class:`~repro.analysis.summaries.SummaryTable`)
    relaxes the call model: calls to transparent callees are not
    barriers but contribute their ref/mod sets as read/write endpoints.
    """
    loads: List[Load] = []
    stores: List[Store] = []
    positions: Dict[int, Tuple[object, int]] = {}
    barrier_index: Dict[int, List[int]] = {}
    for block in function.blocks:
        barriers: List[int] = []
        for idx, instr in enumerate(block.instructions):
            positions[id(instr)] = (block, idx)
            if isinstance(instr, Load):
                loads.append(instr)
            elif isinstance(instr, Store):
                stores.append(instr)
            elif (
                isinstance(instr, Call)
                and calls_are_checkpoints
                and summaries is not None
                and summaries.is_transparent_call(instr)
            ):
                # A region may span this call: the callee's reads and
                # writes happen inside the caller's open region.
                loads.append(instr)
                stores.append(instr)
            if _is_barrier(instr, calls_are_checkpoints, summaries):
                barriers.append(idx)
        barrier_index[id(block)] = barriers

    reach = reachability(function)
    common_cache: Dict[Tuple[int, int], object] = {}
    wars: List[WARViolation] = []
    for load in loads:
        lblock, lidx = positions[id(load)]
        for store in stores:
            sblock, sidx = positions[id(store)]
            pair_key = (id(lblock), id(sblock))
            if pair_key in common_cache:
                common = common_cache[pair_key]
            else:
                common = loop_info.common_loop(lblock, sblock)
                common_cache[pair_key] = common
            war = _classify_pair(
                load, lblock, lidx,
                store, sblock, sidx,
                aa, common, reach, summaries,
            )
            if war is None:
                continue
            if _resolved_by_barrier_index(
                war, lblock, lidx, sblock, sidx, barrier_index
            ):
                continue
            wars.append(war)
    return wars


def _resolved_by_barrier_index(
    war: WARViolation, lblock, lidx, sblock, sidx, barrier_index
) -> bool:
    """Fast version of the barrier-on-every-path check over precomputed,
    sorted per-block barrier positions."""
    import bisect

    lbars = barrier_index[id(lblock)]
    sbars = barrier_index[id(sblock)]
    if lblock is sblock:
        if war.kind == FORWARD:
            pos = bisect.bisect_right(lbars, lidx)
            return pos < len(lbars) and lbars[pos] < sidx
        # wrap path: any barrier after the load or before the store
        return bool(lbars) and (lbars[-1] > lidx or lbars[0] < sidx)
    after_load = bool(lbars) and lbars[-1] > lidx
    before_store = bool(sbars) and sbars[0] < sidx
    return after_load or before_store


def _classify_pair(
    load, lblock, lidx,
    store, sblock, sidx,
    aa: AliasAnalysis,
    common: Optional[Loop],
    reach,
    summaries=None,
) -> Optional[WARViolation]:
    if isinstance(load, Call) or isinstance(store, Call):
        # Object-granular: the callee may touch any part of its summary
        # objects in any iteration, so the same test serves both the
        # same-iteration and the cross-iteration query.
        overlap = summary_sets_intersect(
            _endpoint_objects(load, aa, summaries, want_mod=False),
            _endpoint_objects(store, aa, summaries, want_mod=True),
        )
        same_iter_alias = cross_alias = overlap
    else:
        lsize = access_size(load)
        ssize = access_size(store)
        same_iter_alias = aa.may_alias(load.pointer, lsize, store.pointer, ssize)
        cross_alias = (
            common is not None
            and aa.may_alias_cross_iteration(
                load.pointer, lsize, store.pointer, ssize, common
            )
        )
    if common is None:
        cross_alias = False
    if lblock is sblock:
        if sidx > lidx:
            if same_iter_alias or cross_alias:
                return WARViolation(load, store, FORWARD)
            return None
        # Store textually at/before the load (or the same transparent
        # call, reading and writing once per execution): only reachable
        # around a cycle.
        if common is None or not cross_alias:
            return None
        return WARViolation(load, store, BACKWARD)
    if id(sblock) in reach[id(lblock)]:
        if same_iter_alias or cross_alias:
            return WARViolation(load, store, FORWARD)
        return None
    if common is not None and cross_alias:
        # Same loop, store does not follow the load within an iteration:
        # the path wraps the back edge.
        return WARViolation(load, store, BACKWARD)
    return None


def _is_barrier(instr, calls_are_checkpoints: bool, summaries=None) -> bool:
    if isinstance(instr, Checkpoint):
        return True
    if not calls_are_checkpoints or not isinstance(instr, Call):
        return False
    if summaries is not None and summaries.is_transparent_call(instr):
        return False
    return True


def _resolved_by_barrier(
    war: WARViolation, lblock, lidx, sblock, sidx, calls_are_checkpoints: bool,
    summaries=None,
) -> bool:
    """True if a forced checkpoint lies on *every* load->store path.

    We only prove this for segments guaranteed to be on every path: the
    remainder of the load's block, and the prefix of the store's block.
    """
    if lblock is sblock:
        if war.kind == FORWARD:
            segment = lblock.instructions[lidx + 1 : sidx]
        else:
            segment = lblock.instructions[lidx + 1 :] + lblock.instructions[:sidx]
        return any(_is_barrier(i, calls_are_checkpoints, summaries) for i in segment)
    after_load = lblock.instructions[lidx + 1 :]
    before_store = sblock.instructions[:sidx]
    return any(
        _is_barrier(i, calls_are_checkpoints, summaries) for i in after_load
    ) or any(_is_barrier(i, calls_are_checkpoints, summaries) for i in before_store)


def block_memory_accesses(block) -> List:
    """The loads and stores of a block, in order."""
    return [i for i in block.instructions if isinstance(i, (Load, Store))]
