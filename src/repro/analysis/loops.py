"""Natural-loop detection and the loop forest.

WARio's Loop Write Clusterer consumes exactly this information: the loop
header, latch(es), body blocks, exit edges, and nesting depth (used as the
checkpoint-location cost in the hitting set).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .cfg import predecessors_map
from .dominators import DominatorTree, dominator_tree


class Loop:
    """A natural loop: ``header`` plus the blocks of all its back edges."""

    def __init__(self, header):
        self.header = header
        self.blocks: List = [header]
        self._block_ids: Set[int] = {id(header)}
        self.latches: List = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    def contains(self, block) -> bool:
        return id(block) in self._block_ids

    def add_block(self, block) -> None:
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    @property
    def depth(self) -> int:
        d, loop = 1, self.parent
        while loop is not None:
            d += 1
            loop = loop.parent
        return d

    @property
    def single_latch(self) -> Optional[object]:
        return self.latches[0] if len(self.latches) == 1 else None

    def exit_edges(self) -> List[Tuple[object, object]]:
        """(inside_block, outside_block) pairs leaving the loop."""
        edges = []
        for block in self.blocks:
            for succ in block.successors:
                if not self.contains(succ):
                    edges.append((block, succ))
        return edges

    def exit_blocks(self) -> List:
        seen, out = set(), []
        for _, outside in self.exit_edges():
            if id(outside) not in seen:
                seen.add(id(outside))
                out.append(outside)
        return out

    def preheader(self) -> Optional[object]:
        """The unique out-of-loop predecessor of the header, if there is
        exactly one and it branches only to the header."""
        outside = [p for p in self.header.predecessors if not self.contains(p)]
        if len(outside) != 1:
            return None
        cand = outside[0]
        if len(cand.successors) != 1:
            return None
        return cand

    def is_single_block(self) -> bool:
        return len(self.blocks) == 1

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self):
        return f"<Loop header={self.header.name} depth={self.depth} blocks={len(self.blocks)}>"


class LoopInfo:
    """The loop forest of a function."""

    def __init__(self, loops: List[Loop], function):
        self.loops = loops
        self.function = function
        self._innermost: Dict[int, Loop] = {}
        for loop in self._loops_outer_to_inner():
            for block in loop.blocks:
                self._innermost[id(block)] = loop

    def _loops_outer_to_inner(self) -> List[Loop]:
        return sorted(self.loops, key=lambda l: l.depth)

    def innermost_loop_of(self, block) -> Optional[Loop]:
        return self._innermost.get(id(block))

    def depth_of(self, block) -> int:
        loop = self.innermost_loop_of(block)
        return loop.depth if loop is not None else 0

    def common_loop(self, block_a, block_b) -> Optional[Loop]:
        """Innermost loop containing both blocks, or None."""
        loop = self.innermost_loop_of(block_a)
        while loop is not None:
            if loop.contains(block_b):
                return loop
            loop = loop.parent
        return None

    def top_level_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def __iter__(self):
        return iter(self.loops)


def loop_info(function, domtree: Optional[DominatorTree] = None) -> LoopInfo:
    """Detect natural loops from back edges (tail -> dominating header)."""
    domtree = domtree or dominator_tree(function)
    preds = predecessors_map(function)
    reachable = {id(b) for b in domtree.blocks}

    loops_by_header: Dict[int, Loop] = {}
    for block in domtree.blocks:
        for succ in block.successors:
            if domtree.dominates(succ, block):
                loop = loops_by_header.get(id(succ))
                if loop is None:
                    loop = Loop(succ)
                    loops_by_header[id(succ)] = loop
                loop.latches.append(block)
                _grow_loop(loop, block, preds, reachable)

    loops = list(loops_by_header.values())
    # Nesting: loop A is a child of the smallest loop B != A containing A's header.
    by_size = sorted(loops, key=lambda l: len(l.blocks))
    for loop in loops:
        for candidate in by_size:
            if candidate is loop or len(candidate.blocks) <= len(loop.blocks):
                continue
            if candidate.contains(loop.header):
                loop.parent = candidate
                candidate.children.append(loop)
                break
    return LoopInfo(loops, function)


def _grow_loop(loop: Loop, latch, preds, reachable: Set[int]) -> None:
    """Add all blocks that reach ``latch`` without passing the header."""
    if id(latch) not in reachable:
        return
    loop.add_block(latch)
    stack = [latch]
    while stack:
        block = stack.pop()
        if block is loop.header:
            continue  # do not walk above the header
        for pred in preds[id(block)]:
            if id(pred) in reachable and not loop.contains(pred):
                loop.add_block(pred)
                stack.append(pred)


def find_induction_variables(loop: Loop) -> Dict[int, Tuple[object, int]]:
    """Simple induction variables of ``loop``.

    Returns id(phi) -> (phi, step) for header phis of the form
    ``phi = [init, preheader], [phi +/- C, latch]`` with constant C.
    This is the SCEV slice that the precise (NOELLE-style) alias analysis
    uses to disambiguate ``a[i]`` from ``a[i+c]``.
    """
    from ..ir.instructions import BinaryOp, Phi
    from ..ir.values import Constant

    out: Dict[int, Tuple[object, int]] = {}

    def chase_step(value, phi) -> Optional[int]:
        """Total constant step if ``value`` is phi plus a chain of
        constant adds/subs (as produced by unrolling), else None."""
        total = 0
        for _ in range(64):  # bound the walk
            if value is phi:
                return total
            if (
                isinstance(value, BinaryOp)
                and value.op in ("add", "sub")
                and isinstance(value.rhs, Constant)
            ):
                step = value.rhs.value
                if step >= 1 << 31:
                    step -= 1 << 32
                total += -step if value.op == "sub" else step
                value = value.lhs
                continue
            return None
        return None

    for phi in loop.header.phis():
        steps = []
        ok = True
        for value, pred in phi.incoming:
            if not loop.contains(pred):
                continue  # entry value
            step = chase_step(value, phi)
            if step is None:
                ok = False
                break
            steps.append(step)
        if ok and steps and all(s == steps[0] for s in steps):
            out[id(phi)] = (phi, steps[0])
    return out
