"""Alias analysis, in three precision modes.

``conservative``
    The precision Ratchet gets from the compiler's built-in aliasing:
    distinct named objects (globals, allocas) never alias, but accesses
    into the same object are never disambiguated.

``precise``
    The NOELLE-PDG precision used by R-PDG and WARio in the paper: GEP
    chains are decomposed into ``base + const + coeff * iv`` (an
    affine/SCEV-lite form), so ``state[1]`` and ``state[13]`` — or
    ``W[t]`` and ``W[t-3]`` in the same iteration — are proven disjoint.
    Across loop iterations, iv-dependent accesses stay may-alias (the
    PDG does not carry dependence distances).

``affine``
    An extension beyond the paper: full cross-iteration distance
    reasoning over induction variables (eliminates the loop-carried WARs
    of stencil-style loops entirely).  Used by the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ir.instructions import Alloca, BinaryOp, Cast, GetElementPtr, Phi
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .loops import Loop, find_induction_variables

PRECISE = "precise"
CONSERVATIVE = "conservative"
AFFINE = "affine"
ALIAS_MODES = (CONSERVATIVE, PRECISE, AFFINE)


@dataclass
class PointerInfo:
    """Decomposition of a pointer as ``base + const_offset + coeff * iv``.

    ``base`` is a :class:`GlobalVariable`, :class:`Alloca` or
    :class:`Argument` when known, else ``None``.  ``base_set`` (from the
    whole-program points-to analysis) bounds the objects an argument-
    rooted pointer can reach.  ``exact`` means the decomposition captures
    the address fully; otherwise only the base information is
    trustworthy.  Offsets are in bytes.
    """

    base: Optional[Value]
    const_offset: int = 0
    iv: Optional[Phi] = None
    coeff: int = 0
    exact: bool = True
    base_set: Optional[frozenset] = None

    @property
    def has_distinct_base(self) -> bool:
        return isinstance(self.base, (GlobalVariable, Alloca))

    def possible_bases(self) -> Optional[frozenset]:
        """The set of objects this pointer may point into, or None when
        unbounded."""
        if self.has_distinct_base:
            return frozenset((self.base,))
        if self.base_set is not None:
            return self.base_set
        return None


@dataclass
class _Affine:
    """An index expression ``const + coeff * iv`` (or unknown)."""

    const: int = 0
    iv: Optional[Phi] = None
    coeff: int = 0
    exact: bool = True


def _affine_index(value: Value) -> _Affine:
    """Decompose an integer index into affine form."""
    if isinstance(value, Constant):
        v = value.value
        if v >= 1 << 31:
            v -= 1 << 32
        return _Affine(const=v)
    if isinstance(value, Phi):
        return _Affine(iv=value, coeff=1)
    if isinstance(value, Cast) and value.op in ("zext", "sext"):
        return _affine_index(value.value)
    if isinstance(value, BinaryOp):
        if value.op in ("add", "sub"):
            left = _affine_index(value.lhs)
            right = _affine_index(value.rhs)
            sign = -1 if value.op == "sub" else 1
            if left.exact and right.exact and (left.iv is None or right.iv is None):
                iv = left.iv or right.iv
                coeff = left.coeff + sign * right.coeff
                if right.iv is not None and value.op == "sub":
                    coeff = left.coeff - right.coeff
                return _Affine(left.const + sign * right.const, iv, coeff, True)
        if value.op == "mul":
            for a, b in ((value.lhs, value.rhs), (value.rhs, value.lhs)):
                if isinstance(b, Constant):
                    inner = _affine_index(a)
                    if inner.exact:
                        scale = b.value
                        if scale >= 1 << 31:
                            scale -= 1 << 32
                        return _Affine(inner.const * scale, inner.iv, inner.coeff * scale, True)
        if value.op == "shl" and isinstance(value.rhs, Constant) and value.rhs.value < 31:
            inner = _affine_index(value.lhs)
            if inner.exact:
                scale = 1 << value.rhs.value
                return _Affine(inner.const * scale, inner.iv, inner.coeff * scale, True)
    return _Affine(exact=False)


class AliasAnalysis:
    """Per-function alias queries over load/store pointer operands."""

    def __init__(self, function, mode: str = PRECISE, points_to=None):
        if mode not in ALIAS_MODES:
            raise ValueError(f"unknown alias mode {mode!r}")
        self.function = function
        self.mode = mode
        #: whole-program argument points-to (PDG precision); unused in
        #: conservative mode, which is function-local like basic AA.
        self.points_to = points_to
        self._cache: Dict[int, PointerInfo] = {}
        self._iv_cache: Dict[int, Dict[int, tuple]] = {}

    # -- pointer classification -----------------------------------------
    def classify(self, ptr: Value) -> PointerInfo:
        info = self._cache.get(id(ptr))
        if info is None:
            info = self._classify(ptr)
            self._cache[id(ptr)] = info
        return info

    def _classify(self, ptr: Value) -> PointerInfo:
        if isinstance(ptr, (GlobalVariable, Alloca)):
            return PointerInfo(base=ptr)
        if isinstance(ptr, Argument):
            # Offsets are tracked relative to the argument itself, so
            # within-argument disambiguation works regardless of the
            # points-to set bounding which objects it can reach.
            if self.mode != CONSERVATIVE and self.points_to is not None:
                bases = self.points_to.get(id(ptr))
                if bases is not None:
                    return PointerInfo(base=ptr, base_set=bases)
            return PointerInfo(base=ptr)
        if isinstance(ptr, GetElementPtr):
            base_info = self.classify(ptr.base)
            elem_size = ptr.element_size
            if self.mode == CONSERVATIVE:
                # Object granularity only: no within-object disambiguation.
                return PointerInfo(base=base_info.base, exact=False,
                                   base_set=base_info.base_set)
            idx = _affine_index(ptr.index)
            if not idx.exact or not base_info.exact:
                return PointerInfo(base=base_info.base, exact=False,
                                   base_set=base_info.base_set)
            if idx.iv is not None and base_info.iv is not None and idx.iv is not base_info.iv:
                return PointerInfo(base=base_info.base, exact=False)
            iv = base_info.iv or idx.iv
            coeff = base_info.coeff + idx.coeff * elem_size
            return PointerInfo(
                base=base_info.base,
                const_offset=base_info.const_offset + idx.const * elem_size,
                iv=iv,
                coeff=coeff,
                exact=True,
                base_set=base_info.base_set,
            )
        # Pointer phi / select / call result / unknown arithmetic.
        return PointerInfo(base=None, exact=False)

    # -- queries -------------------------------------------------------------
    def may_alias(self, ptr_a: Value, size_a: int, ptr_b: Value, size_b: int) -> bool:
        """May the two accesses overlap *within the same loop iteration*
        (or outside any loop)?"""
        a, b = self.classify(ptr_a), self.classify(ptr_b)
        distinct = self._distinct_bases(a, b)
        if distinct:
            return False
        if a.base is None or b.base is None or a.base is not b.base:
            return True  # unknown or possibly-equal bases
        if not (a.exact and b.exact):
            return True
        if a.iv is not b.iv:
            return True
        if a.iv is not None and a.coeff != b.coeff:
            return True
        return _ranges_overlap(a.const_offset, size_a, b.const_offset, size_b)

    def must_alias(self, ptr_a: Value, size_a: int, ptr_b: Value, size_b: int) -> bool:
        """Do the two accesses certainly start at the same address (same
        iteration)?"""
        if ptr_a is ptr_b:
            return True
        a, b = self.classify(ptr_a), self.classify(ptr_b)
        return (
            a.base is not None
            and a.base is b.base
            and a.exact
            and b.exact
            and a.iv is b.iv
            and a.coeff == b.coeff
            and a.const_offset == b.const_offset
        )

    def may_alias_cross_iteration(
        self,
        ptr_earlier: Value,
        size_e: int,
        ptr_later: Value,
        size_l: int,
        loop: Loop,
    ) -> bool:
        """May an access at iteration ``i`` (earlier) overlap an access at
        iteration ``i + k`` for some ``k >= 1`` (later) of ``loop``?"""
        a, b = self.classify(ptr_earlier), self.classify(ptr_later)
        if self._distinct_bases(a, b):
            return False
        if a.base is None or b.base is None or a.base is not b.base:
            return True
        if not (a.exact and b.exact):
            return True
        if a.iv is None and b.iv is None:
            # Loop-invariant addresses: same location every iteration.
            return _ranges_overlap(a.const_offset, size_e, b.const_offset, size_l)
        if self.mode != AFFINE:
            # The PDG has no dependence distances: an iv-dependent access
            # may revisit any address of its object in a later iteration.
            return True
        if a.iv is not b.iv or a.coeff != b.coeff:
            return True
        if a.iv is None:
            return _ranges_overlap(a.const_offset, size_e, b.const_offset, size_l)
        steps = self._iv_cache.get(id(loop))
        if steps is None:
            steps = find_induction_variables(loop)
            self._iv_cache[id(loop)] = steps
        entry = steps.get(id(a.iv))
        if entry is None:
            return True
        step_bytes = entry[1] * a.coeff
        if step_bytes == 0:
            return _ranges_overlap(a.const_offset, size_e, b.const_offset, size_l)
        # earlier: base + c1 + i*S ; later: base + c2 + (i+k)*S, k >= 1.
        # Overlap iff c1 - c2 - size_l < k*S < c1 - c2 + size_e for some k >= 1.
        c1, c2, s = a.const_offset, b.const_offset, step_bytes
        lo = c1 - c2 - size_l  # exclusive
        hi = c1 - c2 + size_e  # exclusive
        if s > 0:
            k_min = lo // s + 1
            k_max = -((-hi) // s) - 1  # largest k with k*s < hi
            return max(k_min, 1) <= k_max
        # With s < 0: k*s decreases as k grows; k*s < hi for k > hi/s.
        k_low = _ceil_div_exclusive(hi, s)
        k_high = _floor_div_exclusive(lo, s)
        return max(k_low, 1) <= k_high

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _distinct_bases(a: PointerInfo, b: PointerInfo) -> bool:
        """True when the two pointers provably point to different objects.

        Two different named objects never overlap; argument-rooted
        pointers are distinct from anything outside their points-to set
        (PDG precision) and otherwise distinct from nothing.
        """
        if a.base is b.base and a.base is not None:
            return False
        set_a, set_b = a.possible_bases(), b.possible_bases()
        if set_a is None or set_b is None:
            return False
        return not (set_a & set_b)


def _ranges_overlap(off_a: int, size_a: int, off_b: int, size_b: int) -> bool:
    return off_a < off_b + size_b and off_b < off_a + size_a


def _ceil_div_exclusive(value: int, divisor: int) -> int:
    """Smallest integer k with k*divisor < value (divisor < 0)."""
    # k > value / divisor  (inequality flips for negative divisor)
    import math

    return math.floor(value / divisor) + 1


def _floor_div_exclusive(value: int, divisor: int) -> int:
    """Largest integer k with k*divisor > value (divisor < 0)."""
    import math

    return math.ceil(value / divisor) - 1
