"""Profile-guided Expander — the paper's §6 "Code Profiling" future work,
implemented.

The heuristic Expander sometimes guesses wrong (§5.2.2: "To really
benefit from Expander, WARio would need code profiling information").
This module provides that loop: compile the program uninstrumented, run
the workload on the emulator collecting per-callee dynamic call counts,
then drive the Expander with the measured hotness instead of the static
innermost-loop heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..backend import Program
from ..emulator import Machine
from ..frontend import compile_sources
from ..ir import Module, verify_module
from ..ir.instructions import Call
from ..transforms.inline import can_inline, inline_call
from .expander import MAX_EXPAND_SIZE, _is_candidate_function
from .pipeline import EnvironmentConfig, compile_ir, environment


def collect_call_profile(
    sources: Union[str, List[str]],
    max_instructions: int = 30_000_000,
    name: str = "profile",
) -> Dict[str, int]:
    """Run the uninstrumented build once and return dynamic call counts
    per callee (the paper's missing profiler)."""
    from .pipeline import iclang

    program = iclang(sources, "plain", name=name)
    machine = Machine(program, war_check=False)
    machine.run(max_instructions=max_instructions)
    return dict(machine.stats.call_counts)


def profile_guided_expand(
    module: Module,
    call_profile: Dict[str, int],
    min_calls: int = 2,
) -> int:
    """Inline candidate (pointer-handling) functions whose *measured*
    call count reaches ``min_calls``, hottest call sites first.

    Unlike the static Expander, loop structure is ignored: the profile
    already says what is hot.  Returns the number of sites inlined.
    """
    hot = {
        name
        for name, count in call_profile.items()
        if count >= min_calls
        and name in module.functions
        and _is_candidate_function(module.functions[name])
    }
    inlined = 0
    for function in list(module.defined_functions()):
        sites: List[Call] = []
        for block in function.blocks:
            for instr in block.instructions:
                if not isinstance(instr, Call):
                    continue
                if instr.callee.name not in hot or not can_inline(instr):
                    continue
                size = sum(len(b) for b in instr.callee.blocks)
                if size > MAX_EXPAND_SIZE:
                    continue
                sites.append(instr)
        sites.sort(key=lambda c: -call_profile.get(c.callee.name, 0))
        for call in sites:
            if call.parent is None:
                continue
            inline_call(call)
            inlined += 1
    return inlined


def iclang_pgo(
    sources: Union[str, List[str]],
    env: Union[str, EnvironmentConfig] = "wario",
    min_calls: int = 2,
    name: str = "program",
    unroll_factor: Optional[int] = None,
) -> Program:
    """Two-phase profile-guided compilation: profile the plain build,
    then compile ``env`` with the profile-guided Expander replacing the
    heuristic one."""
    from dataclasses import replace

    profile = collect_call_profile(sources, name=f"{name}.profile")
    config = environment(env)
    if unroll_factor is not None:
        config = replace(config, unroll_factor=unroll_factor)
    # the heuristic expander is superseded by the profile-guided one
    config = replace(config, name=f"{config.name}-pgo", expander=False)
    if isinstance(sources, str):
        sources = [sources]
    module = compile_sources(sources, name)
    verify_module(module)

    from ..transforms import optimize_module
    from ..transforms.dce import run_on_module as run_dce
    from ..transforms.simplifycfg import run_on_module as run_simplify
    from .checkpoint_inserter import insert_checkpoints
    from .loop_write_clusterer import cluster_loop_writes
    from .write_clusterer import cluster_writes
    from ..backend import compile_to_program

    optimize_module(module)
    if config.loop_write_clusterer:
        cluster_loop_writes(
            module, unroll_factor=config.unroll_factor, alias_mode=config.alias_mode
        )
        run_dce(module)
    profile_guided_expand(module, profile, min_calls=min_calls)
    run_simplify(module)
    run_dce(module)
    if config.write_clusterer:
        cluster_writes(module, alias_mode=config.alias_mode)
    if config.instrument:
        insert_checkpoints(module, alias_mode=config.alias_mode)
    verify_module(module)
    return compile_to_program(
        module,
        spill_checkpoint_mode=config.spill_checkpoint_mode if config.instrument else None,
        epilogue_style=config.epilogue_style,
        entry_checkpoints=config.instrument,
    )
