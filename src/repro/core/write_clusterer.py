"""The Write Clusterer (paper §3.1.2).

Within each basic block, the store halves of *independent* WAR violations
are sunk down next to the block's last WAR store.  Unlike the Loop Write
Clusterer, no runtime checks are inserted: a store only moves when no
intervening instruction may depend on it (aliasing load or store, or a
call).  Clustered writes let the PDG Checkpoint Inserter break many WARs
with a single checkpoint (Figure 1, right).
"""

from __future__ import annotations

from typing import List, Set

from ..analysis import AliasAnalysis
from ..analysis.memdep import access_size
from ..ir.instructions import Call, Checkpoint, Load, Store


def cluster_writes(module, alias_mode: str = "precise") -> int:
    """Run the Write Clusterer on every function; returns the number of
    stores moved."""
    from ..analysis.pointsto import compute_points_to

    points_to = compute_points_to(module)
    moved = 0
    for function in module.defined_functions():
        aa = AliasAnalysis(function, alias_mode, points_to=points_to)
        for block in function.blocks:
            moved += cluster_block(block, aa)
    return moved


def _war_stores(block, aa: AliasAnalysis) -> List[Store]:
    """Stores that are the write half of a same-block forward WAR."""
    out: List[Store] = []
    loads_seen: List[Load] = []
    for instr in block.instructions:
        if isinstance(instr, Load):
            loads_seen.append(instr)
        elif isinstance(instr, Store):
            ssize = access_size(instr)
            for load in loads_seen:
                if aa.may_alias(load.pointer, access_size(load), instr.pointer, ssize):
                    out.append(instr)
                    break
    return out


def cluster_block(block, aa: AliasAnalysis) -> int:
    wars = _war_stores(block, aa)
    if len(wars) < 2:
        return 0
    anchor = wars[-1]
    anchor_idx = block.index_of(anchor)
    # Optimistically move every WAR store, then drop the ones whose path
    # to the anchor crosses a dependence, until the set is stable (a
    # store that stays in place can block an earlier mover).
    movable: List[Store] = list(wars[:-1])
    while True:
        moving_ids = {id(s) for s in movable}
        kept_movable = [
            s for s in movable if _can_sink_to(block, s, anchor_idx, aa, moving_ids)
        ]
        if len(kept_movable) == len(movable):
            break
        movable = kept_movable
    if not movable:
        return 0
    # Rebuild: remove movable stores, reinsert in original order just
    # before the anchor.
    movable_set = {id(s) for s in movable}
    kept = [i for i in block.instructions if id(i) not in movable_set]
    new_anchor_pos = next(
        idx for idx, instr in enumerate(kept) if instr is anchor
    )
    block.instructions = (
        kept[:new_anchor_pos] + movable + kept[new_anchor_pos:]
    )
    for instr in block.instructions:
        instr.parent = block
    return len(movable)


def _can_sink_to(block, store: Store, anchor_idx: int, aa: AliasAnalysis, moving_ids: Set[int]) -> bool:
    """May ``store`` move down to just before the anchor?

    Every skipped instruction must be independent: no call, no checkpoint,
    no aliasing load, and no aliasing store that stays in place.
    """
    start = block.index_of(store) + 1
    ssize = access_size(store)
    for idx in range(start, anchor_idx):
        between = block.instructions[idx]
        if isinstance(between, (Call, Checkpoint)):
            return False
        if isinstance(between, Load):
            if aa.may_alias(between.pointer, access_size(between), store.pointer, ssize):
                return False
        elif isinstance(between, Store):
            if id(between) in moving_ids:
                continue  # moves along, relative order preserved
            if aa.may_alias(between.pointer, access_size(between), store.pointer, ssize):
                return False
    return True
