"""The ``iclang`` compilation driver (paper §4.6).

One call takes mini-C sources to an executable image through a named
*environment* — the software environments of the evaluation (§5.1.3):

========================  ==========================================================
``plain``                 uninstrumented C (the normalisation baseline; NOT safe
                          under intermittent power)
``ratchet``               Ratchet: conservative built-in alias analysis, checkpoint
                          per WAR, naive back end
``r-pdg``                 Ratchet with NOELLE-precision PDG alias information
``epilog-optimizer``      R-PDG + the Epilog Optimizer only
``write-clusterer``       R-PDG + Write Clusterer + hitting-set spill inserter
``loop-write-clusterer``  R-PDG + Loop Write Clusterer + hitting-set spill inserter
``wario``                 complete WARio (both clusterers, hitting-set spill,
                          epilog optimizer)
``wario-expander``        WARio + the Expander inliner
``wario-summaries``       WARio + interprocedural mod/ref summaries
                          (cross-call checkpoint elision)
``ratchet-summaries``     Ratchet's alias analysis + the relaxed call model
``wario-opt``             WARio + summaries + certificate-guided checkpoint
                          elision (:mod:`repro.core.checkpoint_elim`)
``ratchet-opt``           ratchet-summaries + certificate-guided checkpoint
                          elision
========================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Union

from ..analysis.alias import CONSERVATIVE, PRECISE
from ..analysis.static_war import StaticWARError, verify_module_war
from ..backend import Program, encode_module, lower_module
from ..backend.mir_war import verify_mmodule_war
from ..frontend import compile_sources
from ..ir import Module, verify_module
from ..transforms import optimize_module
from ..transforms.dce import run_on_module as run_dce
from ..transforms.simplifycfg import run_on_module as run_simplify
from .checkpoint_inserter import insert_checkpoints
from .expander import expand
from .loop_write_clusterer import DEFAULT_UNROLL_FACTOR, cluster_loop_writes
from .write_clusterer import cluster_writes


@dataclass(frozen=True)
class EnvironmentConfig:
    """One software environment: which transformations run and how."""

    name: str
    instrument: bool = True
    alias_mode: str = PRECISE
    loop_write_clusterer: bool = False
    write_clusterer: bool = False
    expander: bool = False
    spill_checkpoint_mode: str = "basic"     # 'basic' | 'hitting-set'
    epilogue_style: str = "ratchet"          # 'plain' | 'ratchet' | 'wario'
    unroll_factor: int = DEFAULT_UNROLL_FACTOR
    #: extension (paper §6): bound the statically-estimated idempotent
    #: region length by inserting extra 'region-bound' checkpoints
    max_region_cycles: Optional[int] = None
    #: extension (paper §7): cache data generated and used within one
    #: idempotent region in registers (store-to-load forwarding)
    volatile_cache: bool = False
    #: relaxed call model: compute interprocedural mod/ref summaries
    #: (:mod:`repro.analysis.summaries`) and elide entry/epilogue
    #: checkpoints for transparent (summarised WAR-free) callees
    call_summaries: bool = False
    #: certificate-guided checkpoint elision
    #: (:mod:`repro.core.checkpoint_elim`): after insertion, elide every
    #: middle-end checkpoint whose merged region re-discharges all three
    #: certification legs (WAR-freedom, idempotence, progress budget)
    checkpoint_elim: bool = False
    #: estimated-cycle cap for an elision-merged region (None: the
    #: region-bound budget ``max_region_cycles`` if set, else
    #: :data:`repro.analysis.redundancy.DEFAULT_ELISION_BUDGET`)
    elision_budget: Optional[int] = None
    #: TEST-ONLY fault seeding: force-elide the Nth middle-end
    #: checkpoint (program order, counted like ``drop_checkpoint``)
    #: without requiring its elision proofs to discharge.  The
    #: certificate audit and the fault-injection campaign must both
    #: catch it; no named environment ever sets it.  Requires
    #: ``checkpoint_elim``.
    force_unsafe_elision: Optional[int] = None
    #: TEST-ONLY fault seeding: drop the Nth middle-end checkpoint after
    #: insertion.  The fault-injection campaign's mutation tests use this
    #: to prove the differential certifier catches a real consistency
    #: bug; no named environment ever sets it.
    drop_checkpoint: Optional[int] = None
    #: TEST-ONLY fault seeding (back end): lower Ratchet epilogues with
    #: raw pops, skipping the Idempotent Stack Pop Converter — each pop
    #: then re-reads bytes its own sp adjustment released inside an open
    #: region.  No named environment ever sets it.
    skip_pop_conversion: bool = False
    #: TEST-ONLY fault seeding (back end): lower WARio epilogues without
    #: the ``cpsid``/``cpsie`` interrupt mask — the frame release is then
    #: exposed to interrupt stacking before the exit checkpoint commits.
    #: No named environment ever sets it.
    drop_epilog_mask: bool = False

    @property
    def epilogue_bug(self) -> Optional[str]:
        """The seeded epilogue-lowering bug to pass to the back end."""
        if self.skip_pop_conversion:
            return "skip-pop-conversion"
        if self.drop_epilog_mask:
            return "drop-epilog-mask"
        return None


ENVIRONMENTS: Dict[str, EnvironmentConfig] = {
    "plain": EnvironmentConfig(
        "plain", instrument=False, epilogue_style="plain"
    ),
    "ratchet": EnvironmentConfig(
        "ratchet", alias_mode=CONSERVATIVE
    ),
    "r-pdg": EnvironmentConfig(
        "r-pdg"
    ),
    "epilog-optimizer": EnvironmentConfig(
        # The paper enables the hitting-set spill inserter for every WARio
        # variant EXCEPT this one, to isolate the epilog effect (§5.1.3).
        "epilog-optimizer", epilogue_style="wario"
    ),
    "write-clusterer": EnvironmentConfig(
        "write-clusterer", write_clusterer=True, spill_checkpoint_mode="hitting-set"
    ),
    "loop-write-clusterer": EnvironmentConfig(
        "loop-write-clusterer",
        loop_write_clusterer=True,
        spill_checkpoint_mode="hitting-set",
    ),
    "wario": EnvironmentConfig(
        "wario",
        loop_write_clusterer=True,
        write_clusterer=True,
        spill_checkpoint_mode="hitting-set",
        epilogue_style="wario",
    ),
    "wario-expander": EnvironmentConfig(
        "wario-expander",
        loop_write_clusterer=True,
        write_clusterer=True,
        expander=True,
        spill_checkpoint_mode="hitting-set",
        epilogue_style="wario",
    ),
    "wario-summaries": EnvironmentConfig(
        # WARio + interprocedural mod/ref summaries: transparent callees
        # keep no entry/epilogue checkpoints and stop acting as barriers.
        "wario-summaries",
        loop_write_clusterer=True,
        write_clusterer=True,
        spill_checkpoint_mode="hitting-set",
        epilogue_style="wario",
        call_summaries=True,
    ),
    "ratchet-summaries": EnvironmentConfig(
        # Ratchet's conservative alias analysis, but with the relaxed
        # call model: isolates the summary effect from PDG precision.
        "ratchet-summaries",
        alias_mode=CONSERVATIVE,
        call_summaries=True,
    ),
    "wario-opt": EnvironmentConfig(
        # Everything on: WARio + summaries + certificate-guided
        # checkpoint elision.  Every elision carries a machine-checkable
        # placement certificate and the module is re-certified end to
        # end, so the optimisation cannot trade safety for speed.
        "wario-opt",
        loop_write_clusterer=True,
        write_clusterer=True,
        spill_checkpoint_mode="hitting-set",
        epilogue_style="wario",
        call_summaries=True,
        checkpoint_elim=True,
    ),
    "ratchet-opt": EnvironmentConfig(
        # ratchet-summaries + certificate-guided elision: shows the
        # optimiser also recovers redundancy the conservative alias
        # analysis forces the inserter to create.
        "ratchet-opt",
        alias_mode=CONSERVATIVE,
        call_summaries=True,
        checkpoint_elim=True,
    ),
}


#: the EnvironmentConfig fields surfaced by the machine-readable
#: environment listing (``repro envs -o json`` and the server's ``envs``
#: request); TEST-ONLY fault-seeding knobs are deliberately excluded —
#: no named environment ever sets them
_PUBLIC_CONFIG_FIELDS = (
    "name", "instrument", "alias_mode", "loop_write_clusterer",
    "write_clusterer", "expander", "spill_checkpoint_mode",
    "epilogue_style", "unroll_factor", "max_region_cycles",
    "volatile_cache", "call_summaries", "checkpoint_elim",
    "elision_budget",
)


def environment_dict(config: EnvironmentConfig) -> Dict[str, object]:
    """One environment as a plain JSON-safe dict (public fields only)."""
    return {field: getattr(config, field) for field in _PUBLIC_CONFIG_FIELDS}


def environments_payload() -> List[Dict[str, object]]:
    """Every named environment, in registry order, as JSON-safe dicts —
    so clients can enumerate the grid without parsing the text listing."""
    return [environment_dict(config) for config in ENVIRONMENTS.values()]


def environment(name_or_config: Union[str, EnvironmentConfig]) -> EnvironmentConfig:
    if isinstance(name_or_config, EnvironmentConfig):
        return name_or_config
    try:
        return ENVIRONMENTS[name_or_config]
    except KeyError:
        raise ValueError(
            f"unknown environment {name_or_config!r}; "
            f"choose from {sorted(ENVIRONMENTS)}"
        ) from None


def _drop_nth_checkpoint(module: Module, index: int) -> None:
    """TEST-ONLY (``EnvironmentConfig.drop_checkpoint``): remove the
    ``index``-th middle-end checkpoint, in program order, to seed a WAR
    consistency bug the fault-injection campaign must catch."""
    seen = 0
    for function in module.defined_functions():
        for block in function.blocks:
            for instr in list(block):
                if instr.opcode == "checkpoint":
                    if seen == index:
                        block.remove(instr)
                        return
                    seen += 1
    raise ValueError(
        f"drop_checkpoint={index}: the module only has {seen} "
        f"middle-end checkpoints"
    )


def run_middle_end(
    module: Module, config: EnvironmentConfig, verify_static: bool = False
):
    """WARio's middle end in the Figure 2 order: always-inline + -O3,
    Loop Write Clusterer, Expander, Write Clusterer, PDG Checkpoint
    Inserter.

    ``verify_static`` re-proves WAR-freedom of the instrumented IR with
    the independent region-dataflow verifier
    (:mod:`repro.analysis.static_war`) and raises :class:`StaticWARError`
    if any region still contains a load-before-store pair.

    Returns the :class:`~repro.analysis.summaries.SummaryTable` when
    ``config.call_summaries`` is set (the back end needs the transparent
    set), else ``None``.  With ``config.checkpoint_elim`` the
    certificate-guided elision pass runs after insertion and its
    :class:`~repro.core.checkpoint_elim.ElisionReport` is attached to
    the module as ``module.elision_report`` (the lint driver audits it).
    """
    optimize_module(module)
    if config.volatile_cache:
        from ..transforms.volatile_cache import cache_volatile_data

        cache_volatile_data(module, alias_mode=config.alias_mode)
        run_dce(module)
    if config.loop_write_clusterer:
        cluster_loop_writes(
            module, unroll_factor=config.unroll_factor, alias_mode=config.alias_mode
        )
        run_dce(module)
    if config.expander:
        expand(module)
        run_simplify(module)
        run_dce(module)
    if config.write_clusterer:
        cluster_writes(module, alias_mode=config.alias_mode)
    summaries = None
    if config.instrument:
        if config.call_summaries:
            from ..analysis.summaries import compute_summaries

            summaries = compute_summaries(module, alias_mode=config.alias_mode)
            points_to = summaries.arg_points_to
        else:
            # One Andersen solve for the whole middle end: the inserter
            # and the elision pass share it instead of each recomputing.
            from ..analysis.pointsto import compute_points_to

            points_to = compute_points_to(module)
        insert_checkpoints(
            module, alias_mode=config.alias_mode, summaries=summaries,
            points_to=points_to,
        )
        if config.max_region_cycles is not None:
            from .region_bound import bound_region_sizes

            bound_region_sizes(module, config.max_region_cycles)
        if config.force_unsafe_elision is not None and not config.checkpoint_elim:
            raise ValueError(
                "force_unsafe_elision requires checkpoint_elim (the knob "
                "seeds a bug inside the elision pass)"
            )
        if config.checkpoint_elim:
            from .checkpoint_elim import elide_redundant_checkpoints

            module.elision_report = elide_redundant_checkpoints(
                module,
                alias_mode=config.alias_mode,
                summaries=summaries,
                points_to=points_to,
                budget=config.elision_budget or config.max_region_cycles,
                force_unsafe=config.force_unsafe_elision,
            )
        if config.drop_checkpoint is not None:
            _drop_nth_checkpoint(module, config.drop_checkpoint)
    verify_module(module)
    if verify_static:
        engine = verify_module_war(
            module,
            alias_mode=config.alias_mode,
            calls_are_checkpoints=config.instrument,
            summaries=summaries,
        )
        if engine.has_errors:
            raise StaticWARError(engine)
    return summaries


def compile_ir(
    module: Module,
    env: Union[str, EnvironmentConfig],
    verify_static: bool = False,
) -> Program:
    """Middle end + back end for an already-front-ended module.

    With ``verify_static=True`` the static WAR verifiers certify the
    module after each level — the instrumented middle-end IR and the
    final machine IR (spill slots, pops, epilogue frame releases) — plus
    the structural machine-IR checks; any error raises
    :class:`StaticWARError` / ``MIRVerificationError``.
    """
    config = environment(env)
    summaries = run_middle_end(module, config, verify_static=verify_static)
    transparent = (
        summaries.transparent_names() if summaries is not None else None
    )
    mmodule = lower_module(
        module,
        spill_checkpoint_mode=config.spill_checkpoint_mode if config.instrument else None,
        epilogue_style=config.epilogue_style,
        entry_checkpoints=config.instrument,
        verify=verify_static,
        transparent=transparent,
        epilogue_bug=config.epilogue_bug,
    )
    if verify_static:
        engine = verify_mmodule_war(
            mmodule,
            module,
            alias_mode=config.alias_mode,
            calls_are_checkpoints=config.instrument,
            summaries=summaries,
        )
        if engine.has_errors:
            raise StaticWARError(engine)
    program = encode_module(mmodule)
    report = getattr(module, "elision_report", None)
    if report is not None:
        # ride the elision count on the program so bench/eval cells can
        # report the optimisation trajectory without recompiling
        program.elisions = report.elided
    return program


def iclang(
    sources: Union[str, List[str]],
    env: Union[str, EnvironmentConfig] = "wario",
    unroll_factor: Optional[int] = None,
    name: str = "program",
    verify_static: bool = False,
    cache=None,
) -> Program:
    """The drop-in compilation driver: mini-C source(s) -> executable.

    ``unroll_factor`` overrides the Loop Write Clusterer's N (paper
    default: 8, found experimentally in §5.2.4).  ``verify_static``
    additionally certifies WAR-freedom at both IR and machine-IR level
    (see :func:`compile_ir`).

    Compilation is content-addressed: the result is looked up in (and
    stored to) the on-disk :mod:`repro.cache` keyed on the sources, the
    resolved environment config, and the toolchain fingerprint.  Pass
    ``cache=False`` to force a fresh compile, or a
    :class:`~repro.cache.CompileCache` instance to use a specific store
    (``None`` uses the process-wide default, honouring ``REPRO_CACHE``).
    """
    from ..cache import compile_key, resolve_cache

    config = environment(env)
    if unroll_factor is not None:
        config = replace(config, unroll_factor=unroll_factor)
    if isinstance(sources, str):
        sources = [sources]
    key = compile_key(sources, config, name=name, verify_static=verify_static)
    store = resolve_cache(cache)
    if store is not None:
        program = store.get(key)
        if program is not None:
            return program
    module = compile_sources(sources, name)
    verify_module(module)
    program = compile_ir(module, config, verify_static=verify_static)
    program.cache_key = key
    if store is not None:
        store.put(key, program)
    return program
