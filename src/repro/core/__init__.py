"""repro.core — WARio itself: the paper's compiler transformations and
the ``iclang`` driver that orchestrates them (paper §3/§4)."""

from .checkpoint_elim import (
    ElisionReport,
    audit_elisions,
    elide_redundant_checkpoints,
)
from .checkpoint_inserter import (
    insert_checkpoints,
    insert_function_checkpoints,
    war_candidate_positions,
)
from .expander import expand
from .hitting_set import greedy_hitting_set
from .loop_write_clusterer import (
    DEFAULT_UNROLL_FACTOR,
    ClusterReport,
    cluster_loop_writes,
    is_candidate,
)
from .lint import (
    LintResult,
    lint_benchmarks,
    lint_module,
    lint_sources,
    strip_checkpoints,
)
from .profiling import collect_call_profile, iclang_pgo, profile_guided_expand
from .region_bound import bound_region_sizes
from .pipeline import (
    ENVIRONMENTS,
    EnvironmentConfig,
    compile_ir,
    environment,
    iclang,
    run_middle_end,
)
from .write_clusterer import cluster_writes

__all__ = [
    "ElisionReport", "audit_elisions", "elide_redundant_checkpoints",
    "insert_checkpoints", "insert_function_checkpoints",
    "war_candidate_positions",
    "expand",
    "greedy_hitting_set",
    "cluster_loop_writes", "ClusterReport", "is_candidate",
    "DEFAULT_UNROLL_FACTOR",
    "cluster_writes",
    "collect_call_profile", "iclang_pgo", "profile_guided_expand",
    "bound_region_sizes",
    "iclang", "compile_ir", "run_middle_end",
    "ENVIRONMENTS", "EnvironmentConfig", "environment",
    "LintResult", "lint_module", "lint_sources", "lint_benchmarks",
    "strip_checkpoints",
]
