"""Region-size bounding — the paper's §6 "Location-specific Checkpoints"
discussion, implemented.

WARio never inserts user/application-specific checkpoints, so a device
whose power-on window is shorter than the largest idempotent region makes
no forward progress (the emulator's ``NoForwardProgress``).  The paper
leaves automatic region shrinking to future work; this pass provides the
straightforward version: estimate cycles along every path since the last
checkpoint and insert a ``region-bound`` checkpoint wherever the estimate
would exceed a budget.

The estimate uses a static per-instruction cycle table, so the guarantee
is approximate (back-end expansion adds spill/call/prologue cycles); use
a safety margin when sizing the budget against a physical on-time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.instructions import (
    CKPT_REGION_BOUND,
    Call,
    Checkpoint,
    Load,
    Phi,
    Store,
)

#: Rough middle-end cycle estimates per instruction (the back end expands
#: some of these into several machine instructions).
_DEFAULT_COST = 2
_COSTS = {
    "load": 3,
    "store": 3,
    "call": 8,        # plus the callee, which is bounded separately
    "udiv": 9,
    "sdiv": 9,
    "urem": 12,
    "srem": 12,
    "checkpoint": 0,
    "phi": 0,
}


def _cost(instr) -> int:
    return _COSTS.get(instr.opcode, _DEFAULT_COST)


def bound_region_sizes(module, max_cycles: int, max_rounds: int = 10_000) -> int:
    """Insert region-bound checkpoints so that no path executes more than
    ~``max_cycles`` (statically estimated) without a checkpoint.

    Calls count as region boundaries (the callee's entry checkpoint), and
    each callee is bounded independently.  Returns the number of
    checkpoints inserted.
    """
    if max_cycles <= 0:
        raise ValueError("max_cycles must be positive")
    total = 0
    for function in module.defined_functions():
        total += _bound_function(function, max_cycles, max_rounds)
    return total


def _bound_function(function, max_cycles: int, max_rounds: int) -> int:
    inserted = 0
    for _ in range(max_rounds):
        position = _find_first_overflow(function, max_cycles)
        if position is None:
            return inserted
        block, idx = position
        block.insert(idx, Checkpoint(CKPT_REGION_BOUND))
        inserted += 1
    raise RuntimeError(
        f"@{function.name}: region bounding did not converge "
        f"(budget {max_cycles} too small for a single instruction?)"
    )


def _find_first_overflow(function, max_cycles: int):
    """Worst-case cycles-since-checkpoint dataflow; returns the first
    (block, index) whose execution would exceed the budget, or None."""
    entry_gap: Dict[int, int] = {id(b): 0 for b in function.blocks}
    entry_gap[id(function.entry)] = 0
    # iterate to a fixed point over the max-gap-at-block-entry values
    for _ in range(len(function.blocks) * 4 + 8):
        changed = False
        for block in function.blocks:
            gap = entry_gap[id(block)]
            overflow_idx = _scan_block(block, gap, max_cycles)
            if overflow_idx is not None:
                return block, overflow_idx
            out_gap = _block_exit_gap(block, gap)
            for succ in block.successors:
                if out_gap > entry_gap[id(succ)]:
                    entry_gap[id(succ)] = out_gap
                    changed = True
        if not changed:
            return None
    # a cycle kept increasing the gap without a checkpoint on it: the
    # loop's body itself must be split
    for block in function.blocks:
        overflow_idx = _scan_block(block, entry_gap[id(block)], max_cycles)
        if overflow_idx is not None:
            return block, overflow_idx
    # every block ends under budget but the back edge accumulates: insert
    # at the end of the block with the largest exit gap inside a cycle
    worst = max(function.blocks, key=lambda b: _block_exit_gap(b, entry_gap[id(b)]))
    idx = len(worst.instructions)
    if worst.terminator is not None:
        idx -= 1
    return worst, max(idx, worst.first_insertion_index())


def _scan_block(block, gap: int, max_cycles: int) -> Optional[int]:
    for idx, instr in enumerate(block.instructions):
        if isinstance(instr, (Checkpoint, Call)):
            gap = 0
            continue
        gap += _cost(instr)
        if gap > max_cycles:
            return max(idx, block.first_insertion_index())
    return None


def _block_exit_gap(block, gap: int) -> int:
    for instr in block.instructions:
        if isinstance(instr, (Checkpoint, Call)):
            gap = 0
        else:
            gap += _cost(instr)
    return gap
