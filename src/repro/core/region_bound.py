"""Region-size bounding — the paper's §6 "Location-specific Checkpoints"
discussion, implemented.

WARio never inserts user/application-specific checkpoints, so a device
whose power-on window is shorter than the largest idempotent region makes
no forward progress (the emulator's ``NoForwardProgress``).  The paper
leaves automatic region shrinking to future work; this pass provides the
straightforward version: estimate cycles along every path since the last
checkpoint and insert a ``region-bound`` checkpoint wherever the estimate
would exceed a budget.

The estimate uses a static per-instruction cycle table, so the guarantee
is approximate (back-end expansion adds spill/call/prologue cycles); use
a safety margin when sizing the budget against a physical on-time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.instructions import (
    CKPT_REGION_BOUND,
    Call,
    Checkpoint,
    Load,
    Phi,
    Store,
)

#: Rough middle-end cycle estimates per instruction (the back end expands
#: some of these into several machine instructions).
_DEFAULT_COST = 2


def _derive_costs(model) -> Dict[str, int]:
    """Build the middle-end estimate table from the emulator's real
    :class:`~repro.emulator.costs.CostModel`, so the two cannot silently
    diverge (``tests/test_region_bound.py`` pins the parity).

    The ``+`` terms are the back end's expansion overhead per IR op:
    one address-materialising instruction around each memory access,
    argument marshalling plus the taken-``bl`` refill around each call,
    and the ``mul``/``sub`` fix-up pair the remainder lowering emits
    after its division."""
    base = model.base_costs
    div = base["udiv"]
    return {
        "load": base["ldr"] + 1,
        "store": base["str"] + 1,
        # plus the callee, which is bounded separately
        "call": base["bl"] + model.pipeline_refill + 4,
        "udiv": div + 1,
        "sdiv": base["sdiv"] + 1,
        "urem": div + base["mul"] + base["sub"] + 2,
        "srem": base["sdiv"] + base["mul"] + base["sub"] + 2,
        "checkpoint": base["checkpoint"],  # charged as checkpoint_cycles
        "phi": 0,
    }


def _default_costs() -> Dict[str, int]:
    from ..emulator.costs import DEFAULT_COSTS

    return _derive_costs(DEFAULT_COSTS)


_COSTS = _default_costs()


def _cost(instr) -> int:
    return _COSTS.get(instr.opcode, _DEFAULT_COST)


def bound_region_sizes(module, max_cycles: int, max_rounds: int = 10_000) -> int:
    """Insert region-bound checkpoints so that no path executes more than
    ~``max_cycles`` (statically estimated) without a checkpoint.

    Calls count as region boundaries (the callee's entry checkpoint), and
    each callee is bounded independently.  Returns the number of
    checkpoints inserted.
    """
    if max_cycles <= 0:
        raise ValueError("max_cycles must be positive")
    total = 0
    for function in module.defined_functions():
        total += _bound_function(function, max_cycles, max_rounds)
    return total


def _bound_function(function, max_cycles: int, max_rounds: int) -> int:
    inserted = 0
    for _ in range(max_rounds):
        position = _find_first_overflow(function, max_cycles)
        if position is None:
            return inserted
        block, idx = position
        block.insert(idx, Checkpoint(CKPT_REGION_BOUND))
        inserted += 1
    raise RuntimeError(
        f"@{function.name}: region bounding did not converge "
        f"(budget {max_cycles} too small for a single instruction?)"
    )


def _find_first_overflow(function, max_cycles: int):
    """Worst-case cycles-since-checkpoint dataflow; returns the first
    (block, index) whose execution would exceed the budget, or None."""
    entry_gap: Dict[int, int] = {id(b): 0 for b in function.blocks}
    entry_gap[id(function.entry)] = 0
    # iterate to a fixed point over the max-gap-at-block-entry values
    for _ in range(len(function.blocks) * 4 + 8):
        changed = False
        for block in function.blocks:
            gap = entry_gap[id(block)]
            overflow_idx = _scan_block(block, gap, max_cycles)
            if overflow_idx is not None:
                return block, overflow_idx
            out_gap = _block_exit_gap(block, gap)
            for succ in block.successors:
                if out_gap > entry_gap[id(succ)]:
                    entry_gap[id(succ)] = out_gap
                    changed = True
        if not changed:
            return None
    # a cycle kept increasing the gap without a checkpoint on it: the
    # loop's body itself must be split
    for block in function.blocks:
        overflow_idx = _scan_block(block, entry_gap[id(block)], max_cycles)
        if overflow_idx is not None:
            return block, overflow_idx
    # every block ends under budget but the back edge accumulates: insert
    # at the end of the block with the largest exit gap inside a cycle
    worst = max(function.blocks, key=lambda b: _block_exit_gap(b, entry_gap[id(b)]))
    idx = len(worst.instructions)
    if worst.terminator is not None:
        idx -= 1
    return worst, max(idx, worst.first_insertion_index())


def _scan_block(block, gap: int, max_cycles: int) -> Optional[int]:
    for idx, instr in enumerate(block.instructions):
        if isinstance(instr, (Checkpoint, Call)):
            gap = 0
            continue
        gap += _cost(instr)
        if gap > max_cycles:
            return max(idx, block.first_insertion_index())
    return None


def _block_exit_gap(block, gap: int) -> int:
    for instr in block.instructions:
        if isinstance(instr, (Checkpoint, Call)):
            gap = 0
        else:
            gap += _cost(instr)
    return gap
