"""Greedy minimum hitting set for checkpoint placement.

Both the middle-end PDG Checkpoint Inserter and the back-end Hitting Set
Stack Spill Checkpoint Inserter (paper §3.1.2/§3.1.3, after de Kruijf et
al. [11, §4.2.1]) reduce checkpoint placement to: every WAR violation
contributes a *set of candidate locations* that would break it; choose a
minimum-cost set of locations hitting every WAR's set.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Set


def greedy_hitting_set(
    requirements: Sequence[Iterable[Hashable]],
    cost: Callable[[Hashable], float] = lambda _key: 1.0,
) -> List[Hashable]:
    """Pick locations hitting every requirement set, greedily by
    covered-per-cost.

    Each entry of ``requirements`` is the candidate-location set of one
    WAR violation; the returned list of locations hits every non-empty
    set.  Empty candidate sets are a caller bug and raise ``ValueError``
    (every WAR always admits at least the position just before its
    write).
    """
    reqs: List[Set[Hashable]] = []
    for req in requirements:
        req_set = set(req)
        if not req_set:
            raise ValueError("a WAR violation has no candidate locations")
        reqs.append(req_set)

    # Incremental bookkeeping: coverage per key plus the requirement sets
    # each key appears in, so choosing a location only touches the
    # requirements it satisfies.
    coverage: Dict[Hashable, int] = {}
    members: Dict[Hashable, List[int]] = {}
    alive = [True] * len(reqs)
    alive_count = len(reqs)
    for idx, req in enumerate(reqs):
        for key in req:
            coverage[key] = coverage.get(key, 0) + 1
            members.setdefault(key, []).append(idx)
    inv_cost = {key: 1.0 / max(cost(key), 1e-9) for key in coverage}

    chosen: List[Hashable] = []
    while alive_count:
        # Highest coverage-per-cost wins; ties break deterministically on
        # the key itself so runs are reproducible.
        best = None
        best_ratio = -1.0
        for key, count in coverage.items():
            if count <= 0:
                continue
            ratio = count * inv_cost[key]
            if ratio > best_ratio or (
                ratio == best_ratio and _stable(key) > _stable(best)
            ):
                best = key
                best_ratio = ratio
        chosen.append(best)
        for idx in members[best]:
            if not alive[idx]:
                continue
            alive[idx] = False
            alive_count -= 1
            for key in reqs[idx]:
                coverage[key] -= 1
    return chosen


def _stable(key: Hashable):
    """A deterministic tiebreak ordering for candidate keys."""
    try:
        return tuple(
            part if isinstance(part, (int, str, float)) else str(part)
            for part in key
        )
    except TypeError:
        return (str(key),)
