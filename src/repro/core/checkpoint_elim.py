"""Certificate-guided checkpoint elision (the placement optimiser).

The PDG Checkpoint Inserter solves a greedy hitting set, which may
overshoot: a chosen position can be covered by the union of the others,
or a WAR it was chosen for may also be broken by a barrier the inserter
did not model as precisely as the verifiers do.  This pass runs *after*
insertion and elides every checkpoint the merged-region redundancy
analysis (:mod:`repro.analysis.redundancy`) can prove unnecessary:

1. candidates are ordered hottest-first — by loop depth of the owning
   block (``10 ** depth``), optionally scaled by a dynamic call-count
   profile from :func:`repro.core.profiling.collect_call_profile` — so
   the checkpoints that execute most are the first to go;
2. each candidate's two adjacent regions are abstractly merged and the
   three certification legs (WAR-freedom, idempotence, progress budget)
   are re-discharged on the merge; only a fully-discharged candidate is
   elided;
3. a fixpoint loop re-runs until no candidate survives.  Every decision
   re-solves against the current (already-elided) IR, and a failed
   candidate is retired permanently: removing a barrier only grows the
   exposed-fact sets, so redundancy is monotonically *lost*, never
   gained — one ordered pass reaches the fixpoint and the second pass
   merely confirms it.

Every elision emits a machine-checkable JSON certificate naming the
three sub-proofs (the ``placement-*`` family).  ``repro lint`` at
``--level full`` audits the certificates (:func:`audit_elisions`) and
re-certifies the optimised module end-to-end with the independent WAR /
idempotence / progress verifiers, so an unsound elision cannot escape:
it would be flagged both by the certificate audit and by the
re-certification.

The TEST-ONLY ``EnvironmentConfig.force_unsafe_elision`` knob elides the
N-th middle-end checkpoint *without* requiring its proofs to discharge
(they are still evaluated and recorded), seeding a true positive the
audit must flag statically (``placement-unsafe-elision``) and the
fault-injection differential campaign must reproduce dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import AliasAnalysis, loop_info
from ..analysis.idempotence import CERTIFIED, VIOLATED
from ..analysis.redundancy import (
    DEFAULT_ELISION_BUDGET,
    ElisionDecision,
    RedundancyAnalysis,
)
from ..diagnostics import LEVEL_CERTIFY, DiagnosticEngine

#: Diagnostic codes of the placement family.
PLACEMENT_UNSAFE = "placement-unsafe-elision"
PLACEMENT_FORCED = "placement-forced-elision"


@dataclass
class ElisionReport:
    """The outcome of one elision pass over a module."""

    #: estimated-cycle budget the progress sub-proofs were held to
    budget: int
    #: candidates whose sub-proofs were evaluated (including retained)
    examined: int = 0
    #: checkpoints actually removed
    elided: int = 0
    #: per-elision certificates (one per *removed* checkpoint)
    certificates: List[Dict[str, object]] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        return (
            CERTIFIED
            if all(c["verdict"] == CERTIFIED for c in self.certificates)
            else VIOLATED
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "examined": self.examined,
            "elided": self.elided,
            "verdict": self.verdict,
            "certificates": self.certificates,
        }


def _certificate(decision: ElisionDecision) -> Dict[str, object]:
    """One machine-checkable per-elision certificate."""
    return {
        "function": decision.function,
        "checkpoint": {
            "block": decision.block,
            "index": decision.index,
            "cause": decision.cause,
        },
        "verdict": CERTIFIED if decision.redundant else VIOLATED,
        "forced": decision.forced,
        "weight": decision.weight,
        "subproofs": decision.subproofs,
    }


def elide_redundant_checkpoints(
    module,
    alias_mode: str = "precise",
    summaries=None,
    points_to=None,
    budget: Optional[int] = None,
    force_unsafe: Optional[int] = None,
    profile: Optional[Dict[str, int]] = None,
) -> ElisionReport:
    """Elide every provably redundant middle-end checkpoint of
    ``module``; returns the :class:`ElisionReport` with one certificate
    per elision.

    ``points_to`` is the whole-program points-to map (computed by the
    caller once and shared with the inserter); with ``summaries`` the
    relaxed call model applies exactly as it did during insertion.
    ``profile`` (callee name → dynamic call count, e.g. from
    :func:`repro.core.profiling.collect_call_profile`) scales the
    loop-depth ordering weight so measured-hot functions elide first.
    ``force_unsafe`` is the TEST-ONLY seeding knob described above.
    """
    if budget is None:
        budget = DEFAULT_ELISION_BUDGET
    if points_to is None and summaries is not None:
        points_to = summaries.arg_points_to
    if points_to is None:
        from ..analysis.pointsto import compute_points_to

        points_to = compute_points_to(module)

    from ..analysis.progress import argument_constants
    from ..analysis.summaries import _call_graph_sccs

    arg_constants = argument_constants(module)
    report = ElisionReport(budget=budget)
    analyses: Dict[str, RedundancyAnalysis] = {}
    weights: Dict[str, Dict[int, float]] = {}
    for function in module.defined_functions():
        aa = AliasAnalysis(function, alias_mode, points_to=points_to)
        li = loop_info(function)
        analyses[function.name] = RedundancyAnalysis(
            function, aa, li, summaries=summaries, budget=budget,
            arg_constants=arg_constants,
        )
        hotness = float((profile or {}).get(function.name, 1) or 1)
        weights[function.name] = {
            id(ckpt): (10.0 ** li.depth_of(ckpt.parent)) * hotness
            for ckpt in analyses[function.name].candidates()
        }

    if force_unsafe is not None:
        _force_elide(module, analyses, weights, force_unsafe, report)

    # Callees before callers (bottom-up over the call graph): a caller's
    # progress sub-proof splices transparent-callee summaries, so every
    # callee must reach its own elision fixpoint first — its summary is
    # then final when the caller memoises it.
    bottom_up = [fn for scc in _call_graph_sccs(module) for fn in scc]
    for function in bottom_up:
        analysis = analyses[function.name]
        fweights = weights[function.name]
        retired: set = set()
        progressed = True
        while progressed:  # fixpoint: until no candidate survives
            progressed = False
            live = [c for c in analysis.candidates()
                    if id(c) not in retired]
            # hottest first; ties broken by layout position for
            # determinism (candidates() yields layout order)
            order = sorted(
                range(len(live)),
                key=lambda i: (-fweights.get(id(live[i]), 1.0), i),
            )
            for i in order:
                ckpt = live[i]
                if ckpt.parent is None:
                    continue  # removed earlier in this round
                decision = analysis.decide(
                    ckpt, weight=fweights.get(id(ckpt), 1.0)
                )
                report.examined += 1
                if decision.redundant:
                    ckpt.parent.remove(ckpt)
                    report.elided += 1
                    report.certificates.append(_certificate(decision))
                    progressed = True
                else:
                    # monotone: later elisions only add exposed facts,
                    # so a failed candidate can never become redundant
                    retired.add(id(ckpt))
    return report


def _force_elide(module, analyses, weights, index: int,
                 report: ElisionReport) -> None:
    """TEST-ONLY: elide the ``index``-th middle-end checkpoint (program
    order, counted like ``drop_checkpoint``) regardless of its proofs,
    recording the certificate with ``forced=True``."""
    seen = 0
    for function in module.defined_functions():
        analysis = analyses[function.name]
        for ckpt in analysis.candidates():
            if seen == index:
                decision = analysis.decide(
                    ckpt,
                    weight=weights[function.name].get(id(ckpt), 1.0),
                    forced=True,
                )
                report.examined += 1
                ckpt.parent.remove(ckpt)
                report.elided += 1
                report.certificates.append(_certificate(decision))
                return
            seen += 1
    raise ValueError(
        f"force_unsafe_elision={index}: the module only has {seen} "
        f"middle-end checkpoints"
    )


def audit_elisions(report: ElisionReport,
                   engine: Optional[DiagnosticEngine] = None
                   ) -> DiagnosticEngine:
    """Re-check the elision certificates: every sub-proof of every
    elision must be discharged.  A certificate with an undischarged
    sub-proof (the ``force_unsafe_elision`` seeding, or an analysis bug)
    raises ``placement-unsafe-elision``; a forced-but-provably-safe
    elision is only a warning (the knob was used but the merge holds).
    """
    if engine is None:
        engine = DiagnosticEngine()
    for cert in report.certificates:
        where = (
            f"{cert['checkpoint']['block']}@{cert['checkpoint']['index']}"
        )
        bad = [o for o in cert["subproofs"] if o["status"] != "discharged"]
        if bad:
            kinds = ", ".join(o["kind"] for o in bad)
            engine.error(
                PLACEMENT_UNSAFE,
                f"checkpoint at {where} was elided with undischarged "
                f"sub-proof(s) ({kinds}): the merged region is not "
                f"certified and re-execution after a power failure may "
                f"diverge",
                function=cert["function"],
                region=where,
                level=LEVEL_CERTIFY,
            )
        elif cert.get("forced"):
            engine.warning(
                PLACEMENT_FORCED,
                f"checkpoint at {where} was force-elided but all three "
                f"sub-proofs discharge (the seeded knob picked a "
                f"provably redundant checkpoint)",
                function=cert["function"],
                region=where,
                level=LEVEL_CERTIFY,
            )
    return engine


__all__ = [
    "PLACEMENT_UNSAFE", "PLACEMENT_FORCED",
    "ElisionReport", "audit_elisions", "elide_redundant_checkpoints",
]
