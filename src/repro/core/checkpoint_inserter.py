"""The PDG Checkpoint Inserter (paper §3.1.2).

For every remaining WAR violation, compute the set of positions that
break it (a checkpoint anywhere strictly after the read and before the
write, on every read->write path), weight positions by loop depth, and
run the greedy minimum hitting set.  Because the Write Clusterer passes
have moved WAR writes next to each other, overlapping candidate sets let
one checkpoint resolve many WARs — the mechanism behind WARio's
checkpoint reduction.

Positions are keyed by (block name, index) so placement is fully
deterministic; among equal-coverage-per-cost candidates the position
directly before a WAR write wins (Ratchet's natural location, usually
the most rarely executed choice when the write is guarded).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..analysis import AliasAnalysis, WARViolation, find_wars, loop_info
from ..analysis.memdep import FORWARD
from ..ir.instructions import CKPT_MIDDLE_END, Checkpoint
from .hitting_set import greedy_hitting_set


def insert_checkpoints(module, alias_mode: str = "precise", summaries=None,
                       points_to=None) -> int:
    """Break every WAR violation in every function; returns the number of
    checkpoints inserted.

    With ``summaries`` (a :class:`~repro.analysis.summaries.SummaryTable`)
    the relaxed call model applies: transparent callees are not barriers,
    and their ref/mod sets participate as WAR endpoints, so a checkpoint
    in the caller can break a WAR that spans the call.

    ``points_to`` is an optional precomputed whole-program points-to map:
    a caller that already solved Andersen's analysis (the pipeline shares
    one solve between this pass and the elision pass) threads it through
    instead of paying a duplicate whole-program solve here.
    """
    if points_to is None:
        if summaries is not None:
            points_to = summaries.arg_points_to
        else:
            from ..analysis.pointsto import compute_points_to

            points_to = compute_points_to(module)
    total = 0
    for function in module.defined_functions():
        total += insert_function_checkpoints(
            function, alias_mode, points_to, summaries
        )
    return total


def insert_function_checkpoints(
    function, alias_mode: str = "precise", points_to=None, summaries=None
) -> int:
    aa = AliasAnalysis(function, alias_mode, points_to=points_to)
    li = loop_info(function)
    wars = find_wars(
        function, aa, li, calls_are_checkpoints=True, summaries=summaries
    )
    if not wars:
        return 0
    wars = prune_dominated_wars(wars)
    articulation_cache: Dict[Tuple[int, int], List] = {}
    requirements = [
        war_candidate_positions(war, function, articulation_cache) for war in wars
    ]

    blocks_by_name = {b.name: b for b in function.blocks}
    depth_cache: Dict[str, int] = {}
    # Prefer the position directly before each WAR write on ties.
    preferred: Set[Tuple[str, int]] = set()
    for war in wars:
        sblock = war.store.parent
        preferred.add((sblock.name, sblock.index_of(war.store)))

    def cost(key) -> float:
        block_name, _idx = key
        if block_name not in depth_cache:
            depth_cache[block_name] = li.depth_of(blocks_by_name[block_name])
        base = float(10 ** depth_cache[block_name])
        return base * (0.999 if key in preferred else 1.0)

    chosen = greedy_hitting_set(requirements, cost)
    _insert_at(function, chosen, blocks_by_name)
    return len(chosen)


def prune_dominated_wars(wars: List[WARViolation]) -> List[WARViolation]:
    """Drop WARs whose candidate sets are supersets of another WAR's.

    For two WARs with the same (load block, store block, kind), the
    candidate positions are purely positional: a later load and an
    earlier store yield a *subset* candidate set, so hitting it also hits
    the other pair.  Keeping only the Pareto frontier (maximal load
    index, minimal store index) collapses the quadratic pair blow-up of
    unrolled loops without changing the chosen checkpoints.
    """
    positions: Dict[int, int] = {}

    def index_of(instr) -> int:
        idx = positions.get(id(instr))
        if idx is None:
            for i, candidate in enumerate(instr.parent.instructions):
                positions[id(candidate)] = i
            idx = positions[id(instr)]
        return idx

    groups: Dict[Tuple[int, int, str], List[WARViolation]] = {}
    for war in wars:
        key = (id(war.load.parent), id(war.store.parent), war.kind)
        groups.setdefault(key, []).append(war)
    kept: List[WARViolation] = []
    for group in groups.values():
        if len(group) == 1:
            kept.extend(group)
            continue
        indexed = [
            (index_of(war.load), index_of(war.store), war) for war in group
        ]
        # sort by load index descending; keep wars whose store index is a
        # new minimum (not dominated by any same-or-later load)
        indexed.sort(key=lambda t: (-t[0], t[1]))
        best_sidx = None
        for lidx, sidx, war in indexed:
            if best_sidx is None or sidx < best_sidx:
                kept.append(war)
                best_sidx = sidx
    return kept


def war_candidate_positions(
    war: WARViolation, function=None, articulation_cache=None
) -> List[Tuple[str, int]]:
    """Candidate checkpoint positions for one WAR violation.

    A position ``(block name, j)`` means "insert before instruction j of
    that block".  Valid positions must lie on *every* read->write path:

    * same-block forward WAR: the gaps strictly after the load, up to and
      including just before the store;
    * otherwise: the positions after the load in the load's block (every
      path from the load crosses them), the positions up to the store in
      the store's block (every path into the store crosses them), and all
      positions of any *articulation* block that every load->store path
      traverses — crucial for clustered writes in unrolled loop chains,
      where the single cluster point must cover WARs whose endpoints sit
      in other replicas.
    """
    load, store = war.load, war.store
    lblock, sblock = load.parent, store.parent
    lidx = lblock.index_of(load)
    sidx = sblock.index_of(store)
    positions: List[Tuple[str, int]] = []
    if lblock is sblock and war.kind == FORWARD:
        return [(lblock.name, j) for j in range(lidx + 1, sidx + 1)]
    # Suffix of the load's block (never beyond the terminator).
    last = len(lblock.instructions)
    if lblock.terminator is not None:
        last -= 1
    positions.extend((lblock.name, j) for j in range(lidx + 1, last + 1))
    # Prefix of the store's block, after any phis, up to the store —
    # excluding positions at/before the load when it shares the block
    # (backward same-block WARs have sidx <= lidx, so this is safe).
    first = sblock.first_insertion_index()
    positions.extend(
        (sblock.name, j)
        for j in range(first, sidx + 1)
        if not (sblock is lblock and j > lidx)
    )
    fn = function if function is not None else lblock.parent
    if articulation_cache is None:
        articulation_cache = {}
    cache_key = (id(lblock), id(sblock))
    articulation = articulation_cache.get(cache_key)
    if articulation is None:
        articulation = blocks_on_every_path(
            lblock, sblock, fn.blocks, lambda b: b.successors
        )
        articulation_cache[cache_key] = articulation
    for block in articulation:
        b_first = block.first_insertion_index()
        b_last = len(block.instructions)
        if block.terminator is not None:
            b_last -= 1
        positions.extend((block.name, j) for j in range(b_first, b_last + 1))
    return positions


def blocks_on_every_path(lblock, sblock, all_blocks, succs_of) -> List:
    """Blocks (other than the endpoints) that every path from the load's
    block exit to the store's block entry must traverse.

    Classic equivalence: a block lies on every path from s's exit to t
    iff it dominates t in the graph rooted at a virtual node whose
    successors are s's successors.  One dominator computation serves all
    queries from the same source block (see :func:`_source_dominators`).
    """
    idom, reachable = _source_dominators(lblock, all_blocks, succs_of)
    if id(sblock) not in reachable:
        return []
    out: List = []
    node_id = idom.get(id(sblock))
    while node_id is not None:
        block = reachable.get(node_id)
        if block is None:  # reached the virtual root
            break
        if block is not lblock and block is not sblock:
            out.append(block)
        node_id = idom.get(node_id)
    return out


def _source_dominators(lblock, all_blocks, succs_of):
    """Immediate dominators (by block id) of the CFG rooted at a virtual
    node preceding ``lblock``'s successors, plus the reachable-block map.

    Results are cached on the source block for the duration of the
    containing pass (keyed by a shared dict attached to the function via
    the caller's articulation cache, so here a plain per-call memo on the
    block object would leak; instead the caller-level cache in
    ``insert_function_checkpoints``/``find_spill_wars`` keeps pair-level
    results, and this function memoises per (source, graph size)).
    """
    cache = getattr(_source_dominators, "_cache", None)
    key = (id(lblock), len(all_blocks))
    if cache is not None and cache.get("key0") is all_blocks and key in cache:
        return cache[key]

    root_id = -1
    succ_map = {id(b): [id(s) for s in succs_of(b)] for b in all_blocks}
    succ_map[root_id] = [id(s) for s in succs_of(lblock)]
    blocks_by_id = {id(b): b for b in all_blocks}

    # reverse postorder from the virtual root
    order: List[int] = []
    visited = set()
    stack = [(root_id, iter(succ_map[root_id]))]
    visited.add(root_id)
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(succ_map.get(nxt, []))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    rpo = list(reversed(order))
    rpo_index = {node: i for i, node in enumerate(rpo)}
    preds: Dict[int, List[int]] = {node: [] for node in rpo}
    for node in rpo:
        for nxt in succ_map.get(node, []):
            if nxt in rpo_index:
                preds[nxt].append(node)

    idom: Dict[int, int] = {root_id: root_id}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root_id:
                continue
            new_idom = None
            for pred in preds[node]:
                if pred in idom:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True

    reachable = {
        node: blocks_by_id[node] for node in rpo if node != root_id
    }
    # root is not a real block: cut idom chains there
    result_idom = {
        node: (parent if parent != root_id else None)
        for node, parent in idom.items()
        if node != root_id
    }
    result = (result_idom, reachable)
    if cache is None or cache.get("key0") is not all_blocks:
        cache = {"key0": all_blocks}
        _source_dominators._cache = cache
    cache[key] = result
    return result


def _insert_at(function, chosen, blocks_by_name) -> None:
    by_block: Dict[str, List[int]] = {}
    for block_name, idx in chosen:
        by_block.setdefault(block_name, []).append(idx)
    for block_name, indices in by_block.items():
        block = blocks_by_name[block_name]
        for idx in sorted(indices, reverse=True):
            block.insert(idx, Checkpoint(CKPT_MIDDLE_END))
