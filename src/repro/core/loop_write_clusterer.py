"""The Loop Write Clusterer (paper §3.1.2, Algorithm 1, Figure 3).

Candidate loops (single-block, >= 1 WAR violation, no calls, insertion
point post-dominating the relocated stores) are unrolled N times; the WAR
stores of all replicas are postponed to the end of the unrolled body;
early exits receive writeback copies of the stores that preceded them;
and reads that may depend on a postponed store are rewritten into a
compare/select chain picking the register value when the addresses
collide.  The result: one checkpoint per N iterations instead of one per
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis import AliasAnalysis, find_wars, loop_info
from ..analysis.memdep import access_size
from ..ir.block import split_edge
from ..ir.instructions import Call, Checkpoint, ICmp, Load, Select, Store
from ..ir.verifier import verify_function
from ..transforms.unroll import UnrolledLoop, can_unroll, unroll_single_block_loop

DEFAULT_UNROLL_FACTOR = 8


@dataclass
class ClusterReport:
    """What the pass did, for tests and the evaluation harness."""

    loops_considered: int = 0
    loops_transformed: int = 0
    stores_postponed: int = 0
    reads_instrumented: int = 0
    early_exit_writebacks: int = 0


def cluster_loop_writes(
    module,
    unroll_factor: int = DEFAULT_UNROLL_FACTOR,
    alias_mode: str = "precise",
    verify: bool = True,
) -> ClusterReport:
    """Run the Loop Write Clusterer over every function of ``module``."""
    from ..analysis.pointsto import compute_points_to

    report = ClusterReport()
    if unroll_factor < 2:
        return report
    points_to = compute_points_to(module)
    for function in module.defined_functions():
        _run_on_function(function, unroll_factor, alias_mode, report, verify, points_to)
    return report


def _run_on_function(function, factor, alias_mode, report, verify, points_to=None) -> None:
    processed: Set[int] = set()
    while True:
        aa = AliasAnalysis(function, alias_mode, points_to=points_to)
        li = loop_info(function)
        candidate = None
        for loop in sorted(li.loops, key=lambda l: -l.depth):
            if id(loop.header) in processed:
                continue
            report.loops_considered += 1
            processed.add(id(loop.header))
            if is_candidate(loop, aa):
                candidate = loop
                break
        if candidate is None:
            return
        unrolled = unroll_single_block_loop(candidate, factor)
        _transform(function, unrolled, alias_mode, report, points_to)
        if verify:
            verify_function(function)
        report.loops_transformed += 1


def is_candidate(loop, aa: AliasAnalysis) -> bool:
    """Algorithm 1, IsCandidate: unrollable shape, has a WAR, no calls,
    and the insertion point post-dominates the stores (trivially true for
    the single-block form, whose only exit is the terminator)."""
    if not can_unroll(loop):
        return False
    if any(isinstance(i, (Call, Checkpoint)) for i in loop.header.instructions):
        return False
    return _block_has_war(loop, aa)


def _block_has_war(loop, aa: AliasAnalysis) -> bool:
    block = loop.header
    accesses = [i for i in block.instructions if isinstance(i, (Load, Store))]
    for i, first in enumerate(accesses):
        for second in accesses[i:]:
            if isinstance(first, Load) and isinstance(second, Store):
                # same-iteration WAR, or the load of a later iteration
                # re-reading what an earlier iteration's store wrote
                load, store = first, second
                if aa.may_alias(
                    load.pointer, access_size(load), store.pointer, access_size(store)
                ) or aa.may_alias_cross_iteration(
                    load.pointer, access_size(load),
                    store.pointer, access_size(store), loop,
                ):
                    return True
            if isinstance(first, Store) and isinstance(second, Load):
                # backward WAR across the back edge
                if aa.may_alias_cross_iteration(
                    second.pointer, access_size(second),
                    first.pointer, access_size(first), loop,
                ):
                    return True
    return False


def _transform(function, unrolled: UnrolledLoop, alias_mode: str, report: ClusterReport, points_to=None) -> None:
    aa = AliasAnalysis(function, alias_mode, points_to=points_to)
    li = loop_info(function)
    chain = unrolled.chain
    chain_ids = {id(b) for b in chain}

    # The new (unrolled) loop object, for cross-iteration alias queries.
    new_loop = None
    for loop in li.loops:
        if loop.header is unrolled.header:
            new_loop = loop
            break

    # 1. WAR stores of the unrolled body.
    wars = find_wars(function, aa, li, calls_are_checkpoints=True)
    war_store_ids: Set[int] = set()
    for war in wars:
        if id(war.store.parent) in chain_ids and id(war.load.parent) in chain_ids:
            war_store_ids.add(id(war.store))

    ordered: List[Tuple[object, object]] = []  # (block, instr) in chain order
    for block in chain:
        for instr in block.instructions:
            ordered.append((block, instr))
    position = {id(instr): i for i, (_, instr) in enumerate(ordered)}

    candidates = [
        instr
        for _, instr in ordered
        if isinstance(instr, Store) and id(instr) in war_store_ids
    ]
    if not candidates:
        return

    # 2. Postpone-legality, to a fixed point (a store that stays put can
    #    block an earlier mover).
    postponed = list(candidates)
    while True:
        postponed_ids = {id(s) for s in postponed}
        kept = [
            s for s in postponed
            if _may_postpone(s, ordered, position, postponed_ids, aa)
        ]
        if len(kept) == len(postponed):
            break
        postponed = kept
    if not postponed:
        return
    postponed_ids = {id(s) for s in postponed}

    # 3. Dependent reads: loads after a postponed store that may alias it.
    reads_to_fix: Dict[int, List[Store]] = {}
    load_objs: Dict[int, Load] = {}
    for store in postponed:
        spos = position[id(store)]
        ssize = access_size(store)
        for _, instr in ordered[spos + 1 :]:
            if isinstance(instr, Load) and aa.may_alias(
                instr.pointer, access_size(instr), store.pointer, ssize
            ):
                reads_to_fix.setdefault(id(instr), []).append(store)
                load_objs[id(instr)] = instr

    # 4. Move the stores to the end of the last replica (Figure 3,
    #    ClusterWarWrites).  Original relative order is preserved.
    last_block = chain[-1]
    for store in postponed:
        store.parent.remove(store)
    insert_at = len(last_block.instructions)
    if last_block.terminator is not None:
        insert_at -= 1
    for offset, store in enumerate(postponed):
        last_block.insert(insert_at + offset, store)
    report.stores_postponed += len(postponed)

    # 5. Early exits (Figure 3, ModifyEarlyExits): every exit edge that
    #    followed a postponed store gets a writeback copy of it.
    for k, block in enumerate(chain[:-1]):
        term = block.terminator
        exit_targets = [t for t in term.targets if id(t) not in chain_ids]
        if not exit_targets:
            continue
        exit_target = exit_targets[0]
        preceding = [s for s in postponed if position[id(s)] < _term_position(position, block)]
        if not preceding:
            continue
        writeback_block = split_edge(block, exit_target, f"{block.name}.wb")
        for store in preceding:
            copy = Store(store.value, store.pointer)
            writeback_block.insert_before_terminator(copy)
            report.early_exit_writebacks += 1

    # 6. Dependent-read select chains (Figure 3, InstrumentReads).
    for load_id, stores in reads_to_fix.items():
        load = load_objs[load_id]
        _instrument_read(function, load, stores)
        report.reads_instrumented += 1


def _term_position(position: Dict[int, int], block) -> int:
    return position[id(block.terminator)]


def _may_postpone(store: Store, ordered, position, postponed_ids: Set[int], aa: AliasAnalysis) -> bool:
    """A store may move to the insertion point if nothing between its
    original position and the end of the chain both aliases it and stays
    in place (aliasing loads are handled with runtime checks instead)."""
    spos = position[id(store)]
    ssize = access_size(store)
    for _, instr in ordered[spos + 1 :]:
        if isinstance(instr, (Call, Checkpoint)):
            return False
        if isinstance(instr, Store):
            if id(instr) in postponed_ids:
                continue
            if aa.may_alias(instr.pointer, access_size(instr), store.pointer, ssize):
                return False
    return True


def _instrument_read(function, load: Load, stores: List[Store]) -> None:
    """Replace ``load`` with a select chain over the postponed stores
    (Algorithm 1, InstrumentReads): if the load address equals a
    postponed store's address, forward the register value instead.

    Later stores take precedence, so the chain is built in original
    program order with each select overriding the previous result.
    """
    block = load.parent
    insert_at = block.index_of(load) + 1
    result = load
    for store in stores:
        cmp = ICmp("eq", load.pointer, store.pointer, f"{load.name}.chk")
        block.insert(insert_at, cmp)
        insert_at += 1
        sel = Select(cmp, store.value, result, f"{load.name}.fwd")
        block.insert(insert_at, sel)
        insert_at += 1
        result = sel
    # All other users of the load now see the final select.
    chain_members = {id(result)}
    node = result
    while isinstance(node, Select) and node is not load:
        chain_members.add(id(node))
        node = node.false_value
    for instr in function.instructions():
        if id(instr) in chain_members or instr is load:
            continue
        instr.replace_uses_of(load, result)
