"""``repro lint`` — whole-pipeline static WAR certification.

Compiles mini-C sources (or a named benchsuite program) under one
environment and collects every static verifier's findings into a single
:class:`~repro.diagnostics.DiagnosticEngine`:

* the IR-level region dataflow (:mod:`repro.analysis.static_war`) over
  the instrumented middle-end IR,
* the machine-level stack verifier (:mod:`repro.backend.mir_war`) over
  the final machine IR (spill slots, pops, epilogue frame releases),
* the structural machine-IR verifier (`verify_mfunction`), whose
  findings are converted to ``mir-structural`` diagnostics rather than
  raised, so a lint run always reports everything it found,
* the static idempotence certifier
  (:mod:`repro.analysis.idempotence`), which re-proves per-region
  re-execution consistency over both IR levels and emits
  machine-checkable per-function certificates.

The certification depth is selectable (``level``): ``"ir"`` stops after
the middle-end verifier, ``"mir"`` adds the back-end verifiers (the
historical default), ``"full"`` adds the idempotence certifier.

Exit-code contract (used by the CLI and by CI): ``0`` — certified
WAR-free; ``1`` — at least one error-severity diagnostic; ``2`` — the
program failed to compile at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..analysis.static_war import verify_module_war
from ..backend import MIRVerificationError, lower_module, verify_mfunction
from ..backend.mir_war import verify_mmodule_war
from ..diagnostics import LEVEL_MIR, DiagnosticEngine
from ..frontend import compile_sources
from ..ir import Module, verify_module
from ..ir.instructions import Checkpoint
from .pipeline import EnvironmentConfig, environment, run_middle_end

#: Exit codes of the ``lint`` subcommand.
EXIT_CLEAN = 0
EXIT_ERRORS = 1
EXIT_COMPILE_FAILED = 2

#: Certification depths, shallowest first.
LEVEL_ORDER = ("ir", "mir", "full")


@dataclass
class LintResult:
    """Outcome of linting one program under one environment."""

    name: str
    env: str
    engine: DiagnosticEngine
    #: certification depth this result was produced at
    level: str = "full"
    #: per-function idempotence certificates (``level="full"`` only)
    certificates: List[Dict[str, object]] = field(default_factory=list)
    #: per-function forward-progress certificates (``level="full"`` only)
    progress: List[Dict[str, object]] = field(default_factory=list)
    #: per-elision placement certificates, audited
    #: (``level="full"`` with ``checkpoint_elim`` environments only)
    placement: List[Dict[str, object]] = field(default_factory=list)
    #: the per-region cycle budget the progress certifier was held to
    budget: Optional[int] = None

    @property
    def certified(self) -> bool:
        return not self.engine.has_errors

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.certified else EXIT_ERRORS

    @property
    def progress_bound(self) -> Optional[int]:
        """Program-level worst-case region cycle bound (None = unbounded
        or not computed at this level)."""
        if not self.progress:
            return None
        from ..analysis.progress import progress_bound

        return progress_bound(self.progress)


def strip_checkpoints(module: Module) -> int:
    """Remove every checkpoint intrinsic from ``module`` (testing aid:
    deliberately un-protect an instrumented module so the verifier has
    something to find).  Returns the number removed."""
    removed = 0
    for function in module.defined_functions():
        for block in function.blocks:
            kept = []
            for instr in block.instructions:
                if isinstance(instr, Checkpoint):
                    instr.parent = None
                    removed += 1
                else:
                    kept.append(instr)
            block.instructions = kept
    return removed


def lint_module(
    module: Module,
    env: Union[str, EnvironmentConfig],
    run_middle: bool = True,
    name: Optional[str] = None,
    level: str = "full",
    budget: Optional[int] = None,
) -> LintResult:
    """Lint an IR module: run the middle end (unless the caller already
    did) and the static verifiers up to ``level``, collecting all
    diagnostics.

    ``budget`` is a per-region cycle budget for the forward-progress
    certifier (``level="full"``): with it set, ``progress-unbounded``
    hardens from warning to error and any region whose machine-level
    worst case exceeds the budget raises ``progress-budget-exceeded``.
    """
    if level not in LEVEL_ORDER:
        raise ValueError(
            f"unknown lint level {level!r} (choose from {LEVEL_ORDER})"
        )
    config = environment(env)
    engine = DiagnosticEngine()
    summaries = None
    if run_middle:
        summaries = run_middle_end(module, config)
    elif config.call_summaries and config.instrument:
        # The caller instrumented the module itself; recompute the table
        # on the post-insertion IR (transparency is stable across
        # insertion, so this matches what the inserter used).
        from ..analysis.summaries import compute_summaries

        summaries = compute_summaries(module, alias_mode=config.alias_mode)
    if summaries is not None:
        # Surface the precision-loss warnings alongside the WAR findings.
        from ..analysis.pointsto import report_top_causes

        report_top_causes(summaries.causes, engine)
    verify_module_war(
        module,
        alias_mode=config.alias_mode,
        calls_are_checkpoints=config.instrument,
        engine=engine,
        summaries=summaries,
    )
    if level == "ir":
        return LintResult(name or module.name, config.name, engine, level)
    mmodule = lower_module(
        module,
        spill_checkpoint_mode=(
            config.spill_checkpoint_mode if config.instrument else None
        ),
        epilogue_style=config.epilogue_style,
        entry_checkpoints=config.instrument,
        transparent=(
            summaries.transparent_names() if summaries is not None else None
        ),
        epilogue_bug=config.epilogue_bug,
    )
    for mfn in mmodule.functions.values():
        try:
            verify_mfunction(mfn, after_regalloc=True)
        except MIRVerificationError as exc:
            for problem in exc.problems:
                engine.error(
                    "mir-structural", problem,
                    function=mfn.name, level=LEVEL_MIR,
                )
    verify_mmodule_war(
        mmodule,
        module,
        alias_mode=config.alias_mode,
        calls_are_checkpoints=config.instrument,
        engine=engine,
        summaries=summaries,
    )
    certificates: List[Dict[str, object]] = []
    progress: List[Dict[str, object]] = []
    placement: List[Dict[str, object]] = []
    if level == "full" and config.instrument:
        # The certifier's region model assumes checkpoints delimit
        # regions; an uninstrumented build has nothing to certify (the
        # IR verifier already reports why it is unsafe).
        from ..analysis.idempotence import certify_module_idempotence
        from ..analysis.progress import certify_module_progress

        _, certificates = certify_module_idempotence(
            module,
            mmodule,
            alias_mode=config.alias_mode,
            summaries=summaries,
            engine=engine,
        )
        _, progress = certify_module_progress(
            module,
            mmodule,
            engine=engine,
            budget=budget,
            region_budget=config.max_region_cycles,
        )
        report = getattr(module, "elision_report", None)
        if report is not None:
            # Audit the elision pass's own certificates: every removed
            # checkpoint must carry three discharged sub-proofs.  This
            # is the fourth certificate family (``placement-*``); the
            # three independent verifiers above re-certify the elided
            # module end-to-end, so an unsound elision trips both.
            from .checkpoint_elim import audit_elisions

            audit_elisions(report, engine)
            placement = report.certificates
    return LintResult(name or module.name, config.name, engine, level,
                      certificates, progress, placement, budget)


def lint_sources(
    sources: Union[str, List[str]],
    env: Union[str, EnvironmentConfig] = "wario",
    name: str = "program",
    cache=None,
    level: str = "full",
    budget: Optional[int] = None,
) -> LintResult:
    """Front-end + middle-end + all static verifiers for mini-C sources.

    Verdicts are content-addressed like compiles: the same sources under
    the same environment and toolchain always produce the same
    diagnostics, so repeated lint runs (CI matrices, pre-commit hooks)
    hit the :mod:`repro.cache` instead of re-verifying.  ``cache``
    follows the :func:`repro.cache.resolve_cache` convention.
    """
    from ..cache import lint_key, resolve_cache

    if isinstance(sources, str):
        sources = [sources]
    config = environment(env)
    key = lint_key(sources, config, name=name, level=level, budget=budget)
    store = resolve_cache(cache)
    if store is not None:
        result = store.get(key)
        if result is not None:
            return result
    module = compile_sources(sources, name)
    verify_module(module)
    result = lint_module(module, config, name=name, level=level, budget=budget)
    if store is not None:
        store.put(key, result)
    return result


def diagnostics_json(results: List[LintResult]) -> str:
    """All results' diagnostics as one deterministic JSON document.

    Sorted by (file, line, code) so CI diffs are stable across runs —
    and shared by ``repro lint --format json`` and the ``lint`` request
    of :mod:`repro.serve`, which must be byte-identical.
    """
    from ..diagnostics import render_json

    diagnostics = [d for r in results for d in r.engine.diagnostics]
    diagnostics.sort(key=lambda d: (
        d.loc.file if d.loc is not None else "",
        d.loc.line if d.loc is not None else 0,
        d.code,
    ))
    return render_json(diagnostics)


def lint_benchmarks(
    names: Union[str, List[str]] = "all",
    env: Union[str, EnvironmentConfig] = "wario",
    level: str = "full",
    budget: Optional[int] = None,
) -> List[LintResult]:
    """Lint benchsuite programs by name (``"all"`` for the whole suite)."""
    from ..benchsuite import BENCHMARKS, get_benchmark

    if names == "all":
        selected = list(BENCHMARKS)
    elif isinstance(names, str):
        selected = [names]
    else:
        selected = list(names)
    results = []
    for bench_name in selected:
        bench = get_benchmark(bench_name)
        results.append(
            lint_sources(bench.source, env, name=bench_name, level=level,
                         budget=budget)
        )
    return results


__all__ = [
    "EXIT_CLEAN", "EXIT_ERRORS", "EXIT_COMPILE_FAILED", "LEVEL_ORDER",
    "LintResult", "diagnostics_json", "strip_checkpoints",
    "lint_module", "lint_sources", "lint_benchmarks",
]
