"""The Expander (paper §3.1.2/§4.3): heuristic aggressive inlining.

Every function call forces checkpoints (callee entry, callee epilogue),
so calls inside hot loops are expensive under intermittent execution.
The Expander makes two passes: first it collects candidate functions —
those handling pointers, whose bodies are likely to participate in the
caller's WARs — then it inlines candidate calls that sit in innermost
loops.  The paper notes the heuristic can also guess wrong (Tiny AES
regresses slightly); we reproduce the heuristic, not an oracle.
"""

from __future__ import annotations

from typing import List

from ..analysis import loop_info
from ..ir.instructions import Call
from ..ir.types import is_pointer
from ..transforms.inline import can_inline, inline_call

#: Functions larger than this are never expanded (guards code-size blowup).
MAX_EXPAND_SIZE = 800


def _is_candidate_function(function) -> bool:
    """Pass 1: functions 'containing pointers' — those taking or
    computing pointer values, whose bodies are the likeliest to
    participate in the caller's WAR violations."""
    if function.is_declaration:
        return False
    if any(is_pointer(arg.type) for arg in function.args):
        return True
    from ..ir.instructions import GetElementPtr

    return any(
        isinstance(i, GetElementPtr) and is_pointer(i.base.type) and i.base in function.args
        for i in function.instructions()
    )


def expand(module) -> int:
    """Run the Expander; returns the number of call sites inlined."""
    candidates = {
        f.name for f in module.defined_functions() if _is_candidate_function(f)
    }
    inlined = 0
    for function in list(module.defined_functions()):
        # Pass 2: calls in innermost loops to candidate functions.
        li = loop_info(function)
        sites: List[Call] = []
        for block in function.blocks:
            loop = li.innermost_loop_of(block)
            if loop is None or loop.children:
                continue  # only loops without sub-loops
            for instr in block.instructions:
                if not isinstance(instr, Call):
                    continue
                if instr.callee.name not in candidates:
                    continue
                if not can_inline(instr):
                    continue
                size = sum(len(b) for b in instr.callee.blocks)
                if size > MAX_EXPAND_SIZE:
                    continue
                sites.append(instr)
        for call in sites:
            if call.parent is None:
                continue  # removed by an earlier inline of the same block
            inline_call(call)
            inlined += 1
    return inlined
