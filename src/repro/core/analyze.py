"""``repro analyze`` as a library: points-to sets, mod/ref summaries,
and precision-loss causes as one JSON-safe report.

Factored out of the CLI so the ``analyze`` request of
:mod:`repro.serve` returns exactly the structure ``python -m repro
analyze --format json`` prints — the parity tests compare them
byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .pipeline import EnvironmentConfig, environment


def _object_name(obj) -> str:
    from ..ir.values import GlobalVariable

    prefix = "@" if isinstance(obj, GlobalVariable) else "%"
    return prefix + (getattr(obj, "name", "") or "?")


def _object_names(objs) -> Optional[List[str]]:
    """Sorted printable names of a summary set, or None for TOP."""
    if objs is None:
        return None
    return sorted(_object_name(o) for o in objs)


def analyze_module(module, config: EnvironmentConfig) -> Tuple[List, List, List]:
    """(function rows, argument rows, cause rows) for one module."""
    from ..analysis.summaries import compute_summaries
    from ..ir.types import is_pointer
    from ..transforms import optimize_module

    optimize_module(module)
    table = compute_summaries(module, alias_mode=config.alias_mode)
    functions = []
    for name in sorted(table.functions):
        summary = table.functions[name]
        functions.append({
            "function": name,
            "mod": _object_names(summary.mod),
            "ref": _object_names(summary.ref),
            "pure": summary.pure,
            "read_only": summary.read_only,
            "recursive": summary.recursive,
            "transparent": name in table.transparent,
        })
    arguments = []
    for function in module.defined_functions():
        for arg in function.args:
            if not is_pointer(arg.type):
                continue
            arguments.append({
                "function": function.name,
                "argument": arg.name,
                "points_to": _object_names(
                    table.arg_points_to.get(id(arg), frozenset())
                ),
            })
    arguments.sort(key=lambda row: (row["function"], row["argument"]))
    causes = sorted(
        {(c.code, c.function, c.detail) for c in table.causes}
    )
    return functions, arguments, causes


def analyze_report(
    env: Union[str, EnvironmentConfig] = "wario-summaries",
    benchmark: Optional[str] = None,
    sources: Optional[List[str]] = None,
    name: str = "program",
) -> List[Dict[str, object]]:
    """Compile and analyze programs, returning the full report structure.

    Pass either ``benchmark`` (a benchsuite name, or ``"all"`` for the
    whole suite) or ``sources`` (mini-C text).  Each report entry carries
    the per-function mod/ref rows, the pointer-argument points-to sets,
    and every precision-loss cause.
    """
    from ..frontend import compile_sources
    from ..ir import verify_module

    if bool(sources) == bool(benchmark):
        raise ValueError("analyze_report: pass either sources or benchmark")
    config = environment(env)
    programs = []
    if benchmark:
        from ..benchsuite import BENCHMARKS, get_benchmark

        names = list(BENCHMARKS) if benchmark == "all" else [benchmark]
        for bench_name in names:
            programs.append((bench_name, [get_benchmark(bench_name).source]))
    else:
        programs.append((name, list(sources)))

    report: List[Dict[str, object]] = []
    for program_name, program_sources in programs:
        module = compile_sources(program_sources, program_name)
        verify_module(module)
        functions, arguments, causes = analyze_module(module, config)
        report.append({
            "program": program_name,
            "env": config.name,
            "functions": functions,
            "arguments": arguments,
            "precision_losses": [
                {"code": code, "function": fn, "detail": detail}
                for code, fn, detail in causes
            ],
        })
    return report


def render_report_text(report: List[Dict[str, object]]) -> str:
    """The human-readable rendering the CLI prints without ``--format
    json``."""
    lines: List[str] = []
    for entry in report:
        lines.append(f"== {entry['program']} [{entry['env']}] ==")
        for row in entry["functions"]:
            tags = [
                tag for tag, on in (
                    ("pure", row["pure"]),
                    ("read-only", row["read_only"] and not row["pure"]),
                    ("recursive", row["recursive"]),
                    ("transparent", row["transparent"]),
                ) if on
            ]
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            lines.append(f"  {row['function']}{suffix}")
            for kind in ("mod", "ref"):
                sets = row[kind]
                rendered = "TOP" if sets is None else (
                    "{" + ", ".join(sets) + "}"
                )
                lines.append(f"    {kind}: {rendered}")
        if entry["arguments"]:
            lines.append("  pointer arguments:")
            for row in entry["arguments"]:
                sets = row["points_to"]
                rendered = "TOP" if sets is None else (
                    "{" + ", ".join(sets) + "}"
                )
                lines.append(f"    {row['function']}({row['argument']}) -> {rendered}")
        if entry["precision_losses"]:
            lines.append("  precision losses:")
            for loss in entry["precision_losses"]:
                lines.append(f"    [{loss['code']}] {loss['function']}: "
                             f"{loss['detail']}")
        else:
            lines.append("  precision losses: none")
    return "\n".join(lines)


__all__ = ["analyze_module", "analyze_report", "render_report_text"]
