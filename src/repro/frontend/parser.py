"""Recursive-descent parser for the mini-C dialect.

Produces the AST of :mod:`repro.frontend.c_ast`.  Supported subset:
global scalars/arrays (with initializers), functions, ``if``/``while``/
``do``/``for``/``switch`` (with fallthrough)/``break``/``continue``/
``return``, full C expression grammar over integers and pointers
(including ``?:``, compound assignment, ``++``/``--``, casts and
``sizeof``), 1-D and 2-D arrays.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import c_ast as ast
from .c_ast import CType
from .lexer import Token, tokenize


class ParseError(Exception):
    pass


#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, tokens: List[Token], filename: str = "<source>"):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # -- token helpers ---------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def at_op(self, text: str) -> bool:
        return self.at("op", text)

    def accept_op(self, text: str) -> bool:
        if self.at_op(text):
            self.advance()
            return True
        return False

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.at(kind, text):
            self.error(f"expected {text or kind}, found {self.cur.text!r}")
        return self.advance()

    def expect_op(self, text: str) -> Token:
        return self.expect("op", text)

    def error(self, msg: str):
        raise ParseError(f"{self.filename}:{self.cur.line}: {msg}")

    # -- types -------------------------------------------------------------
    _TYPE_STARTERS = {
        "int", "char", "short", "long", "void", "unsigned", "signed", "const",
        "static", "uint8_t", "uint16_t", "uint32_t", "int8_t", "int16_t",
        "int32_t",
    }

    def at_type(self) -> bool:
        return self.cur.kind == "keyword" and self.cur.text in self._TYPE_STARTERS

    def parse_base_type(self) -> Tuple[CType, bool]:
        """Parse the type-specifier part; returns (type, is_const)."""
        is_const = False
        signedness: Optional[bool] = None
        base: Optional[str] = None
        fixed: Optional[CType] = None
        while self.cur.kind == "keyword" and self.cur.text in self._TYPE_STARTERS:
            text = self.advance().text
            if text == "const":
                is_const = True
            elif text == "static":
                pass  # single translation unit: static is a no-op
            elif text == "unsigned":
                signedness = False
            elif text == "signed":
                signedness = True
            elif text in ("int", "char", "short", "long", "void"):
                if base is not None and not (base == "long" and text == "int"):
                    self.error(f"unexpected type keyword {text!r}")
                if base != "long" or text != "int":
                    base = text
            else:
                fixed = {
                    "uint8_t": ast.UCHAR, "int8_t": ast.SCHAR,
                    "uint16_t": ast.USHORT, "int16_t": ast.SHORT,
                    "uint32_t": ast.UINT, "int32_t": ast.INT,
                }[text]
        if fixed is not None:
            ctype = fixed
        elif base == "void":
            ctype = ast.CVOID
        elif base == "char":
            if signedness is None:
                ctype = ast.CHAR           # plain char: unsigned (ARM EABI)
            else:
                ctype = CType("int", 8, signedness)
        elif base == "short":
            ctype = CType("int", 16, signedness if signedness is not None else True)
        elif base in ("int", "long", None):
            if base is None and signedness is None:
                self.error("expected a type")
            ctype = CType("int", 32, signedness if signedness is not None else True)
        else:
            self.error(f"unsupported type {base!r}")
        while self.accept_op("*"):
            ctype = ast.ptr(ctype)
        return ctype, is_const

    def parse_type_name(self) -> CType:
        """A type inside a cast or sizeof: base type plus '*'s."""
        ctype, _ = self.parse_base_type()
        return ctype

    # -- program ------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.at("eof"):
            self.parse_top_level(program)
        return program

    def parse_top_level(self, program: ast.Program) -> None:
        line = self.cur.line
        ctype, is_const = self.parse_base_type()
        name = self.expect("ident").text
        if self.at_op("("):
            program.functions.append(self.parse_function(name, ctype, line))
            return
        # global variable(s)
        while True:
            var_type = ctype
            dims: List[int] = []
            while self.accept_op("["):
                dims.append(self.parse_const_expr_value())
                self.expect_op("]")
            for dim in reversed(dims):
                var_type = ast.array(var_type, dim)
            init = None
            if self.accept_op("="):
                init = self.parse_initializer()
            program.globals.append(
                ast.GlobalVar(name, var_type, init, is_const, line)
            )
            if self.accept_op(","):
                name = self.expect("ident").text
                continue
            break
        self.expect_op(";")

    def parse_initializer(self):
        if self.accept_op("{"):
            items = []
            if not self.at_op("}"):
                while True:
                    if self.at_op("{"):
                        items.append(self.parse_initializer())
                    else:
                        items.append(self.parse_assignment())
                    if not self.accept_op(","):
                        break
                    if self.at_op("}"):
                        break  # trailing comma
            self.expect_op("}")
            return items
        return self.parse_assignment()

    def parse_function(self, name: str, return_type: CType, line: int) -> ast.FuncDef:
        self.expect_op("(")
        params: List[ast.Param] = []
        if self.at("keyword", "void") and self.peek().text == ")":
            self.advance()
        elif not self.at_op(")"):
            while True:
                ptype, _ = self.parse_base_type()
                pname = self.expect("ident").text
                if self.accept_op("["):
                    # array parameter decays to pointer
                    if not self.at_op("]"):
                        self.parse_const_expr_value()
                    self.expect_op("]")
                    ptype = ast.ptr(ptype)
                params.append(ast.Param(pname, ptype))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        if self.accept_op(";"):
            return ast.FuncDef(name, return_type, params, None, line)
        body = self.parse_block()
        return ast.FuncDef(name, return_type, params, body, line)

    # -- statements ------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.cur.line
        self.expect_op("{")
        statements: List[ast.Stmt] = []
        while not self.at_op("}"):
            statements.append(self.parse_statement())
        self.expect_op("}")
        return ast.Block(line=line, statements=statements)

    def parse_statement(self) -> ast.Stmt:
        line = self.cur.line
        if self.at_op("{"):
            return self.parse_block()
        if self.at_type():
            return self.parse_var_decl()
        if self.at("keyword", "if"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            then = self.parse_statement()
            other = None
            if self.at("keyword", "else"):
                self.advance()
                other = self.parse_statement()
            return ast.If(line=line, cond=cond, then=then, other=other)
        if self.at("keyword", "while"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            body = self.parse_statement()
            return ast.While(line=line, cond=cond, body=body)
        if self.at("keyword", "do"):
            self.advance()
            body = self.parse_statement()
            self.expect("keyword", "while")
            self.expect_op("(")
            cond = self.parse_expression()
            self.expect_op(")")
            self.expect_op(";")
            return ast.DoWhile(line=line, body=body, cond=cond)
        if self.at("keyword", "for"):
            self.advance()
            self.expect_op("(")
            init: Optional[ast.Stmt] = None
            if not self.at_op(";"):
                if self.at_type():
                    init = self.parse_var_decl()
                else:
                    init = ast.ExprStmt(line=line, expr=self.parse_expression())
                    self.expect_op(";")
            else:
                self.expect_op(";")
            cond = None
            if not self.at_op(";"):
                cond = self.parse_expression()
            self.expect_op(";")
            step = None
            if not self.at_op(")"):
                step = self.parse_expression()
            self.expect_op(")")
            body = self.parse_statement()
            return ast.For(line=line, init=init, cond=cond, step=step, body=body)
        if self.at("keyword", "switch"):
            return self.parse_switch()
        if self.at("keyword", "return"):
            self.advance()
            value = None
            if not self.at_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return ast.Return(line=line, value=value)
        if self.at("keyword", "break"):
            self.advance()
            self.expect_op(";")
            return ast.Break(line=line)
        if self.at("keyword", "continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue(line=line)
        if self.accept_op(";"):
            return ast.Empty(line=line)
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(line=line, expr=expr)

    def parse_switch(self) -> ast.Switch:
        line = self.cur.line
        self.expect("keyword", "switch")
        self.expect_op("(")
        scrutinee = self.parse_expression()
        self.expect_op(")")
        self.expect_op("{")
        cases: List[ast.SwitchCase] = []
        current: Optional[ast.SwitchCase] = None
        seen_default = False
        while not self.at_op("}"):
            if self.at("keyword", "case"):
                self.advance()
                value = self.parse_const_expr_value()
                self.expect_op(":")
                current = ast.SwitchCase(value=value)
                cases.append(current)
                continue
            if self.at("keyword", "default"):
                if seen_default:
                    self.error("duplicate default label")
                seen_default = True
                self.advance()
                self.expect_op(":")
                current = ast.SwitchCase(value=None)
                cases.append(current)
                continue
            if current is None:
                self.error("statement before the first case label")
            current.body.append(self.parse_statement())
        self.expect_op("}")
        values = [c.value for c in cases if c.value is not None]
        if len(values) != len(set(values)):
            self.error("duplicate case value")
        return ast.Switch(line=line, scrutinee=scrutinee, cases=cases)

    def parse_var_decl(self) -> ast.VarDecl:
        line = self.cur.line
        ctype, _ = self.parse_base_type()
        base_no_ptr = ctype
        decl = ast.VarDecl(line=line)
        while True:
            var_type = ctype
            name = self.expect("ident").text
            dims: List[int] = []
            while self.accept_op("["):
                dims.append(self.parse_const_expr_value())
                self.expect_op("]")
            for dim in reversed(dims):
                var_type = ast.array(var_type, dim)
            init = None
            if self.accept_op("="):
                if self.at_op("{"):
                    decl.array_inits[name] = self.parse_initializer()
                else:
                    init = self.parse_assignment()
            decl.declarations.append((name, var_type, init))
            if not self.accept_op(","):
                break
            # subsequent declarators share the base type, with fresh '*'s
            ctype = base_no_ptr
            while self.accept_op("*"):
                ctype = ast.ptr(ctype)
        self.expect_op(";")
        return decl

    # -- expressions ---------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept_op(","):
            right = self.parse_assignment()
            expr = ast.Binary(line=expr.line, op=",", left=expr, right=right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        if self.cur.kind == "op" and self.cur.text in _ASSIGN_OPS:
            op = self.advance().text
            value = self.parse_assignment()
            return ast.Assign(line=left.line, op=op, target=left, value=value)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept_op("?"):
            then = self.parse_assignment()
            self.expect_op(":")
            other = self.parse_assignment()
            return ast.Ternary(line=cond.line, cond=cond, then=then, other=other)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while (
            self.cur.kind == "op"
            and self.cur.text in _PRECEDENCE
            and _PRECEDENCE[self.cur.text] >= min_prec
        ):
            op = self.advance().text
            right = self.parse_binary(_PRECEDENCE[op] + 1)
            left = ast.Binary(line=left.line, op=op, left=left, right=right)
        return left

    def parse_unary(self) -> ast.Expr:
        line = self.cur.line
        if self.accept_op("-"):
            return ast.Unary(line=line, op="-", operand=self.parse_unary())
        if self.accept_op("+"):
            return self.parse_unary()
        if self.accept_op("~"):
            return ast.Unary(line=line, op="~", operand=self.parse_unary())
        if self.accept_op("!"):
            return ast.Unary(line=line, op="!", operand=self.parse_unary())
        if self.accept_op("++"):
            return ast.Unary(line=line, op="++", operand=self.parse_unary())
        if self.accept_op("--"):
            return ast.Unary(line=line, op="--", operand=self.parse_unary())
        if self.accept_op("*"):
            return ast.Deref(line=line, operand=self.parse_unary())
        if self.accept_op("&"):
            return ast.AddrOf(line=line, operand=self.parse_unary())
        if self.at("keyword", "sizeof"):
            self.advance()
            self.expect_op("(")
            if self.at_type():
                ctype = self.parse_type_name()
            else:
                self.error("sizeof only supports type names")
            self.expect_op(")")
            return ast.SizeofExpr(line=line, ctype=ctype)
        # cast: '(' type-name ')' unary
        if self.at_op("(") and self.peek().kind == "keyword" and self.peek().text in self._TYPE_STARTERS:
            self.expect_op("(")
            ctype = self.parse_type_name()
            self.expect_op(")")
            return ast.CastExpr(line=line, ctype=ctype, operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept_op("["):
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(line=expr.line, base=expr, index=index)
            elif self.at_op("(") and isinstance(expr, ast.Ident):
                self.advance()
                args: List[ast.Expr] = []
                if not self.at_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                expr = ast.CallExpr(line=expr.line, name=expr.name, args=args)
            elif self.accept_op("++"):
                expr = ast.PostIncDec(line=expr.line, op="++", operand=expr)
            elif self.accept_op("--"):
                expr = ast.PostIncDec(line=expr.line, op="--", operand=expr)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        line = self.cur.line
        if self.at("num"):
            tok = self.advance()
            return ast.Num(line=line, value=tok.value)
        if self.at("ident"):
            return ast.Ident(line=line, name=self.advance().text)
        if self.accept_op("("):
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        self.error(f"unexpected token {self.cur.text!r}")

    # -- constant expressions --------------------------------------------------------
    def parse_const_expr_value(self) -> int:
        expr = self.parse_ternary()
        return eval_const_expr(expr)


def eval_const_expr(expr: ast.Expr) -> int:
    """Fold a compile-time constant expression (array sizes, global inits)."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Unary):
        v = eval_const_expr(expr.operand)
        return {"-": -v, "~": ~v, "!": int(not v)}[expr.op]
    if isinstance(expr, ast.Binary):
        lhs = eval_const_expr(expr.left)
        rhs = eval_const_expr(expr.right)
        ops = {
            "+": lambda a, b: a + b, "-": lambda a, b: a - b,
            "*": lambda a, b: a * b, "/": lambda a, b: a // b if b else 0,
            "%": lambda a, b: a % b if b else 0,
            "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
            "&": lambda a, b: a & b, "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
            "==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b),
            "<": lambda a, b: int(a < b), ">": lambda a, b: int(a > b),
            "<=": lambda a, b: int(a <= b), ">=": lambda a, b: int(a >= b),
            "&&": lambda a, b: int(bool(a) and bool(b)),
            "||": lambda a, b: int(bool(a) or bool(b)),
        }
        return ops[expr.op](lhs, rhs)
    if isinstance(expr, ast.SizeofExpr):
        return expr.ctype.size
    if isinstance(expr, ast.CastExpr):
        return eval_const_expr(expr.operand)
    if isinstance(expr, ast.Ternary):
        return (
            eval_const_expr(expr.then)
            if eval_const_expr(expr.cond)
            else eval_const_expr(expr.other)
        )
    raise ParseError(f"not a constant expression: {expr!r}")


def parse(source: str, filename: str = "<source>") -> ast.Program:
    return Parser(tokenize(source, filename), filename).parse_program()
