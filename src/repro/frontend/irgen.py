"""AST -> IR lowering for the mini-C front end.

Loops are emitted *rotated* (guard + bottom-tested body) whenever the
condition is side-effect free, which is the shape -O3 would produce and
the shape WARio's Loop Write Clusterer targets (paper Figure 3).  Locals
are allocas; mem2reg promotes the scalars afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (
    I8,
    I16,
    I32,
    VOID,
    ArrayType,
    Constant,
    FunctionType,
    IRBuilder,
    IntType,
    Module,
    PointerType,
    Type,
    Value,
)
from ..diagnostics import SourceLoc
from ..ir.instructions import ICmp
from . import c_ast as ast
from .c_ast import CType
from .parser import eval_const_expr, parse


class CompileError(Exception):
    pass


#: maximum register-passed arguments (r0-r3 on the target)
MAX_ARGS = 4


def _ir_type(ctype: CType) -> Type:
    if ctype.is_void:
        return VOID
    if ctype.is_integer:
        return {8: I8, 16: I16, 32: I32}[ctype.bits]
    if ctype.is_pointer:
        return PointerType(_ir_type(ctype.target))
    if ctype.is_array:
        return ArrayType(_ir_type(ctype.target), ctype.count)
    raise CompileError(f"cannot lower type {ctype}")


def _promote(ctype: CType) -> CType:
    """C integer promotion: sub-int types widen to (signed) int."""
    if ctype.is_integer and ctype.bits < 32:
        return ast.INT
    return ctype


def _common_type(a: CType, b: CType) -> CType:
    a, b = _promote(a), _promote(b)
    if a.is_pointer:
        return a
    if b.is_pointer:
        return b
    if not a.signed or not b.signed:
        return ast.UINT
    return ast.INT


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, Tuple[Value, CType]] = {}

    def lookup(self, name: str) -> Optional[Tuple[Value, CType]]:
        scope = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def define(self, name: str, value: Value, ctype: CType) -> None:
        if name in self.vars:
            raise CompileError(f"redefinition of {name!r}")
        self.vars[name] = (value, ctype)


class IRGenerator:
    """Lowers one parsed program into an IR module."""

    def __init__(self, program: ast.Program, module_name: str = "module"):
        self.program = program
        self.module = Module(module_name)
        self.file = module_name  # sources are in-memory; name the unit
        self.func_types: Dict[str, Tuple[CType, List[CType]]] = {}
        self.globals_scope = _Scope()
        # per-function state
        self.builder: Optional[IRBuilder] = None
        self.function = None
        self.entry_builder: Optional[IRBuilder] = None
        self.scope: Optional[_Scope] = None
        self.loop_stack: List[Tuple[object, object]] = []  # (break_bb, continue_bb)
        self.return_ctype: Optional[CType] = None

    # ------------------------------------------------------------------
    def generate(self) -> Module:
        for gv in self.program.globals:
            self._declare_global(gv)
        for fn in self.program.functions:
            self._declare_function(fn)
        for fn in self.program.functions:
            if fn.body is not None:
                self._define_function(fn)
        return self.module

    # -- declarations ----------------------------------------------------
    def _declare_global(self, gv: ast.GlobalVar) -> None:
        ir_type = _ir_type(gv.ctype)
        init = None
        if gv.init is not None:
            if isinstance(gv.init, list):
                init = [eval_const_expr(e) & 0xFFFFFFFF for e in _flatten(gv.init)]
            else:
                init = eval_const_expr(gv.init) & 0xFFFFFFFF
        value = self.module.add_global(gv.name, ir_type, init, gv.is_const)
        self.globals_scope.define(gv.name, value, gv.ctype)

    def _declare_function(self, fn: ast.FuncDef) -> None:
        if len(fn.params) > MAX_ARGS:
            raise CompileError(
                f"{fn.name}: more than {MAX_ARGS} parameters not supported "
                f"by the register-argument calling convention"
            )
        param_ctypes = [p.ctype.decay() for p in fn.params]
        if fn.name in self.func_types:
            declared = self.func_types[fn.name]
            if declared != (fn.return_type, param_ctypes):
                raise CompileError(f"conflicting declarations of {fn.name!r}")
            if fn.body is None or not self.module.functions[fn.name].is_declaration:
                if fn.body is not None:
                    raise CompileError(f"redefinition of {fn.name!r}")
                return
            # definition after declaration: replace below
            del self.module.functions[fn.name]
        self.func_types[fn.name] = (fn.return_type, param_ctypes)
        ftype = FunctionType(
            _ir_type(fn.return_type), [_ir_type(c) for c in param_ctypes]
        )
        self.module.add_function(fn.name, ftype, [p.name for p in fn.params])

    # -- function bodies ----------------------------------------------------
    def _define_function(self, fn: ast.FuncDef) -> None:
        self.function = self.module.get_function(fn.name)
        entry = self.function.add_block("entry")
        body_block = self.function.add_block("body")
        self.entry_builder = IRBuilder(entry)
        self.builder = IRBuilder(body_block)
        self.scope = _Scope(self.globals_scope)
        self.return_ctype = fn.return_type
        self.loop_stack = []
        # Mutable parameters: spill into allocas (mem2reg lifts them back).
        for param, arg in zip(fn.params, self.function.args):
            ctype = param.ctype.decay()
            slot = self.entry_builder.alloca(_ir_type(ctype), param.name)
            self.builder.store(arg, slot)
            self.scope.define(param.name, slot, ctype)
        self._gen_block(fn.body)
        self._terminate_open_block()
        # entry falls through to body
        self.entry_builder.br(body_block)

    def _terminate_open_block(self) -> None:
        block = self.builder.block
        if block.terminator is None:
            if self.return_ctype.is_void:
                self.builder.ret()
            else:
                self.builder.ret(self.builder.const(0))

    def _new_block(self, name: str):
        return self.function.add_block(name)

    def _seal_and_switch(self, block) -> None:
        self.builder.position_at_end(block)

    # -- statements -------------------------------------------------------------
    def _gen_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for stmt in block.statements:
            self._gen_stmt(stmt)
        self.scope = self.scope.parent

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        if stmt.line > 0:
            self.builder.loc = SourceLoc(stmt.line, self.file)
        if self.builder.block.terminator is not None:
            # dead code after break/continue/return: park in a fresh block
            self._seal_and_switch(self._new_block("dead"))
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, ast.VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CompileError("break outside of a loop")
            self.builder.br(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.Continue):
            target = None
            for break_bb, continue_bb in reversed(self.loop_stack):
                if continue_bb is not None:
                    target = continue_bb
                    break
            if target is None:
                raise CompileError("continue outside of a loop")
            self.builder.br(target)
        elif isinstance(stmt, ast.Empty):
            pass
        else:
            raise CompileError(f"unsupported statement {stmt!r}")

    def _gen_var_decl(self, decl: ast.VarDecl) -> None:
        for name, ctype, init in decl.declarations:
            slot = self.entry_builder.alloca(_ir_type(ctype), name)
            self.scope.define(name, slot, ctype)
            if name in decl.array_inits:
                self._gen_array_init(slot, ctype, decl.array_inits[name])
            elif init is not None:
                value, vtype = self._gen_expr(init)
                self._gen_store(slot, ctype, value, vtype)

    def _gen_array_init(self, slot, ctype: CType, inits) -> None:
        if not ctype.is_array:
            raise CompileError("brace initializer on non-array")
        flat = _flatten(inits)
        elem = ctype.target
        while elem.is_array:
            elem = elem.target
        count = ctype.size // elem.size
        if len(flat) > count:
            raise CompileError("too many array initializers")
        # For multi-dimensional arrays we initialise through a flat view.
        for i, expr in enumerate(flat):
            value, vtype = self._gen_expr(expr)
            ptr = self.builder.gep(_flat_base(self.builder, slot), self.builder.const(i))
            self._gen_store(ptr, elem, value, vtype)
        for i in range(len(flat), count):
            ptr = self.builder.gep(_flat_base(self.builder, slot), self.builder.const(i))
            self._gen_store(ptr, elem, self.builder.const(0), ast.INT)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self._gen_condition(stmt.cond)
        then_bb = self._new_block("if.then")
        merge_bb = self._new_block("if.end")
        else_bb = self._new_block("if.else") if stmt.other is not None else merge_bb
        self.builder.cond_br(cond, then_bb, else_bb)
        self._seal_and_switch(then_bb)
        self._gen_stmt(stmt.then)
        if self.builder.block.terminator is None:
            self.builder.br(merge_bb)
        if stmt.other is not None:
            self._seal_and_switch(else_bb)
            self._gen_stmt(stmt.other)
            if self.builder.block.terminator is None:
                self.builder.br(merge_bb)
        self._seal_and_switch(merge_bb)

    def _gen_while(self, stmt: ast.While) -> None:
        if ast.has_side_effects(stmt.cond):
            self._gen_top_tested_loop(stmt.cond, stmt.body, step=None)
            return
        body_bb = self._new_block("while.body")
        latch_bb = self._new_block("while.latch")
        exit_bb = self._new_block("while.end")
        guard = self._gen_condition(stmt.cond)
        self.builder.cond_br(guard, body_bb, exit_bb)
        self._seal_and_switch(body_bb)
        self.loop_stack.append((exit_bb, latch_bb))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(latch_bb)
        self._seal_and_switch(latch_bb)
        cond = self._gen_condition(stmt.cond)
        self.builder.cond_br(cond, body_bb, exit_bb)
        self._seal_and_switch(exit_bb)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body_bb = self._new_block("do.body")
        latch_bb = self._new_block("do.latch")
        exit_bb = self._new_block("do.end")
        self.builder.br(body_bb)
        self._seal_and_switch(body_bb)
        self.loop_stack.append((exit_bb, latch_bb))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(latch_bb)
        self._seal_and_switch(latch_bb)
        cond = self._gen_condition(stmt.cond)
        self.builder.cond_br(cond, body_bb, exit_bb)
        self._seal_and_switch(exit_bb)

    def _gen_for(self, stmt: ast.For) -> None:
        self.scope = _Scope(self.scope)
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        if stmt.cond is not None and ast.has_side_effects(stmt.cond):
            self._gen_top_tested_loop(stmt.cond, stmt.body, stmt.step)
            self.scope = self.scope.parent
            return
        body_bb = self._new_block("for.body")
        latch_bb = self._new_block("for.latch")
        exit_bb = self._new_block("for.end")
        if stmt.cond is not None:
            guard = self._gen_condition(stmt.cond)
            self.builder.cond_br(guard, body_bb, exit_bb)
        else:
            self.builder.br(body_bb)
        self._seal_and_switch(body_bb)
        self.loop_stack.append((exit_bb, latch_bb))
        self._gen_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(latch_bb)
        self._seal_and_switch(latch_bb)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
        if stmt.cond is not None:
            cond = self._gen_condition(stmt.cond)
            self.builder.cond_br(cond, body_bb, exit_bb)
        else:
            self.builder.br(body_bb)
        self._seal_and_switch(exit_bb)
        self.scope = self.scope.parent

    def _gen_top_tested_loop(self, cond, body, step) -> None:
        """Fallback (non-rotated) loop for side-effecting conditions."""
        header_bb = self._new_block("loop.header")
        body_bb = self._new_block("loop.body")
        latch_bb = self._new_block("loop.latch")
        exit_bb = self._new_block("loop.end")
        self.builder.br(header_bb)
        self._seal_and_switch(header_bb)
        cond_val = self._gen_condition(cond)
        self.builder.cond_br(cond_val, body_bb, exit_bb)
        self._seal_and_switch(body_bb)
        self.loop_stack.append((exit_bb, latch_bb))
        self._gen_stmt(body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(latch_bb)
        self._seal_and_switch(latch_bb)
        if step is not None:
            self._gen_expr(step)
        self.builder.br(header_bb)
        self._seal_and_switch(exit_bb)

    def _gen_switch(self, stmt: ast.Switch) -> None:
        """Lower to a compare chain dispatching into per-case body blocks;
        bodies fall through to the next case as C requires, and ``break``
        exits the switch."""
        scrutinee, _ = self._gen_expr(stmt.scrutinee)
        exit_bb = self._new_block("switch.end")
        body_blocks = [self._new_block(f"switch.case{i}") for i in range(len(stmt.cases))]
        default_target = exit_bb
        for case, body_bb in zip(stmt.cases, body_blocks):
            if case.value is None:
                default_target = body_bb
        # dispatch chain
        for case, body_bb in zip(stmt.cases, body_blocks):
            if case.value is None:
                continue
            cmp = self.builder.icmp(
                "eq", scrutinee, self.builder.const(case.value & 0xFFFFFFFF)
            )
            next_test = self._new_block("switch.test")
            self.builder.cond_br(cmp, body_bb, next_test)
            self._seal_and_switch(next_test)
        self.builder.br(default_target)
        # bodies, falling through in declaration order
        self.loop_stack.append((exit_bb, None))
        for i, (case, body_bb) in enumerate(zip(stmt.cases, body_blocks)):
            self._seal_and_switch(body_bb)
            for inner in case.body:
                self._gen_stmt(inner)
            if self.builder.block.terminator is None:
                target = body_blocks[i + 1] if i + 1 < len(body_blocks) else exit_bb
                self.builder.br(target)
        self.loop_stack.pop()
        self._seal_and_switch(exit_bb)

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if not self.return_ctype.is_void:
                raise CompileError("return without value in non-void function")
            self.builder.ret()
            return
        value, ctype = self._gen_expr(stmt.value)
        self.builder.ret(value)

    # -- expressions --------------------------------------------------------------
    def _gen_expr(self, expr: ast.Expr) -> Tuple[Value, CType]:
        if isinstance(expr, ast.Num):
            ctype = ast.INT if -(1 << 31) <= expr.value < (1 << 31) else ast.UINT
            return self.builder.const(expr.value & 0xFFFFFFFF), ctype
        if isinstance(expr, ast.Ident):
            found = self.scope.lookup(expr.name)
            if found is None:
                raise CompileError(f"line {expr.line}: unknown identifier {expr.name!r}")
            ptr, ctype = found
            if ctype.is_array:
                return self._decay(ptr), ast.ptr(ctype.target)
            return self._gen_load(ptr, ctype), ctype
        if isinstance(expr, ast.Index):
            ptr, elem = self._gen_lvalue(expr)
            if elem.is_array:
                return self._decay(ptr), ast.ptr(elem.target)
            return self._gen_load(ptr, elem), elem
        if isinstance(expr, ast.Deref):
            ptr, elem = self._gen_lvalue(expr)
            return self._gen_load(ptr, elem), elem
        if isinstance(expr, ast.AddrOf):
            ptr, elem = self._gen_lvalue(expr.operand)
            return ptr, ast.ptr(elem)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.PostIncDec):
            return self._gen_post_inc_dec(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._gen_ternary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._gen_call(expr)
        if isinstance(expr, ast.CastExpr):
            return self._gen_cast(expr)
        if isinstance(expr, ast.SizeofExpr):
            return self.builder.const(expr.ctype.size), ast.UINT
        raise CompileError(f"unsupported expression {expr!r}")

    def _gen_lvalue(self, expr: ast.Expr) -> Tuple[Value, CType]:
        """Pointer to the storage plus the *pointee* C type."""
        if isinstance(expr, ast.Ident):
            found = self.scope.lookup(expr.name)
            if found is None:
                raise CompileError(f"line {expr.line}: unknown identifier {expr.name!r}")
            return found
        if isinstance(expr, ast.Index):
            # Subscripting an array lvalue indexes the array directly (no
            # decay) so multi-dimensional arrays scale by full row size.
            base_static = self._static_lvalue_ctype(expr.base)
            if base_static is not None and base_static.is_array:
                base_ptr, base_elem = self._gen_lvalue(expr.base)
                idx, _ = self._gen_expr(expr.index)
                ptr = self.builder.gep(base_ptr, idx)
                return ptr, base_elem.target
            base_val, base_ctype = self._gen_expr(expr.base)
            if not base_ctype.is_pointer:
                raise CompileError(f"line {expr.line}: subscript of non-pointer")
            idx, _ = self._gen_expr(expr.index)
            ptr = self.builder.gep(base_val, idx)
            return ptr, base_ctype.target
        if isinstance(expr, ast.Deref):
            value, ctype = self._gen_expr(expr.operand)
            if not ctype.is_pointer:
                raise CompileError(f"line {expr.line}: dereference of non-pointer")
            return value, ctype.target
        raise CompileError(f"line {expr.line}: expression is not an lvalue")

    def _static_lvalue_ctype(self, expr) -> Optional[CType]:
        """The C type an lvalue expression designates, computed without
        emitting any code (used to pick array-vs-pointer subscripting)."""
        if isinstance(expr, ast.Ident):
            found = self.scope.lookup(expr.name)
            return found[1] if found is not None else None
        if isinstance(expr, ast.Index):
            base = self._static_lvalue_ctype(expr.base)
            if base is not None and (base.is_array or base.is_pointer):
                return base.target
            return None
        if isinstance(expr, ast.Deref):
            base = self._static_lvalue_ctype(expr.operand)
            if base is not None and base.is_pointer:
                return base.target
            return None
        return None

    def _decay(self, ptr: Value) -> Value:
        """Array-to-pointer decay: &arr[0]."""
        if isinstance(ptr.type.pointee, ArrayType):
            return self.builder.gep(ptr, self.builder.const(0))
        return ptr

    def _gen_load(self, ptr: Value, ctype: CType) -> Value:
        if ctype.is_array:
            return self._decay(ptr)
        load = self.builder.load(ptr)
        if ctype.is_integer and ctype.bits < 32:
            op = "zext" if not ctype.signed else "sext"
            return self.builder.cast(op, load, I32)
        return load

    def _gen_store(self, ptr: Value, ctype: CType, value: Value, vtype: CType) -> Value:
        if ctype.is_integer and ctype.bits < 32:
            value32 = value
            value = self.builder.cast("trunc", value, _ir_type(ctype))
            self.builder.store(value, ptr)
            return value32
        self.builder.store(value, ptr)
        return value

    def _gen_assign(self, expr: ast.Assign) -> Tuple[Value, CType]:
        ptr, ctype = self._gen_lvalue(expr.target)
        if expr.op == "=":
            value, vtype = self._gen_expr(expr.value)
            if ctype.is_pointer and vtype.is_integer:
                pass  # int -> pointer assignment, allowed silently
            self._gen_store(ptr, ctype, value, vtype)
            return self._masked(value, ctype), ctype
        # compound assignment: load, op, store
        op = expr.op[:-1]
        current = self._gen_load(ptr, ctype)
        rhs, rtype = self._gen_expr(expr.value)
        if ctype.is_pointer:
            if op not in ("+", "-"):
                raise CompileError("invalid pointer compound assignment")
            idx = rhs if op == "+" else self.builder.sub(self.builder.const(0), rhs)
            result = self.builder.gep(current, idx)
            self.builder.store(result, ptr)
            return result, ctype
        result = self._arith(op, current, ctype, rhs, rtype)
        self._gen_store(ptr, ctype, result, ast.INT)
        return self._masked(result, ctype), ctype

    def _masked(self, value: Value, ctype: CType) -> Value:
        """Value of an assignment expression: converted to the target type."""
        if ctype.is_integer and ctype.bits < 32:
            trunc = self.builder.cast("trunc", value, _ir_type(ctype))
            op = "zext" if not ctype.signed else "sext"
            return self.builder.cast(op, trunc, I32)
        return value

    def _gen_unary(self, expr: ast.Unary) -> Tuple[Value, CType]:
        if expr.op in ("++", "--"):
            ptr, ctype = self._gen_lvalue(expr.operand)
            current = self._gen_load(ptr, ctype)
            if ctype.is_pointer:
                delta = 1 if expr.op == "++" else -1
                result = self.builder.gep(current, self.builder.const(delta & 0xFFFFFFFF))
                self.builder.store(result, ptr)
                return result, ctype
            op = "add" if expr.op == "++" else "sub"
            result = self.builder.binop(op, current, self.builder.const(1))
            self._gen_store(ptr, ctype, result, ast.INT)
            return self._masked(result, ctype), ctype
        value, ctype = self._gen_expr(expr.operand)
        if expr.op == "-":
            return self.builder.sub(self.builder.const(0), value), _promote(ctype)
        if expr.op == "~":
            return (
                self.builder.binop("xor", value, self.builder.const(0xFFFFFFFF)),
                _promote(ctype),
            )
        if expr.op == "!":
            cmp = self.builder.icmp("eq", value, self.builder.const(0))
            return self.builder.cast("zext", cmp, I32), ast.INT
        raise CompileError(f"unsupported unary {expr.op!r}")

    def _gen_post_inc_dec(self, expr: ast.PostIncDec) -> Tuple[Value, CType]:
        ptr, ctype = self._gen_lvalue(expr.operand)
        current = self._gen_load(ptr, ctype)
        if ctype.is_pointer:
            delta = 1 if expr.op == "++" else -1
            updated = self.builder.gep(current, self.builder.const(delta & 0xFFFFFFFF))
            self.builder.store(updated, ptr)
            return current, ctype
        op = "add" if expr.op == "++" else "sub"
        updated = self.builder.binop(op, current, self.builder.const(1))
        self._gen_store(ptr, ctype, updated, ast.INT)
        return current, ctype

    def _arith(self, op: str, lhs: Value, ltype: CType, rhs: Value, rtype: CType) -> Value:
        common = _common_type(ltype, rtype)
        unsigned = not common.signed
        if op == ">>":
            # shift semantics follow the *left* operand's promoted type
            ir_op = "lshr" if not _promote(ltype).signed else "ashr"
        else:
            ir_op = {
                "+": "add", "-": "sub", "*": "mul",
                "/": "udiv" if unsigned else "sdiv",
                "%": "urem" if unsigned else "srem",
                "&": "and", "|": "or", "^": "xor",
                "<<": "shl",
            }[op]
        return self.builder.binop(ir_op, lhs, rhs)

    def _gen_binary(self, expr: ast.Binary) -> Tuple[Value, CType]:
        op = expr.op
        if op == ",":
            self._gen_expr(expr.left)
            return self._gen_expr(expr.right)
        if op in ("&&", "||"):
            return self._gen_logical(expr)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            lhs, ltype = self._gen_expr(expr.left)
            rhs, rtype = self._gen_expr(expr.right)
            cmp = self._emit_compare(op, lhs, ltype, rhs, rtype)
            return self.builder.cast("zext", cmp, I32), ast.INT
        lhs, ltype = self._gen_expr(expr.left)
        rhs, rtype = self._gen_expr(expr.right)
        # pointer arithmetic
        if ltype.is_pointer and op in ("+", "-") and rtype.is_integer:
            idx = rhs if op == "+" else self.builder.sub(self.builder.const(0), rhs)
            return self.builder.gep(lhs, idx), ltype
        if rtype.is_pointer and op == "+" and ltype.is_integer:
            return self.builder.gep(rhs, lhs), rtype
        if ltype.is_pointer and rtype.is_pointer and op == "-":
            diff = self.builder.sub(lhs, rhs)
            size = ltype.target.size
            if size > 1:
                diff = self.builder.binop("sdiv", diff, self.builder.const(size))
            return diff, ast.INT
        result = self._arith(op, lhs, ltype, rhs, rtype)
        return result, _common_type(ltype, rtype)

    def _emit_compare(self, op, lhs, ltype, rhs, rtype) -> Value:
        unsigned = (
            ltype.is_pointer
            or rtype.is_pointer
            or not _common_type(ltype, rtype).signed
        )
        preds = {
            "==": "eq", "!=": "ne",
            "<": "ult" if unsigned else "slt",
            "<=": "ule" if unsigned else "sle",
            ">": "ugt" if unsigned else "sgt",
            ">=": "uge" if unsigned else "sge",
        }
        return self.builder.icmp(preds[op], lhs, rhs)

    def _gen_logical(self, expr: ast.Binary) -> Tuple[Value, CType]:
        is_and = expr.op == "&&"
        rhs_bb = self._new_block("log.rhs")
        merge_bb = self._new_block("log.end")
        lhs_cond = self._gen_condition(expr.left)
        lhs_end = self.builder.block
        if is_and:
            self.builder.cond_br(lhs_cond, rhs_bb, merge_bb)
        else:
            self.builder.cond_br(lhs_cond, merge_bb, rhs_bb)
        self._seal_and_switch(rhs_bb)
        rhs_cond = self._gen_condition(expr.right)
        rhs_val = self.builder.cast("zext", rhs_cond, I32)
        rhs_end = self.builder.block
        self.builder.br(merge_bb)
        self._seal_and_switch(merge_bb)
        phi = self.builder.phi(I32, "log")
        phi.add_incoming(self.builder.const(0 if is_and else 1), lhs_end)
        phi.add_incoming(rhs_val, rhs_end)
        return phi, ast.INT

    def _gen_ternary(self, expr: ast.Ternary) -> Tuple[Value, CType]:
        cond = self._gen_condition(expr.cond)
        then_bb = self._new_block("sel.then")
        else_bb = self._new_block("sel.else")
        merge_bb = self._new_block("sel.end")
        self.builder.cond_br(cond, then_bb, else_bb)
        self._seal_and_switch(then_bb)
        tval, ttype = self._gen_expr(expr.then)
        then_end = self.builder.block
        self.builder.br(merge_bb)
        self._seal_and_switch(else_bb)
        fval, ftype = self._gen_expr(expr.other)
        else_end = self.builder.block
        self.builder.br(merge_bb)
        self._seal_and_switch(merge_bb)
        result_type = ttype if ttype.is_pointer else _common_type(ttype, ftype)
        phi = self.builder.phi(tval.type, "sel")
        phi.add_incoming(tval, then_end)
        phi.add_incoming(fval, else_end)
        return phi, result_type

    def _gen_call(self, expr: ast.CallExpr) -> Tuple[Value, CType]:
        if expr.name not in self.func_types:
            raise CompileError(f"line {expr.line}: call to undeclared {expr.name!r}")
        ret_ctype, param_ctypes = self.func_types[expr.name]
        if len(expr.args) != len(param_ctypes):
            raise CompileError(
                f"line {expr.line}: {expr.name} expects {len(param_ctypes)} args, "
                f"got {len(expr.args)}"
            )
        args = []
        for arg_expr, pctype in zip(expr.args, param_ctypes):
            value, vtype = self._gen_expr(arg_expr)
            args.append(value)
        callee = self.module.get_function(expr.name)
        result = self.builder.call(callee, args, expr.name)
        return result, (ast.INT if ret_ctype.is_void else ret_ctype)

    def _gen_cast(self, expr: ast.CastExpr) -> Tuple[Value, CType]:
        value, vtype = self._gen_expr(expr.operand)
        target = expr.ctype
        if target.is_integer and target.bits < 32:
            return self._masked(value, target), _promote(target)
        # pointer <-> int and 32-bit casts are value-preserving here
        return value, target

    def _gen_condition(self, expr: ast.Expr) -> Value:
        """Produce an i1 for a branch condition."""
        if isinstance(expr, ast.Binary) and expr.op in ("==", "!=", "<", "<=", ">", ">="):
            lhs, ltype = self._gen_expr(expr.left)
            rhs, rtype = self._gen_expr(expr.right)
            return self._emit_compare(expr.op, lhs, ltype, rhs, rtype)
        if isinstance(expr, ast.Unary) and expr.op == "!":
            value, _ = self._gen_expr(expr.operand)
            return self.builder.icmp("eq", value, self.builder.const(0))
        value, _ = self._gen_expr(expr)
        if isinstance(value, ICmp):
            return value
        return self.builder.icmp("ne", value, self.builder.const(0))


def _flatten(items) -> list:
    out = []
    for item in items if isinstance(items, list) else [items]:
        if isinstance(item, list):
            out.extend(_flatten(item))
        else:
            out.append(item)
    return out


def _flat_base(builder: IRBuilder, slot: Value):
    """A pointer to the first scalar element of a (possibly nested) array."""
    ptr = slot
    while isinstance(ptr.type.pointee, ArrayType):
        ptr = builder.gep(ptr, builder.const(0))
    return ptr


def compile_source(source: str, name: str = "module") -> Module:
    """Front end entry point: mini-C source -> IR module."""
    program = parse(source, name)
    return IRGenerator(program, name).generate()


def compile_sources(sources: List[str], name: str = "program") -> Module:
    """Compile multiple translation units and link them into one module
    (the gllvm whole-program step of the paper, §4.6)."""
    modules = [compile_source(src, f"{name}.{i}") for i, src in enumerate(sources)]
    linked = modules[0]
    linked.name = name
    for other in modules[1:]:
        linked.link(other)
    return linked
