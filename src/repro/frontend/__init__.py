"""repro.frontend — the mini-C front end (lexer, parser, IR generation).

The benchmark suite and the examples are written in this dialect; it
covers the C subset the paper's benchmarks exercise: global scalars and
(multi-dimensional) arrays, pointers, functions, the full integer
expression grammar, and all structured control flow.
"""

from .c_ast import CType
from .irgen import MAX_ARGS, CompileError, IRGenerator, compile_source, compile_sources
from .lexer import LexError, Token, tokenize
from .parser import ParseError, Parser, eval_const_expr, parse

__all__ = [
    "CType",
    "CompileError", "IRGenerator", "compile_source", "compile_sources",
    "MAX_ARGS",
    "LexError", "Token", "tokenize",
    "ParseError", "Parser", "parse", "eval_const_expr",
]
