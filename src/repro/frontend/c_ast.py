"""AST and C-level types for the mini-C front end."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# --------------------------------------------------------------------------
# C types
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """A C-level type: integer, pointer, array, or void.

    ``kind`` is one of ``int``, ``ptr``, ``array``, ``void``.  For ints,
    ``bits``/``signed`` matter; for pointers/arrays, ``target`` (and
    ``count`` for arrays).
    """

    kind: str
    bits: int = 32
    signed: bool = True
    target: Optional["CType"] = None
    count: int = 0

    @property
    def is_integer(self) -> bool:
        return self.kind == "int"

    @property
    def is_pointer(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def is_void(self) -> bool:
        return self.kind == "void"

    def decay(self) -> "CType":
        """Array-to-pointer decay."""
        if self.is_array:
            return CType("ptr", target=self.target)
        return self

    @property
    def size(self) -> int:
        if self.kind == "int":
            return max(1, self.bits // 8)
        if self.kind == "ptr":
            return 4
        if self.kind == "array":
            return self.target.size * self.count
        return 0

    def __str__(self):
        if self.kind == "int":
            prefix = "" if self.signed else "unsigned "
            name = {8: "char", 16: "short", 32: "int"}[self.bits]
            return f"{prefix}{name}"
        if self.kind == "ptr":
            return f"{self.target}*"
        if self.kind == "array":
            return f"{self.target}[{self.count}]"
        return "void"


INT = CType("int", 32, True)
UINT = CType("int", 32, False)
# Plain ``char`` is unsigned, matching the ARM EABI the paper targets.
CHAR = CType("int", 8, False)
SCHAR = CType("int", 8, True)
UCHAR = CType("int", 8, False)
SHORT = CType("int", 16, True)
USHORT = CType("int", 16, False)
CVOID = CType("void")


def ptr(target: CType) -> CType:
    return CType("ptr", target=target)


def array(target: CType, count: int) -> CType:
    return CType("array", target=target, count=count)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""            # '-', '+', '~', '!', '++', '--' (prefix)
    operand: Expr = None


@dataclass
class PostIncDec(Expr):
    op: str = ""            # '++' or '--'
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    op: str = "="           # '=', '+=', ...
    target: Expr = None
    value: Expr = None


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Deref(Expr):
    operand: Expr = None


@dataclass
class AddrOf(Expr):
    operand: Expr = None


@dataclass
class CastExpr(Expr):
    ctype: CType = None
    operand: Expr = None


@dataclass
class SizeofExpr(Expr):
    ctype: CType = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class VarDecl(Stmt):
    """One or more local declarations: [(name, ctype, init_expr-or-None)]."""

    declarations: List[Tuple[str, CType, Optional[Expr]]] = field(default_factory=list)
    array_inits: dict = field(default_factory=dict)  # name -> list of const exprs


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None      # ExprStmt or VarDecl
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class SwitchCase:
    """One ``case N:`` (value) or ``default:`` (value None) label plus the
    statements up to the next label."""

    value: Optional[int]
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    scrutinee: Expr = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Empty(Stmt):
    pass


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------


@dataclass
class GlobalVar:
    name: str
    ctype: CType
    init: Optional[object] = None    # Expr or list of Exprs (array)
    is_const: bool = False
    line: int = 0


@dataclass
class Param:
    name: str
    ctype: CType


@dataclass
class FuncDef:
    name: str
    return_type: CType
    params: List[Param]
    body: Optional[Block]            # None for declarations
    line: int = 0


@dataclass
class Program:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)


def has_side_effects(expr: Expr) -> bool:
    """True if evaluating ``expr`` may write state or call a function.

    Side-effect-free loop conditions may be duplicated by loop rotation.
    """
    if expr is None:
        return False
    if isinstance(expr, (Assign, CallExpr, PostIncDec)):
        return True
    if isinstance(expr, Unary):
        if expr.op in ("++", "--"):
            return True
        return has_side_effects(expr.operand)
    if isinstance(expr, Binary):
        return has_side_effects(expr.left) or has_side_effects(expr.right)
    if isinstance(expr, Ternary):
        return any(has_side_effects(e) for e in (expr.cond, expr.then, expr.other))
    if isinstance(expr, Index):
        return has_side_effects(expr.base) or has_side_effects(expr.index)
    if isinstance(expr, (Deref, AddrOf, CastExpr)):
        return has_side_effects(expr.operand)
    return False
