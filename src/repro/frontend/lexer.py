"""Lexer for the mini-C dialect the benchmark programs are written in."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "int", "char", "short", "long", "void", "unsigned", "signed", "const",
    "static", "if", "else", "while", "do", "for", "return", "break",
    "continue", "sizeof", "switch", "case", "default", "goto",
    "uint8_t", "uint16_t", "uint32_t", "int8_t", "int16_t", "int32_t",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "?", ":", ";", ",", "(", ")", "[", "]", "{", "}",
]


@dataclass
class Token:
    kind: str       # 'ident', 'num', 'keyword', 'op', 'eof'
    text: str
    value: int = 0  # numeric value for 'num'
    line: int = 0
    col: int = 0

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(Exception):
    pass


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    tokens = list(_scan(source, filename))
    return tokens


def _scan(source: str, filename: str) -> Iterator[Token]:
    i, line, col = 0, 1, 1
    n = len(source)

    def error(msg: str):
        raise LexError(f"{filename}:{line}:{col}: {msg}")

    while i < n:
        c = source[i]
        # whitespace
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated block comment")
            for ch in source[i:end]:
                if ch == "\n":
                    line += 1
                    col = 1
            i = end + 2
            continue
        # preprocessor-style lines are not supported; reject loudly.
        if c == "#" and col == 1:
            error("preprocessor directives are not supported")
        # identifiers / keywords
        if c.isalpha() or c == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, 0, line, col)
            col += i - start
            continue
        # numbers
        if c.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                value = int(source[start:i], 16)
            else:
                while i < n and source[i].isdigit():
                    i += 1
                value = int(source[start:i])
            # integer suffixes
            while i < n and source[i] in "uUlL":
                i += 1
            yield Token("num", source[start:i], value, line, col)
            col += i - start
            continue
        # character literals
        if c == "'":
            start = i
            i += 1
            if i < n and source[i] == "\\":
                esc = source[i + 1]
                table = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39}
                if esc not in table:
                    error(f"unsupported escape '\\{esc}'")
                value = table[esc]
                i += 2
            elif i < n:
                value = ord(source[i])
                i += 1
            else:
                error("unterminated char literal")
            if i >= n or source[i] != "'":
                error("unterminated char literal")
            i += 1
            yield Token("num", source[start:i], value, line, col)
            col += i - start
            continue
        # operators / punctuation
        for op in OPERATORS:
            if source.startswith(op, i):
                yield Token("op", op, 0, line, col)
                i += len(op)
                col += len(op)
                break
        else:
            error(f"unexpected character {c!r}")
    yield Token("eof", "", 0, line, col)
