"""``spin`` — input-dependent-loop progress diagnostic micro-benchmark.

Not part of the paper's six-benchmark suite (it lives in
``repro.benchsuite.DIAGNOSTICS``, not ``BENCHMARKS``): this program
exists as the forward-progress certifier's seeded true positive.

The countdown loop decrements by ``stride``, a value *loaded from NVM*,
so no constant-step induction variable exists and
:func:`repro.analysis.progress.loop_trip_bounds` cannot close the trip
count — the loop is statically ``progress-unbounded``.  The body is
register-only (no stores), so the checkpoint inserter has no WAR hazard
to cut it with: the whole 50 000-iteration spin sits inside one
checkpoint-delimited region.

Dynamically that region is ~300 k cycles long.  Under continuous power
the program completes (``out == 50000``); under any power-on window
shorter than the region the emulator raises
:class:`~repro.emulator.NoForwardProgress` — the livelock the
``progress-unbounded`` diagnostic predicts.  The progress differential
(:func:`repro.faultinject.run_progress_differential`) checks both
directions of that prediction.
"""

from __future__ import annotations

from .common import Benchmark, Output

SPIN_COUNT = 50_000

SOURCE = """
unsigned int seed = 50000;
unsigned int stride = 1;
unsigned int out;

int main(void) {
    unsigned int x = seed;
    unsigned int n = 0;
    while (x != 0) {
        x = x - stride;
        n = n + 1;
    }
    out = n;
    return 0;
}
"""


def reference():
    return {"out": SPIN_COUNT}


BENCHMARK = Benchmark(
    name="spin",
    source=SOURCE,
    outputs=[Output("out")],
    reference=reference,
    description="input-dependent-loop progress diagnostic (not in the suite)",
    max_instructions=2_000_000,
)
