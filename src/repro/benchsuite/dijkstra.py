"""Dijkstra shortest paths (MiBench `dijkstra` stand-in).

Single-source shortest paths over a dense 24-node graph (adjacency
matrix, xorshift-seeded weights).  The hot loops are *scans* (min
selection) whose stores are rare and guarded, so there is little for
write clustering to do — the paper's example of a benchmark WARio barely
moves (Figure 4/5: Dijkstra -18.7%, mostly function exits).
"""

from __future__ import annotations

from .common import Benchmark, Output

N = 24
INF = 0xFFFFFFFF

SOURCE = r"""
unsigned int adj[24][24];
unsigned int dist[24];
unsigned char visited[24];
unsigned int total_cost;
unsigned int iterations;

void init_graph(void) {
    int i, j;
    unsigned int x = 123456789;
    for (i = 0; i < 24; i++) {
        for (j = 0; j < 24; j++) {
            x = x ^ (x << 13);
            x = x ^ (x >> 17);
            x = x ^ (x << 5);
            adj[i][j] = (i == j) ? 0 : ((x % 97) + 1);
        }
    }
}

void dijkstra(int src) {
    int i, u, v;
    unsigned int best, cand;
    for (i = 0; i < 24; i++) {
        dist[i] = 0xFFFFFFFF;
        visited[i] = 0;
    }
    dist[src] = 0;
    for (i = 0; i < 24; i++) {
        u = 0 - 1;
        best = 0xFFFFFFFF;
        for (v = 0; v < 24; v++) {
            if (!visited[v] && dist[v] < best) {
                best = dist[v];
                u = v;
            }
        }
        if (u < 0) {
            break;
        }
        visited[u] = 1;
        for (v = 0; v < 24; v++) {
            if (!visited[v] && adj[u][v] != 0) {
                cand = dist[u] + adj[u][v];
                if (cand < dist[v]) {
                    dist[v] = cand;
                }
            }
        }
        iterations = iterations + 1;
    }
}

int main(void) {
    int i;
    unsigned int sum = 0;
    init_graph();
    dijkstra(0);
    for (i = 0; i < 24; i++) {
        sum = sum + dist[i];
    }
    total_cost = sum;
    return 0;
}
"""

M32 = 0xFFFFFFFF


def _make_graph():
    adj = [[0] * N for _ in range(N)]
    x = 123456789
    for i in range(N):
        for j in range(N):
            x = (x ^ (x << 13)) & M32
            x = (x ^ (x >> 17)) & M32
            x = (x ^ (x << 5)) & M32
            adj[i][j] = 0 if i == j else (x % 97) + 1
    return adj


def reference():
    adj = _make_graph()
    dist = [INF] * N
    visited = [0] * N
    dist[0] = 0
    iterations = 0
    for _ in range(N):
        u, best = -1, INF
        for v in range(N):
            if not visited[v] and dist[v] < best:
                best, u = dist[v], v
        if u < 0:
            break
        visited[u] = 1
        for v in range(N):
            if not visited[v] and adj[u][v] != 0:
                cand = (dist[u] + adj[u][v]) & M32
                if cand < dist[v]:
                    dist[v] = cand
        iterations += 1
    return {
        "dist": dist,
        "total_cost": sum(dist) & M32,
        "iterations": iterations,
    }


BENCHMARK = Benchmark(
    name="dijkstra",
    source=SOURCE,
    outputs=[Output("dist", count=N), Output("total_cost"), Output("iterations")],
    reference=reference,
    description="Dense-graph Dijkstra over 24 nodes, MiBench-style",
)
