"""Benchmark plumbing: declaration, compilation cache, run + verify."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..backend import Program
from ..core import iclang
from ..emulator import Machine, PowerSupply


@dataclass(frozen=True)
class Output:
    """One checked output: a global scalar or array."""

    name: str
    count: int = 1
    size: int = 4      # element size in bytes
    signed: bool = False


@dataclass
class Benchmark:
    """A benchmark program plus its pure-Python reference results."""

    name: str
    source: str
    outputs: List[Output]
    reference: Callable[[], Dict[str, Union[int, List[int]]]]
    description: str = ""
    max_instructions: int = 30_000_000

    def expected(self) -> Dict[str, Union[int, List[int]]]:
        return self.reference()


class VerificationError(AssertionError):
    pass


_PROGRAM_CACHE: Dict[Tuple[str, str, int, str], Program] = {}


def clear_program_memo() -> None:
    """Drop the in-process compiled-program memo (benchmarking aid: the
    ``repro bench`` cold runs must not inherit warm programs)."""
    _PROGRAM_CACHE.clear()


def _memo_token(cache) -> str:
    """The memo partition for a cache policy.

    The in-process memo must be keyed by the *backing store* as well as
    the cell: a long-lived server worker can be asked to compile the
    same benchmark against a different cache directory than whatever the
    process memoised earlier (fork-inherited state included), and
    handing out a program memoised under another store would silently
    cross the stores' artifact spaces.  ``cache=False`` skips the disk
    but shares the default partition — compilation is deterministic, so
    the object is interchangeable, and ``repro bench`` clears the memo
    explicitly when it needs a truly cold compile.
    """
    from ..cache import resolve_cache

    store = resolve_cache(None if cache is False else cache)
    return store.directory if store is not None else "nocache"


def compile_benchmark(
    bench: Benchmark, env: str, unroll_factor: Optional[int] = None, cache=None
) -> Program:
    """Compile (with caching — programs are immutable across runs).

    Two layers: an in-process memo keyed on (benchmark, environment,
    unroll, backing store), and — through ``iclang`` — the
    content-addressed on-disk :mod:`repro.cache` shared across
    processes.  ``cache`` follows the :func:`repro.cache.resolve_cache`
    convention.
    """
    key = (bench.name, env, unroll_factor or 0, _memo_token(cache))
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = iclang(bench.source, env, unroll_factor=unroll_factor,
                         name=bench.name, cache=cache)
        _PROGRAM_CACHE[key] = program
    return program


def run_benchmark(
    bench: Benchmark,
    env: str,
    power: Optional[PowerSupply] = None,
    unroll_factor: Optional[int] = None,
    war_check: bool = True,
    cost_model=None,
    verify: bool = True,
    program: Optional[Program] = None,
):
    """Compile, execute, and (optionally) verify one benchmark run.

    Pass ``program`` to reuse an already compiled image (the evaluation
    runner compiles each grid cell exactly once and feeds the same
    program to both emulation and the code-size statistics).

    Returns ``(machine, stats)``.
    """
    if program is None:
        program = compile_benchmark(bench, env, unroll_factor)
    machine = Machine(program, cost_model=cost_model, war_check=war_check)
    stats = machine.run(power=power, max_instructions=bench.max_instructions)
    if verify:
        verify_outputs(bench, machine)
        if machine.war is not None and env != "plain" and not machine.war.clean:
            first = machine.war.violations[0]
            raise VerificationError(f"{bench.name}/{env}: {first}")
    return machine, stats


def verify_outputs(bench: Benchmark, machine: Machine) -> None:
    """Compare every declared output global against the reference."""
    expected = bench.expected()
    for output in bench.outputs:
        got = machine.read_global(output.name, output.count, output.size, output.signed)
        want = expected[output.name]
        if got != want:
            raise VerificationError(
                f"{bench.name}: output @{output.name} mismatch:\n"
                f"  expected {want!r}\n  got      {got!r}"
            )
