"""picojpeg-like baseline decoder (richgel999/picojpeg stand-in).

A scaled-down JPEG-style decode pipeline over an embedded compressed
stream: a bit-reader with global state (the picojpeg ``getBits`` path,
whose bit-buffer updates are scalar-global WARs on every call), run-length
coefficient decoding through the zig-zag order, in-place dequantisation,
and an in-place integer butterfly transform (IDCT stand-in) over each
8x8 block, followed by clamping to 8-bit pixels.

The stream is generated (seeded) in Python and embedded as an
initializer, the way picojpeg's test images are baked into flash.
"""

from __future__ import annotations

import random

from .common import Benchmark, Output

NUM_BLOCKS = 6
SEED = 0x9E3779B9

_ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]
_QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56, 14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
]


def _make_stream():
    """Encode NUM_BLOCKS blocks of (4-bit run, 8-bit level) pairs; a pair
    with run 15 and level 0 terminates a block."""
    rng = random.Random(SEED)
    bits = []

    def put(value, n):
        for shift in range(n - 1, -1, -1):
            bits.append((value >> shift) & 1)

    for _ in range(NUM_BLOCKS):
        pos = 0
        put(0, 4)  # DC run = 0
        put(rng.randrange(60, 196), 8)  # DC level
        pos = 1
        while pos < 64:
            run = rng.randrange(0, 8)
            if pos + run >= 64 or rng.random() < 0.18:
                break
            pos += run
            level = rng.randrange(0, 256)
            if level == 128:
                level = 129
            put(run, 4)
            put(level, 8)
            pos += 1
        put(15, 4)
        put(0, 8)
    while len(bits) % 8:
        bits.append(0)
    stream = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for b in bits[i : i + 8]:
            byte = (byte << 1) | b
        stream.append(byte)
    return bytes(stream)


_STREAM = _make_stream()
_STREAM_INIT = ",\n    ".join(
    ", ".join(str(b) for b in _STREAM[i : i + 16]) for i in range(0, len(_STREAM), 16)
)
_ZZ_INIT = ", ".join(str(v) for v in _ZIGZAG)
_Q_INIT = ", ".join(str(v) for v in _QUANT)

SOURCE = (
    f"""
const unsigned char stream[{len(_STREAM)}] = {{
    {_STREAM_INIT}
}};
const unsigned char zigzag[64] = {{ {_ZZ_INIT} }};
const unsigned char quant[64] = {{ {_Q_INIT} }};
"""
    + r"""
unsigned int stream_pos;
unsigned int bit_buf;
unsigned int bit_cnt;
int coef[64];
unsigned char pixels[384];
unsigned int blocks_decoded;

unsigned int get_bits(int n) {
    unsigned int v;
    while (bit_cnt < (unsigned int)n) {
        bit_buf = (bit_buf << 8) | stream[stream_pos];
        stream_pos = stream_pos + 1;
        bit_cnt = bit_cnt + 8;
    }
    bit_cnt = bit_cnt - (unsigned int)n;
    v = (bit_buf >> bit_cnt) & ((1 << n) - 1);
    return v;
}

void decode_coefficients(int *c) {
    int i, run, level;
    for (i = 0; i < 64; i++) {
        c[i] = 0;
    }
    i = 0;
    while (i < 64) {
        run = (int)get_bits(4);
        level = (int)get_bits(8);
        if (run == 15 && level == 0) {
            break;
        }
        i = i + run;
        if (i >= 64) {
            break;
        }
        c[zigzag[i]] = level - 128;
        i = i + 1;
    }
}

void dequantize(int *c) {
    int i;
    for (i = 0; i < 64; i++) {
        c[i] = c[i] * (int)quant[i];
    }
}

void butterfly_rows(int *c) {
    int r, s0, s1, s2, s3, s4, s5, s6, s7;
    for (r = 0; r < 8; r++) {
        s0 = c[r * 8];
        s1 = c[r * 8 + 1];
        s2 = c[r * 8 + 2];
        s3 = c[r * 8 + 3];
        s4 = c[r * 8 + 4];
        s5 = c[r * 8 + 5];
        s6 = c[r * 8 + 6];
        s7 = c[r * 8 + 7];
        c[r * 8] = s0 + s4 + ((s2 + s6) >> 1);
        c[r * 8 + 1] = s1 + s5 + ((s3 + s7) >> 1);
        c[r * 8 + 2] = s0 - s4 + ((s2 - s6) >> 1);
        c[r * 8 + 3] = s1 - s5 + ((s3 - s7) >> 1);
        c[r * 8 + 4] = s0 + s4 - ((s2 + s6) >> 1);
        c[r * 8 + 5] = s1 + s5 - ((s3 + s7) >> 1);
        c[r * 8 + 6] = s0 - s4 - ((s2 - s6) >> 1);
        c[r * 8 + 7] = s1 - s5 - ((s3 - s7) >> 1);
    }
}

void butterfly_cols(int *co) {
    int c, s0, s1, s2, s3, s4, s5, s6, s7;
    for (c = 0; c < 8; c++) {
        s0 = co[c];
        s1 = co[c + 8];
        s2 = co[c + 16];
        s3 = co[c + 24];
        s4 = co[c + 32];
        s5 = co[c + 40];
        s6 = co[c + 48];
        s7 = co[c + 56];
        co[c] = s0 + s4 + ((s1 + s5) >> 2);
        co[c + 8] = s0 - s4 + ((s1 - s5) >> 2);
        co[c + 16] = s2 + s6 + ((s3 + s7) >> 2);
        co[c + 24] = s2 - s6 + ((s3 - s7) >> 2);
        co[c + 32] = s0 + s4 - ((s1 + s5) >> 2);
        co[c + 40] = s0 - s4 - ((s1 - s5) >> 2);
        co[c + 48] = s2 + s6 - ((s3 + s7) >> 2);
        co[c + 56] = s2 - s6 - ((s3 - s7) >> 2);
    }
}

void emit_pixels(int *c, unsigned char *out) {
    int i, v;
    for (i = 0; i < 64; i++) {
        v = (c[i] >> 5) + 128;
        if (v < 0) {
            v = 0;
        }
        if (v > 255) {
            v = 255;
        }
        out[i] = (unsigned char)v;
    }
}

int main(void) {
    int b;
    for (b = 0; b < 6; b++) {
        decode_coefficients(coef);
        dequantize(coef);
        butterfly_rows(coef);
        butterfly_cols(coef);
        emit_pixels(coef, pixels + b * 64);
        blocks_decoded = blocks_decoded + 1;
    }
    return 0;
}
"""
)


def reference():
    stream = _STREAM
    pos = [0]
    buf = [0]
    cnt = [0]

    def get_bits(n):
        while cnt[0] < n:
            buf[0] = ((buf[0] << 8) | stream[pos[0]]) & 0xFFFFFFFF
            pos[0] += 1
            cnt[0] += 8
        cnt[0] -= n
        return (buf[0] >> cnt[0]) & ((1 << n) - 1)

    pixels = []
    for _block in range(NUM_BLOCKS):
        coef = [0] * 64
        i = 0
        while i < 64:
            run = get_bits(4)
            level = get_bits(8)
            if run == 15 and level == 0:
                break
            i += run
            if i >= 64:
                break
            coef[_ZIGZAG[i]] = level - 128
            i += 1
        coef = [c * q for c, q in zip(coef, _QUANT)]
        for r in range(8):
            s = coef[r * 8 : r * 8 + 8]
            coef[r * 8] = s[0] + s[4] + ((s[2] + s[6]) >> 1)
            coef[r * 8 + 1] = s[1] + s[5] + ((s[3] + s[7]) >> 1)
            coef[r * 8 + 2] = s[0] - s[4] + ((s[2] - s[6]) >> 1)
            coef[r * 8 + 3] = s[1] - s[5] + ((s[3] - s[7]) >> 1)
            coef[r * 8 + 4] = s[0] + s[4] - ((s[2] + s[6]) >> 1)
            coef[r * 8 + 5] = s[1] + s[5] - ((s[3] + s[7]) >> 1)
            coef[r * 8 + 6] = s[0] - s[4] - ((s[2] - s[6]) >> 1)
            coef[r * 8 + 7] = s[1] - s[5] - ((s[3] - s[7]) >> 1)
        for c in range(8):
            s = [coef[c + 8 * k] for k in range(8)]
            coef[c] = s[0] + s[4] + ((s[1] + s[5]) >> 2)
            coef[c + 8] = s[0] - s[4] + ((s[1] - s[5]) >> 2)
            coef[c + 16] = s[2] + s[6] + ((s[3] + s[7]) >> 2)
            coef[c + 24] = s[2] - s[6] + ((s[3] - s[7]) >> 2)
            coef[c + 32] = s[0] + s[4] - ((s[1] + s[5]) >> 2)
            coef[c + 40] = s[0] - s[4] - ((s[1] - s[5]) >> 2)
            coef[c + 48] = s[2] + s[6] - ((s[3] + s[7]) >> 2)
            coef[c + 56] = s[2] - s[6] - ((s[3] - s[7]) >> 2)
        for v in coef:
            v = (v >> 5) + 128
            pixels.append(max(0, min(255, v)))
    return {"pixels": pixels, "blocks_decoded": NUM_BLOCKS}


BENCHMARK = Benchmark(
    name="picojpeg",
    source=SOURCE,
    outputs=[Output("pixels", count=NUM_BLOCKS * 64, size=1), Output("blocks_decoded")],
    reference=reference,
    description="picojpeg-like RLE + dequant + butterfly transform decoder",
)
