"""SHA-1 (MiBench `sha` stand-in).

Full SHA-1 over 512 bytes (8 x 64-byte blocks): message-schedule
expansion into ``W[80]``, the 80-round compression, and digest updates.
The schedule loop (``W[t] = rol(W[t-3]^W[t-8]^W[t-14]^W[t-16], 1)``) is
the paper's best case for the Loop Write Clusterer: one loop-carried WAR
per iteration, all clusterable (SHA shows ~-88% checkpoints vs Ratchet,
Table 1).
"""

from __future__ import annotations

from .common import Benchmark, Output

NUM_BLOCKS = 8
DATA_LEN = NUM_BLOCKS * 64

SOURCE = r"""
unsigned int H[5];
unsigned int W[80];
unsigned char data[512];
unsigned int digest[5];

void make_data(void) {
    int i;
    unsigned int x = 2463534242;
    for (i = 0; i < 512; i++) {
        x = x ^ (x << 13);
        x = x ^ (x >> 17);
        x = x ^ (x << 5);
        data[i] = (unsigned char)(x & 0xFF);
    }
}

unsigned int rol(unsigned int x, int s) {
    return (x << s) | (x >> (32 - s));
}

void sha_transform(unsigned char *chunk) {
    int t;
    unsigned int a, b, c, d, e, tmp;
    for (t = 0; t < 16; t++) {
        W[t] = ((unsigned int)chunk[t * 4] << 24)
             | ((unsigned int)chunk[t * 4 + 1] << 16)
             | ((unsigned int)chunk[t * 4 + 2] << 8)
             | (unsigned int)chunk[t * 4 + 3];
    }
    for (t = 16; t < 80; t++) {
        W[t] = rol(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1);
    }
    a = H[0];
    b = H[1];
    c = H[2];
    d = H[3];
    e = H[4];
    for (t = 0; t < 20; t++) {
        tmp = rol(a, 5) + ((b & c) | ((~b) & d)) + e + 0x5A827999 + W[t];
        e = d; d = c; c = rol(b, 30); b = a; a = tmp;
    }
    for (t = 20; t < 40; t++) {
        tmp = rol(a, 5) + (b ^ c ^ d) + e + 0x6ED9EBA1 + W[t];
        e = d; d = c; c = rol(b, 30); b = a; a = tmp;
    }
    for (t = 40; t < 60; t++) {
        tmp = rol(a, 5) + ((b & c) | (b & d) | (c & d)) + e + 0x8F1BBCDC + W[t];
        e = d; d = c; c = rol(b, 30); b = a; a = tmp;
    }
    for (t = 60; t < 80; t++) {
        tmp = rol(a, 5) + (b ^ c ^ d) + e + 0xCA62C1D6 + W[t];
        e = d; d = c; c = rol(b, 30); b = a; a = tmp;
    }
    H[0] = H[0] + a;
    H[1] = H[1] + b;
    H[2] = H[2] + c;
    H[3] = H[3] + d;
    H[4] = H[4] + e;
}

int main(void) {
    int i;
    make_data();
    H[0] = 0x67452301;
    H[1] = 0xEFCDAB89;
    H[2] = 0x98BADCFE;
    H[3] = 0x10325476;
    H[4] = 0xC3D2E1F0;
    for (i = 0; i < 8; i++) {
        sha_transform(data + i * 64);
    }
    for (i = 0; i < 5; i++) {
        digest[i] = H[i];
    }
    return 0;
}
"""

M32 = 0xFFFFFFFF


def _rol(x, s):
    return ((x << s) | (x >> (32 - s))) & M32


def _make_data():
    data = []
    x = 2463534242
    for _ in range(DATA_LEN):
        x = (x ^ (x << 13)) & M32
        x = (x ^ (x >> 17)) & M32
        x = (x ^ (x << 5)) & M32
        data.append(x & 0xFF)
    return data


def reference():
    data = _make_data()
    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    for block in range(NUM_BLOCKS):
        chunk = data[block * 64 : (block + 1) * 64]
        w = [0] * 80
        for t in range(16):
            w[t] = (
                (chunk[t * 4] << 24)
                | (chunk[t * 4 + 1] << 16)
                | (chunk[t * 4 + 2] << 8)
                | chunk[t * 4 + 3]
            )
        for t in range(16, 80):
            w[t] = _rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1)
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f, k = (b & c) | ((~b & M32) & d), 0x5A827999
            elif t < 40:
                f, k = b ^ c ^ d, 0x6ED9EBA1
            elif t < 60:
                f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
            else:
                f, k = b ^ c ^ d, 0xCA62C1D6
            tmp = (_rol(a, 5) + (f & M32) + e + k + w[t]) & M32
            e, d, c, b, a = d, c, _rol(b, 30), a, tmp
        h = [
            (h[0] + a) & M32, (h[1] + b) & M32, (h[2] + c) & M32,
            (h[3] + d) & M32, (h[4] + e) & M32,
        ]
    return {"digest": h, "data": data}


BENCHMARK = Benchmark(
    name="sha",
    source=SOURCE,
    outputs=[Output("digest", count=5), Output("data", count=DATA_LEN, size=1)],
    reference=reference,
    description="SHA-1 over 512 bytes (8 blocks), MiBench-style",
)
