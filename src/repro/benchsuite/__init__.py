"""repro.benchsuite — the paper's six benchmarks (§5.1.2), written in the
mini-C dialect with pure-Python reference implementations:

* ``coremark`` — CoreMark-like list/matrix/state-machine mix [16]
* ``sha`` — MiBench SHA-1 [19]
* ``crc`` — MiBench CRC-32 [19]
* ``tiny-aes`` — Tiny AES-128 in C [43]
* ``dijkstra`` — MiBench Dijkstra [19]
* ``picojpeg`` — picojpeg-like baseline decoder [17]
"""

from . import aes, coremark, crc, dijkstra, picojpeg, sha, spin, xcall
from .common import (
    Benchmark,
    Output,
    VerificationError,
    clear_program_memo,
    compile_benchmark,
    run_benchmark,
    verify_outputs,
)

#: paper ordering (Figure 4)
BENCHMARKS = {
    bench.name: bench
    for bench in (
        coremark.BENCHMARK,
        sha.BENCHMARK,
        crc.BENCHMARK,
        aes.BENCHMARK,
        dijkstra.BENCHMARK,
        picojpeg.BENCHMARK,
    )
}

#: diagnostic micro-benchmarks: resolvable by name (``get_benchmark``)
#: but never part of the evaluated suite
DIAGNOSTICS = {
    xcall.BENCHMARK.name: xcall.BENCHMARK,
    spin.BENCHMARK.name: spin.BENCHMARK,
}

#: display names used in the paper's figures
PAPER_NAMES = {
    "coremark": "CoreMark",
    "sha": "SHA",
    "crc": "CRC",
    "tiny-aes": "Tiny AES",
    "dijkstra": "Dijkstra",
    "picojpeg": "picojpeg",
}


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        pass
    try:
        return DIAGNOSTICS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(BENCHMARKS) + sorted(DIAGNOSTICS)}"
        ) from None


__all__ = [
    "BENCHMARKS", "DIAGNOSTICS", "PAPER_NAMES", "get_benchmark",
    "Benchmark", "Output", "VerificationError",
    "clear_program_memo", "compile_benchmark", "run_benchmark",
    "verify_outputs",
]
