"""CRC-32 (MiBench `CRC` stand-in).

Table-driven reflected CRC-32 over a 512-byte message, processed in
16-byte chunks through a helper function, with the lookup table as a
constant initializer (as in the original).  The chunk helper keeps the
function-call epilogue cost that WARio's Epilog Optimizer attacks on the
hot path; the paper notes CRC has almost no middle-end checkpoints to
optimise but benefits significantly from the epilog optimisation
(§5.2.2, Figure 5).
"""

from __future__ import annotations

from .common import Benchmark, Output

MESSAGE_LEN = 512
CHUNK = 16
POLY = 0xEDB88320


def _make_table():
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (POLY ^ (c >> 1)) if (c & 1) else (c >> 1)
        table.append(c)
    return table


_TABLE = _make_table()
_TABLE_INIT = ",\n    ".join(
    ", ".join(f"0x{v:08X}" for v in _TABLE[i : i + 8]) for i in range(0, 256, 8)
)

SOURCE = (
    """
const unsigned int crc_table[256] = {
    """
    + _TABLE_INIT
    + """
};
unsigned char message[512];
unsigned int crc_result;
unsigned int chunks_done;

void make_message(void) {
    int i;
    for (i = 0; i < 512; i++) {
        message[i] = (unsigned char)(i * 7 + 13);
    }
}

unsigned int crc_chunk(unsigned int crc, int start, int len) {
    int i;
    unsigned int idx;
    for (i = 0; i < len; i++) {
        idx = (crc ^ message[start + i]) & 0xFF;
        crc = crc_table[idx] ^ (crc >> 8);
    }
    chunks_done = chunks_done + 1;
    return crc;
}

int main(void) {
    unsigned int crc = 0xFFFFFFFF;
    int b;
    make_message();
    for (b = 0; b < 32; b++) {
        crc = crc_chunk(crc, b * 16, 16);
    }
    crc_result = crc ^ 0xFFFFFFFF;
    return 0;
}
"""
)


def reference():
    message = [(i * 7 + 13) & 0xFF for i in range(MESSAGE_LEN)]
    crc = 0xFFFFFFFF
    for byte in message:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return {
        "crc_result": crc ^ 0xFFFFFFFF,
        "chunks_done": MESSAGE_LEN // CHUNK,
    }


BENCHMARK = Benchmark(
    name="crc",
    source=SOURCE,
    outputs=[Output("crc_result"), Output("chunks_done")],
    reference=reference,
    description="MiBench-style table-driven CRC-32 over a 512-byte message",
)
