"""``xcall`` — cross-call frame-read diagnostic micro-benchmark.

Not part of the paper's six-benchmark suite (it lives in
``repro.benchsuite.DIAGNOSTICS``, not ``BENCHMARKS``): this program
exists to exercise the one interprocedural blind spot of the byte-level
machine verifier (:mod:`repro.backend.mir_war`).

``work`` passes the address of a stack local to ``get``, a transparent
callee (under ``*-summaries`` environments) that reads the caller's
frame through the pointer — a read the caller's machine code never
performs, so byte-interval analysis of ``work`` alone cannot see it.
The callee body is padded past the always-inliner's threshold
(:func:`repro.transforms.inline.inline_always`, 40 raw IR instructions)
so the call survives into machine code.

Under a correct WARio epilogue the frame release is interrupt-masked
and committed by the exit checkpoint, so the cross-call read is safe.
With the seeded ``drop_epilog_mask`` bug the release is exposed:
interrupt stacking can clobber the local between ``addsp`` and the exit
checkpoint, and re-execution of the region observes the clobbered
value.  Only the idempotence certifier's cross-call mod/ref facts catch
this statically; the fault-injection campaign catches it dynamically
under a periodic interrupt load.
"""

from __future__ import annotations

from .common import Benchmark, Output

SOURCE = """
unsigned int acc;
unsigned int out;

unsigned int get(unsigned int *p) {
    unsigned int v = *p;
    unsigned int a = v + 1;
    unsigned int b = a + v;
    unsigned int c = b + a + 3;
    unsigned int d = c + b + 5;
    unsigned int e = d + c + 7;
    unsigned int f = e + d + 11;
    unsigned int g = f + e + 13;
    unsigned int h = g + f + 17;
    unsigned int i = h + g + 19;
    unsigned int j = i + h + 23;
    unsigned int k = j + i + 29;
    return k + j - a - b;
}

void work(void) {
    unsigned int local = 7;
    acc = acc + 1;
    out = get(&local);
}

int main(void) {
    work();
    return 0;
}
"""


def _get(v: int) -> int:
    """Pure-Python mirror of the padded callee."""
    a = v + 1
    b = a + v
    c = b + a + 3
    d = c + b + 5
    e = d + c + 7
    f = e + d + 11
    g = f + e + 13
    h = g + f + 17
    i = h + g + 19
    j = i + h + 23
    k = j + i + 29
    return (k + j - a - b) & 0xFFFFFFFF


def reference():
    return {"acc": 1, "out": _get(7)}


BENCHMARK = Benchmark(
    name="xcall",
    source=SOURCE,
    outputs=[Output("acc"), Output("out")],
    reference=reference,
    description="cross-call frame-read diagnostic (not in the suite)",
    max_instructions=100_000,
)
