"""Tiny AES-128 (kokke/tiny-aes-c stand-in).

Full AES-128 ECB encryption of 4 blocks, in place: key expansion plus the
SubBytes / ShiftRows / MixColumns / AddRoundKey round functions operating
on a caller-provided state pointer.  The in-place byte updates with
constant offsets are exactly where Ratchet's object-granular aliasing
drowns in bogus WARs while the PDG (R-PDG/WARio) sees only the real ones,
and the 16-iteration round loops are prime Loop Write Clusterer targets
(Tiny AES: -74.5% checkpoints vs Ratchet, Table 1).

The Python reference is validated against the FIPS-197 test vector in the
test suite.
"""

from __future__ import annotations

from .common import Benchmark, Output

NUM_BLOCKS = 4

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
]
_RCON = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

_SBOX_INIT = ",\n    ".join(
    ", ".join(f"0x{v:02X}" for v in _SBOX[i : i + 16]) for i in range(0, 256, 16)
)
_RCON_INIT = ", ".join(f"0x{v:02X}" for v in _RCON)

SOURCE = (
    """
const unsigned char sbox[256] = {
    """
    + _SBOX_INIT
    + """
};
const unsigned char rcon[11] = { """
    + _RCON_INIT
    + """ };

unsigned char key[16];
unsigned char rk[176];
unsigned char buf[64];
unsigned int blocks_done;

unsigned char xtime(unsigned char x) {
    return (unsigned char)((x << 1) ^ (((x >> 7) & 1) * 0x1B));
}

void key_expansion(void) {
    int i;
    unsigned char t0, t1, t2, t3, tmp;
    for (i = 0; i < 16; i++) {
        rk[i] = key[i];
    }
    for (i = 4; i < 44; i++) {
        t0 = rk[(i - 1) * 4];
        t1 = rk[(i - 1) * 4 + 1];
        t2 = rk[(i - 1) * 4 + 2];
        t3 = rk[(i - 1) * 4 + 3];
        if ((i & 3) == 0) {
            tmp = t0;
            t0 = sbox[t1] ^ rcon[i / 4];
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
        }
        rk[i * 4] = rk[(i - 4) * 4] ^ t0;
        rk[i * 4 + 1] = rk[(i - 4) * 4 + 1] ^ t1;
        rk[i * 4 + 2] = rk[(i - 4) * 4 + 2] ^ t2;
        rk[i * 4 + 3] = rk[(i - 4) * 4 + 3] ^ t3;
    }
}

void add_round_key(unsigned char *state, int round) {
    int i;
    for (i = 0; i < 16; i++) {
        state[i] = state[i] ^ rk[round * 16 + i];
    }
}

void sub_bytes(unsigned char *state) {
    int i;
    for (i = 0; i < 16; i++) {
        state[i] = sbox[state[i]];
    }
}

void shift_rows(unsigned char *state) {
    unsigned char t;
    t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    t = state[2];
    state[2] = state[10];
    state[10] = t;
    t = state[6];
    state[6] = state[14];
    state[14] = t;
    t = state[3];
    state[3] = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = t;
}

void mix_columns(unsigned char *state) {
    int c;
    unsigned char a0, a1, a2, a3;
    for (c = 0; c < 4; c++) {
        a0 = state[c * 4];
        a1 = state[c * 4 + 1];
        a2 = state[c * 4 + 2];
        a3 = state[c * 4 + 3];
        state[c * 4] = (unsigned char)(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        state[c * 4 + 1] = (unsigned char)(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        state[c * 4 + 2] = (unsigned char)(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        state[c * 4 + 3] = (unsigned char)((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
}

void cipher(unsigned char *state) {
    int round;
    add_round_key(state, 0);
    for (round = 1; round < 10; round++) {
        sub_bytes(state);
        shift_rows(state);
        mix_columns(state);
        add_round_key(state, round);
    }
    sub_bytes(state);
    shift_rows(state);
    add_round_key(state, 10);
}

int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        key[i] = (unsigned char)(i * 5 + 1);
    }
    for (i = 0; i < 64; i++) {
        buf[i] = (unsigned char)(i * 11 + 3);
    }
    key_expansion();
    for (i = 0; i < 4; i++) {
        cipher(buf + i * 16);
        blocks_done = blocks_done + 1;
    }
    return 0;
}
"""
)


def _xtime(x):
    return ((x << 1) ^ ((x >> 7) * 0x1B)) & 0xFF


def expand_key(key):
    """AES-128 key schedule -> 176 round-key bytes."""
    rk = list(key)
    for i in range(4, 44):
        t = rk[(i - 1) * 4 : i * 4]
        if i % 4 == 0:
            t = [
                _SBOX[t[1]] ^ _RCON[i // 4],
                _SBOX[t[2]],
                _SBOX[t[3]],
                _SBOX[t[0]],
            ]
        rk.extend(rk[(i - 4) * 4 + j] ^ t[j] for j in range(4))
    return rk


def encrypt_block(block, rk):
    """AES-128 encryption of one 16-byte block (column-major state)."""
    state = list(block)

    def add_round_key(rnd):
        for i in range(16):
            state[i] ^= rk[rnd * 16 + i]

    def sub_bytes():
        for i in range(16):
            state[i] = _SBOX[state[i]]

    def shift_rows():
        s = state
        s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
        s[2], s[10] = s[10], s[2]
        s[6], s[14] = s[14], s[6]
        s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]

    def mix_columns():
        for c in range(4):
            a = state[c * 4 : c * 4 + 4]
            state[c * 4] = _xtime(a[0]) ^ (_xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3]
            state[c * 4 + 1] = a[0] ^ _xtime(a[1]) ^ (_xtime(a[2]) ^ a[2]) ^ a[3]
            state[c * 4 + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ (_xtime(a[3]) ^ a[3])
            state[c * 4 + 3] = (_xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ _xtime(a[3])

    add_round_key(0)
    for rnd in range(1, 10):
        sub_bytes()
        shift_rows()
        mix_columns()
        add_round_key(rnd)
    sub_bytes()
    shift_rows()
    add_round_key(10)
    return state


def reference():
    key = [(i * 5 + 1) & 0xFF for i in range(16)]
    buf = [(i * 11 + 3) & 0xFF for i in range(64)]
    rk = expand_key(key)
    out = []
    for b in range(NUM_BLOCKS):
        out.extend(encrypt_block(buf[b * 16 : (b + 1) * 16], rk))
    return {"buf": out, "blocks_done": NUM_BLOCKS, "rk": rk}


BENCHMARK = Benchmark(
    name="tiny-aes",
    source=SOURCE,
    outputs=[
        Output("buf", count=64, size=1),
        Output("rk", count=176, size=1),
        Output("blocks_done"),
    ],
    reference=reference,
    description="AES-128 ECB encryption of 4 blocks, tiny-AES style",
)
