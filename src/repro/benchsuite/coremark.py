"""CoreMark-like workload (EEMBC CoreMark stand-in).

The three CoreMark kernels, scaled to MCU size: linked-list processing
(an index-linked list that is repeatedly reversed and searched), matrix
manipulation (in-place scale/add over a 10x10 matrix), and a state
machine scanning a byte stream and bumping per-state counters.  Results
are folded into a running checksum, as CoreMark does with its CRC.
"""

from __future__ import annotations

from .common import Benchmark, Output

LIST_LEN = 32
MAT_N = 10
SM_LEN = 192
REPEAT = 3

SOURCE = r"""
int list_next[32];
int list_val[32];
int mat[100];
unsigned char sm_input[192];
unsigned int sm_counts[8];
unsigned int checksum;

void list_init(void) {
    int i;
    for (i = 0; i < 32; i++) {
        list_next[i] = (i == 31) ? (0 - 1) : (i + 1);
        list_val[i] = (i * i) ^ 0x5A;
    }
}

int list_reverse(int *next, int head) {
    int prev, cur, nxt;
    prev = 0 - 1;
    cur = head;
    while (cur >= 0) {
        nxt = next[cur];
        next[cur] = prev;
        prev = cur;
        cur = nxt;
    }
    return prev;
}

int list_find(int *next, int *values, int head, int target) {
    int cur = head;
    int k;
    /* fuel-bounded traversal: the list has exactly 32 nodes, and an
       explicit trip bound keeps the (read-only, checkpoint-free) scan
       statically certifiable for forward progress */
    for (k = 0; k < 32; k++) {
        if (cur < 0) {
            return 0 - 1;
        }
        if (values[cur] == target) {
            return cur;
        }
        cur = next[cur];
    }
    return 0 - 1;
}

void matrix_init(int *m) {
    int i;
    for (i = 0; i < 100; i++) {
        m[i] = i % 17;
    }
}

void matrix_scale_add(int *m, int c, int b) {
    int i;
    for (i = 0; i < 100; i++) {
        m[i] = m[i] * c + b;
    }
}

unsigned int matrix_sum(int *m) {
    int i;
    unsigned int s = 0;
    for (i = 0; i < 100; i++) {
        s = s + (unsigned int)m[i];
    }
    return s;
}

void sm_init(void) {
    int i;
    unsigned int x = 88172645;
    for (i = 0; i < 192; i++) {
        x = x ^ (x << 13);
        x = x ^ (x >> 17);
        x = x ^ (x << 5);
        sm_input[i] = (unsigned char)(x & 0xFF);
    }
}

void sm_run(void) {
    int i, state;
    unsigned char ch;
    state = 0;
    for (i = 0; i < 192; i++) {
        ch = sm_input[i];
        if (ch < 32) {
            state = 0;
        } else if (ch < 64) {
            state = (state + 1) & 7;
        } else if (ch < 128) {
            state = (state + 3) & 7;
        } else if (ch < 192) {
            state = (state * 2 + 1) & 7;
        } else {
            state = 7 - state;
        }
        sm_counts[state] = sm_counts[state] + 1;
    }
}

unsigned int mix(unsigned int crc, unsigned int v) {
    crc = crc ^ v;
    crc = (crc >> 3) | (crc << 29);
    crc = crc * 2654435761;
    return crc;
}

int main(void) {
    int r, head, found;
    unsigned int crc = 0xDEADBEEF;
    int i;
    list_init();
    matrix_init(mat);
    sm_init();
    for (r = 0; r < 3; r++) {
        head = list_reverse(list_next, (r & 1) ? 0 : ((r == 0) ? 0 : 31));
        found = list_find(list_next, list_val, head, ((7 + r) * (7 + r)) ^ 0x5A);
        crc = mix(crc, (unsigned int)(head + 1));
        crc = mix(crc, (unsigned int)(found + 1));
        matrix_scale_add(mat, 3, r + 1);
        crc = mix(crc, matrix_sum(mat));
        sm_run();
    }
    for (i = 0; i < 8; i++) {
        crc = mix(crc, sm_counts[i]);
    }
    checksum = crc;
    return 0;
}
"""

M32 = 0xFFFFFFFF


def reference():
    list_next = [(-1 if i == 31 else i + 1) for i in range(LIST_LEN)]
    list_val = [((i * i) ^ 0x5A) for i in range(LIST_LEN)]
    mat = [i % 17 for i in range(MAT_N * MAT_N)]
    x = 88172645
    sm_input = []
    for _ in range(SM_LEN):
        x = (x ^ (x << 13)) & M32
        x = (x ^ (x >> 17)) & M32
        x = (x ^ (x << 5)) & M32
        sm_input.append(x & 0xFF)
    sm_counts = [0] * 8

    def list_reverse(head):
        prev, cur = -1, head
        while cur >= 0:
            nxt = list_next[cur]
            list_next[cur] = prev
            prev, cur = cur, nxt
        return prev

    def list_find(head, target):
        cur = head
        while cur >= 0:
            if list_val[cur] == target:
                return cur
            cur = list_next[cur]
        return -1

    def sm_run():
        state = 0
        for ch in sm_input:
            if ch < 32:
                state = 0
            elif ch < 64:
                state = (state + 1) & 7
            elif ch < 128:
                state = (state + 3) & 7
            elif ch < 192:
                state = (state * 2 + 1) & 7
            else:
                state = 7 - state
            sm_counts[state] += 1

    def mix(crc, v):
        crc = (crc ^ v) & M32
        crc = ((crc >> 3) | (crc << 29)) & M32
        crc = (crc * 2654435761) & M32
        return crc

    crc = 0xDEADBEEF
    for r in range(REPEAT):
        head = list_reverse(0 if (r & 1) else (0 if r == 0 else 31))
        found = list_find(head, ((7 + r) * (7 + r)) ^ 0x5A)
        crc = mix(crc, (head + 1) & M32)
        crc = mix(crc, (found + 1) & M32)
        for i in range(MAT_N * MAT_N):
            mat[i] = mat[i] * 3 + (r + 1)
        total = sum(mat) & M32
        crc = mix(crc, total)
        sm_run()
    for i in range(8):
        crc = mix(crc, sm_counts[i])
    return {
        "checksum": crc,
        "sm_counts": sm_counts,
        "list_next": list_next,
    }


BENCHMARK = Benchmark(
    name="coremark",
    source=SOURCE,
    outputs=[
        Output("checksum"),
        Output("sm_counts", count=8),
        Output("list_next", count=LIST_LEN, signed=True),
    ],
    reference=reference,
    description="CoreMark-like list/matrix/state-machine mix with checksum",
)
