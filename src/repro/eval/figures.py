"""Regeneration of every figure and table in the paper's evaluation
(§5.2).  Each ``figure*``/``table*`` function returns structured rows;
each ``render_*`` pretty-prints them the way the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..benchsuite import BENCHMARKS, PAPER_NAMES
from ..ir.instructions import (
    CKPT_BACKEND,
    CKPT_FUNCTION_ENTRY,
    CKPT_FUNCTION_EXIT,
    CKPT_MIDDLE_END,
)
from .runner import FIGURE4_ENVIRONMENTS, Cell, ExperimentRunner

BENCH_ORDER = tuple(BENCHMARKS)


# ---------------------------------------------------------------------------
# Figure 4: normalized execution time
# ---------------------------------------------------------------------------


def cells_figure4() -> List[Cell]:
    return [
        Cell(bench, env)
        for bench in BENCH_ORDER
        for env in ("plain",) + FIGURE4_ENVIRONMENTS
    ]


def figure4(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """benchmark -> environment -> execution time normalized to plain C."""
    runner.prefetch(cells_figure4())
    rows: Dict[str, Dict[str, float]] = {}
    for bench in BENCH_ORDER:
        rows[bench] = {"plain": 1.0}
        for env in FIGURE4_ENVIRONMENTS:
            rows[bench][env] = runner.normalized_time(bench, env)
    return rows


def figure4_summary(runner: ExperimentRunner) -> Dict[str, float]:
    """The paper's headline numbers: average checkpoint-overhead reduction
    of WARio (and +Expander) vs Ratchet and R-PDG."""
    runner.prefetch(
        Cell(bench, env)
        for bench in BENCH_ORDER
        for env in ("plain", "ratchet", "r-pdg", "wario", "wario-expander")
    )
    reductions = {}
    for target in ("wario", "wario-expander"):
        for baseline in ("ratchet", "r-pdg"):
            per_bench = []
            for bench in BENCH_ORDER:
                base = runner.checkpoint_overhead(bench, baseline)
                ours = runner.checkpoint_overhead(bench, target)
                if base > 0:
                    per_bench.append(1.0 - ours / base)
            reductions[f"{target}-vs-{baseline}"] = sum(per_bench) / len(per_bench)
    return reductions


def render_figure4(runner: ExperimentRunner) -> str:
    rows = figure4(runner)
    envs = ("plain",) + FIGURE4_ENVIRONMENTS
    lines = ["Figure 4: execution time normalized to uninstrumented C", ""]
    header = f"{'benchmark':<12}" + "".join(f"{e:>22}" for e in envs)
    lines.append(header)
    for bench in BENCH_ORDER:
        line = f"{PAPER_NAMES[bench]:<12}" + "".join(
            f"{rows[bench][e]:>22.3f}" for e in envs
        )
        lines.append(line)
    avgs = {e: sum(rows[b][e] for b in BENCH_ORDER) / len(BENCH_ORDER) for e in envs}
    lines.append(f"{'average':<12}" + "".join(f"{avgs[e]:>22.3f}" for e in envs))
    lines.append("")
    for key, value in figure4_summary(runner).items():
        lines.append(f"checkpoint-overhead reduction {key}: {value:.1%}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 5: checkpoint causes relative to R-PDG
# ---------------------------------------------------------------------------

CAUSES = (CKPT_MIDDLE_END, CKPT_BACKEND, CKPT_FUNCTION_ENTRY, CKPT_FUNCTION_EXIT)
FIGURE5_ENVIRONMENTS = (
    "r-pdg",
    "epilog-optimizer",
    "write-clusterer",
    "loop-write-clusterer",
    "wario",
    "wario-expander",
)


def cells_figure5() -> List[Cell]:
    return [
        Cell(bench, env)
        for bench in BENCH_ORDER
        for env in FIGURE5_ENVIRONMENTS
    ]


def figure5(runner: ExperimentRunner) -> Dict[str, Dict[str, Dict[str, float]]]:
    """benchmark -> environment -> cause -> % of R-PDG's total executed
    checkpoints (R-PDG itself sums to 100)."""
    runner.prefetch(cells_figure5())
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for bench in BENCH_ORDER:
        base_total = runner.executed_checkpoints(bench, "r-pdg")
        out[bench] = {}
        for env in FIGURE5_ENVIRONMENTS:
            causes = runner.checkpoint_causes(bench, env)
            out[bench][env] = {
                cause: 100.0 * causes.get(cause, 0) / base_total
                for cause in CAUSES
            }
    return out


def render_figure5(runner: ExperimentRunner) -> str:
    rows = figure5(runner)
    lines = ["Figure 5: executed checkpoints by cause, % of R-PDG total", ""]
    for bench in BENCH_ORDER:
        lines.append(f"{PAPER_NAMES[bench]}:")
        lines.append(
            f"  {'environment':<22}{'middle':>9}{'backend':>9}"
            f"{'fn-entry':>9}{'fn-exit':>9}{'total':>9}"
        )
        for env in FIGURE5_ENVIRONMENTS:
            c = rows[bench][env]
            total = sum(c.values())
            lines.append(
                f"  {env:<22}"
                f"{c[CKPT_MIDDLE_END]:>9.1f}{c[CKPT_BACKEND]:>9.1f}"
                f"{c[CKPT_FUNCTION_ENTRY]:>9.1f}{c[CKPT_FUNCTION_EXIT]:>9.1f}"
                f"{total:>9.1f}"
            )
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 1: executed-checkpoint difference vs Ratchet
# ---------------------------------------------------------------------------


def cells_table1() -> List[Cell]:
    return [
        Cell(bench, env)
        for bench in BENCH_ORDER
        for env in ("ratchet", "wario", "wario-expander")
    ]


def table1(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """benchmark -> {wario, wario-expander} -> relative change vs Ratchet
    (negative = fewer checkpoints)."""
    runner.prefetch(cells_table1())
    rows: Dict[str, Dict[str, float]] = {}
    for bench in BENCH_ORDER:
        base = runner.executed_checkpoints(bench, "ratchet")
        rows[bench] = {
            env: runner.executed_checkpoints(bench, env) / base - 1.0
            for env in ("wario", "wario-expander")
        }
    return rows


def render_table1(runner: ExperimentRunner) -> str:
    rows = table1(runner)
    lines = [
        "Table 1: total executed checkpoints vs Ratchet",
        "",
        f"{'benchmark':<12}{'WARio':>12}{'WARio+Exp':>12}",
    ]
    for bench in BENCH_ORDER:
        lines.append(
            f"{PAPER_NAMES[bench]:<12}"
            f"{rows[bench]['wario']:>12.1%}{rows[bench]['wario-expander']:>12.1%}"
        )
    avg_w = sum(r["wario"] for r in rows.values()) / len(rows)
    avg_e = sum(r["wario-expander"] for r in rows.values()) / len(rows)
    lines.append(f"{'average':<12}{avg_w:>12.1%}{avg_e:>12.1%}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2: code size
# ---------------------------------------------------------------------------

TABLE2_ENVIRONMENTS = ("ratchet", "wario", "wario-expander")


def cells_table2() -> List[Cell]:
    return [
        Cell(bench, env)
        for bench in BENCH_ORDER
        for env in ("plain",) + TABLE2_ENVIRONMENTS
    ]


def table2(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """benchmark -> environment -> .text size increase vs plain C."""
    runner.prefetch(cells_table2())
    rows: Dict[str, Dict[str, float]] = {}
    for bench in BENCH_ORDER:
        plain = runner.run(bench, "plain").program.text_size
        rows[bench] = {
            env: runner.run(bench, env).program.text_size / plain - 1.0
            for env in TABLE2_ENVIRONMENTS
        }
    return rows


def render_table2(runner: ExperimentRunner) -> str:
    rows = table2(runner)
    lines = [
        "Table 2: .text size increase vs uninstrumented C",
        "",
        f"{'benchmark':<12}{'Ratchet':>12}{'WARio':>12}{'WARio+Exp':>12}",
    ]
    for bench in BENCH_ORDER:
        r = rows[bench]
        lines.append(
            f"{PAPER_NAMES[bench]:<12}{r['ratchet']:>12.1%}"
            f"{r['wario']:>12.1%}{r['wario-expander']:>12.1%}"
        )
    for env in TABLE2_ENVIRONMENTS:
        pass
    avgs = {
        env: sum(r[env] for r in rows.values()) / len(rows)
        for env in TABLE2_ENVIRONMENTS
    }
    lines.append(
        f"{'average':<12}{avgs['ratchet']:>12.1%}"
        f"{avgs['wario']:>12.1%}{avgs['wario-expander']:>12.1%}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 6: loop unroll factor sweep
# ---------------------------------------------------------------------------

FIGURE6_BENCHMARKS = ("sha", "tiny-aes", "coremark")
FIGURE6_FACTORS = (1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 35)


@dataclass
class UnrollPoint:
    factor: int
    middle_pct: float      # middle-end checkpoints, % of N=1
    backend_pct: float     # back-end checkpoints, % of N=1 total checkpoints
    overhead_reduction: float  # % reduction of checkpoint overhead vs N=1


def cells_figure6() -> List[Cell]:
    cells = []
    for bench in FIGURE6_BENCHMARKS:
        cells.append(Cell(bench, "plain"))
        for factor in FIGURE6_FACTORS:
            cells.append(Cell(bench, "wario", factor))
    return cells


def figure6(runner: ExperimentRunner) -> Dict[str, List[UnrollPoint]]:
    runner.prefetch(cells_figure6())
    out: Dict[str, List[UnrollPoint]] = {}
    for bench in FIGURE6_BENCHMARKS:
        base = runner.run(bench, "wario", unroll_factor=1)
        base_causes = base.stats.checkpoint_causes
        base_middle = max(base_causes.get(CKPT_MIDDLE_END, 0), 1)
        base_overhead = base.stats.cycles - runner.cycles(bench, "plain")
        points = []
        for factor in FIGURE6_FACTORS:
            run = runner.run(bench, "wario", unroll_factor=factor)
            causes = run.stats.checkpoint_causes
            overhead = run.stats.cycles - runner.cycles(bench, "plain")
            points.append(
                UnrollPoint(
                    factor=factor,
                    middle_pct=100.0 * causes.get(CKPT_MIDDLE_END, 0) / base_middle,
                    backend_pct=100.0
                    * causes.get(CKPT_BACKEND, 0)
                    / max(base.stats.checkpoints, 1),
                    overhead_reduction=100.0 * (1.0 - overhead / max(base_overhead, 1)),
                )
            )
        out[bench] = points
    return out


def render_figure6(runner: ExperimentRunner) -> str:
    data = figure6(runner)
    lines = ["Figure 6: effect of the Loop Write Clusterer unroll factor N", ""]
    for bench, points in data.items():
        lines.append(f"{PAPER_NAMES[bench]}:")
        lines.append(
            f"  {'N':>4}{'middle-end ckpt %':>20}{'back-end ckpt %':>18}"
            f"{'overhead reduction %':>22}"
        )
        for p in points:
            lines.append(
                f"  {p.factor:>4}{p.middle_pct:>20.1f}{p.backend_pct:>18.1f}"
                f"{p.overhead_reduction:>22.1f}"
            )
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 7: idempotent region sizes
# ---------------------------------------------------------------------------

FIGURE7_ENVIRONMENTS = ("ratchet", "r-pdg", "wario")


@dataclass
class RegionStats:
    median: float
    mean: float
    p25: float
    p75: float
    maximum: int


def cells_figure7() -> List[Cell]:
    return [
        Cell(bench, env)
        for bench in BENCH_ORDER
        for env in FIGURE7_ENVIRONMENTS
    ]


def figure7(runner: ExperimentRunner) -> Dict[str, Dict[str, RegionStats]]:
    runner.prefetch(cells_figure7())
    out: Dict[str, Dict[str, RegionStats]] = {}
    for bench in BENCH_ORDER:
        out[bench] = {}
        for env in FIGURE7_ENVIRONMENTS:
            stats = runner.run(bench, env).stats
            out[bench][env] = RegionStats(
                median=stats.region_median,
                mean=stats.region_mean,
                p25=stats.region_percentile(0.25),
                p75=stats.region_percentile(0.75),
                maximum=stats.region_max,
            )
    return out


def render_figure7(runner: ExperimentRunner) -> str:
    data = figure7(runner)
    lines = [
        "Figure 7: idempotent region size (cycles between checkpoints)",
        "",
    ]
    for bench in BENCH_ORDER:
        lines.append(f"{PAPER_NAMES[bench]}:")
        lines.append(
            f"  {'environment':<12}{'p25':>8}{'median':>9}{'p75':>8}"
            f"{'mean':>9}{'max':>9}"
        )
        for env in FIGURE7_ENVIRONMENTS:
            r = data[bench][env]
            lines.append(
                f"  {env:<12}{r.p25:>8.0f}{r.median:>9.0f}{r.p75:>8.0f}"
                f"{r.mean:>9.1f}{r.maximum:>9}"
            )
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3: intermittent power
# ---------------------------------------------------------------------------

TABLE3_ENV = "wario-expander"
TABLE3_PERIODS = (50_000, 100_000, 1_000_000, 5_000_000)


@dataclass
class IntermittencyRow:
    supply: str
    overhead: float        # extra cycles over continuous, fraction
    power_failures: int


TABLE3_POWER_KEYS = tuple(
    [f"fixed-{p}" for p in TABLE3_PERIODS] + ["trace-a", "trace-b"]
)


def cells_table3() -> List[Cell]:
    cells = []
    for bench in BENCH_ORDER:
        cells.append(Cell(bench, TABLE3_ENV))
        for key in TABLE3_POWER_KEYS:
            cells.append(Cell(bench, TABLE3_ENV, 0, key))
    return cells


def table3(runner: ExperimentRunner) -> Dict[str, List[IntermittencyRow]]:
    runner.prefetch(cells_table3())
    out: Dict[str, List[IntermittencyRow]] = {}
    for bench in BENCH_ORDER:
        continuous = runner.run(bench, TABLE3_ENV).stats.cycles
        rows = []
        for key in TABLE3_POWER_KEYS:
            run = runner.run(bench, TABLE3_ENV, power_key=key)
            rows.append(
                IntermittencyRow(
                    supply=key,
                    overhead=run.stats.cycles / continuous - 1.0,
                    power_failures=run.stats.power_failures,
                )
            )
        out[bench] = rows
    return out


def render_table3(runner: ExperimentRunner) -> str:
    data = table3(runner)
    lines = [
        "Table 3: re-execution overhead under intermittent power "
        f"({TABLE3_ENV}), vs continuous power",
        "",
    ]
    header = f"{'supply':<16}" + "".join(
        f"{PAPER_NAMES[b]:>20}" for b in BENCH_ORDER
    )
    lines.append(header)
    supplies = [row.supply for row in data[BENCH_ORDER[0]]]
    for i, supply in enumerate(supplies):
        cells = []
        for bench in BENCH_ORDER:
            row = data[bench][i]
            cells.append(f"{row.overhead:>11.2%} P={row.power_failures:<5}")
        lines.append(f"{supply:<16}" + "".join(f"{c:>20}" for c in cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Everything at once
# ---------------------------------------------------------------------------

#: experiment name -> cell enumerator (the full grid each figure needs)
EXPERIMENT_CELLS = {
    "fig4": cells_figure4,
    "fig5": cells_figure5,
    "table1": cells_table1,
    "table2": cells_table2,
    "fig6": cells_figure6,
    "fig7": cells_figure7,
    "table3": cells_table3,
}


def cells_for(*experiments: str) -> List[Cell]:
    """The deduplicated cell list for a set of experiments (all when
    empty), preserving first-occurrence order for deterministic merges."""
    names = experiments or tuple(EXPERIMENT_CELLS)
    seen = {}
    for name in names:
        for cell in EXPERIMENT_CELLS[name]():
            seen.setdefault(cell, None)
    return list(seen)


def render_all(runner: Optional[ExperimentRunner] = None) -> str:
    runner = runner or ExperimentRunner()
    # one batched prefetch: every cell of every figure fans out at once
    runner.prefetch(cells_for())
    parts = [
        render_figure4(runner),
        render_figure5(runner),
        render_table1(runner),
        render_table2(runner),
        render_figure6(runner),
        render_figure7(runner),
        render_table3(runner),
    ]
    return ("\n\n" + "=" * 78 + "\n\n").join(parts)
