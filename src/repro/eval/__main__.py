"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    python -m repro.eval            # everything
    python -m repro.eval fig4       # one experiment
    python -m repro.eval fig4 fig5 table1 ...
"""

from __future__ import annotations

import sys

from .figures import (
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table1,
    render_table2,
    render_table3,
)
from .runner import ExperimentRunner

_RENDERERS = {
    "fig4": render_figure4,
    "fig5": render_figure5,
    "fig6": render_figure6,
    "fig7": render_figure7,
    "table1": render_table1,
    "table2": render_table2,
    "table3": render_table3,
}


def main(argv=None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if not args:
        args = list(_RENDERERS)
    unknown = [a for a in args if a not in _RENDERERS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; choose from {sorted(_RENDERERS)}")
        return 2
    runner = ExperimentRunner()
    for i, name in enumerate(args):
        if i:
            print("\n" + "=" * 78 + "\n")
        print(_RENDERERS[name](runner))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
