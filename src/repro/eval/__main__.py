"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    python -m repro.eval                    # everything
    python -m repro.eval fig4               # one experiment
    python -m repro.eval fig4 fig5 table1   # several
    python -m repro.eval --jobs 4           # explicit worker count

The full cell grid of the requested experiments is prefetched in one
parallel batch (worker count: ``--jobs``, else ``REPRO_JOBS``, else the
CPU count), then each figure renders from the merged in-process results
— byte-identical to a serial run.
"""

from __future__ import annotations

import argparse

from .figures import (
    cells_for,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table1,
    render_table2,
    render_table3,
)
from .runner import ExperimentRunner

_RENDERERS = {
    "fig4": render_figure4,
    "fig5": render_figure5,
    "fig6": render_figure6,
    "fig7": render_figure7,
    "table1": render_table1,
    "table2": render_table2,
    "table3": render_table3,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="regenerate the paper's figures and tables",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset to run: {', '.join(_RENDERERS)} (default: all)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or the CPU count)",
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(_RENDERERS)
    unknown = [a for a in names if a not in _RENDERERS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {unknown}; choose from {sorted(_RENDERERS)}"
        )
    runner = ExperimentRunner(jobs=args.jobs)
    runner.prefetch(cells_for(*names))
    for i, name in enumerate(names):
        if i:
            print("\n" + "=" * 78 + "\n")
        print(_RENDERERS[name](runner))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
