"""Shared experiment runner with result caching.

Several figures consume the same (benchmark x environment) grid; the
runner executes each combination once per process and hands out the
recorded statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..backend import Program
from ..benchsuite import BENCHMARKS, compile_benchmark, run_benchmark
from ..emulator import ExecutionStats, PowerSupply

#: evaluation environments, in the paper's Figure 4 order
FIGURE4_ENVIRONMENTS = (
    "ratchet",
    "r-pdg",
    "epilog-optimizer",
    "write-clusterer",
    "loop-write-clusterer",
    "wario",
    "wario-expander",
)


@dataclass
class RunResult:
    stats: ExecutionStats
    program: Program
    outputs_ok: bool = True


class ExperimentRunner:
    """Runs and caches (benchmark, environment, unroll, power) cells."""

    def __init__(self, war_check: bool = False):
        # WAR checking costs dict traffic per memory access; the
        # correctness suite verifies WAR freedom separately, so the
        # performance harness defaults it off (like the paper's separate
        # verification runs).
        self.war_check = war_check
        self._cache: Dict[Tuple, RunResult] = {}

    def run(
        self,
        bench_name: str,
        env: str,
        unroll_factor: Optional[int] = None,
        power: Optional[PowerSupply] = None,
        power_key: Optional[str] = None,
    ) -> RunResult:
        key = (bench_name, env, unroll_factor or 0, power_key or "continuous")
        if key in self._cache:
            return self._cache[key]
        bench = BENCHMARKS[bench_name]
        machine, stats = run_benchmark(
            bench,
            env,
            power=power,
            unroll_factor=unroll_factor,
            war_check=self.war_check and env != "plain",
            verify=True,
        )
        program = compile_benchmark(bench, env, unroll_factor)
        result = RunResult(stats=stats, program=program)
        self._cache[key] = result
        return result

    # -- convenience -----------------------------------------------------
    def cycles(self, bench_name: str, env: str) -> int:
        return self.run(bench_name, env).stats.cycles

    def normalized_time(self, bench_name: str, env: str) -> float:
        plain = self.cycles(bench_name, "plain")
        return self.cycles(bench_name, env) / plain

    def checkpoint_overhead(self, bench_name: str, env: str) -> int:
        """Extra cycles over the uninstrumented build."""
        return self.cycles(bench_name, env) - self.cycles(bench_name, "plain")

    def executed_checkpoints(self, bench_name: str, env: str) -> int:
        return self.run(bench_name, env).stats.checkpoints

    def checkpoint_causes(self, bench_name: str, env: str) -> Dict[str, int]:
        return dict(self.run(bench_name, env).stats.checkpoint_causes)
