"""Shared experiment runner: parallel execution with deterministic merge.

Several figures consume the same (benchmark x environment x unroll x
power) grid.  The runner treats each combination as a :class:`Cell`,
executes every cell at most once, and hands out the recorded statistics.
Cells are independent — compilation and emulation are both deterministic
functions of the cell — so :meth:`ExperimentRunner.prefetch` fans a batch
of cells out over a :class:`~concurrent.futures.ProcessPoolExecutor` and
merges the results back **in submission order**, which makes every
figure and table byte-identical to a serial run.

Worker count: the ``jobs`` argument, else the ``REPRO_JOBS`` environment
variable, else ``os.cpu_count()``.  ``jobs=1`` runs serially in-process
(no executor, no pickling) — the reference behaviour.

Results are also shared *across* processes and invocations through the
content-addressed :mod:`repro.cache`: each worker looks up compiled
programs under their ``program-`` key and finished emulations under a
``run-`` key derived from it, so a warm cache turns a full evaluation
into a read-mostly sweep.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..backend import Program
from ..benchsuite import BENCHMARKS, compile_benchmark, run_benchmark
from ..cache import CompileCache, resolve_cache, run_key
from ..emulator import (
    DEFAULT_COSTS,
    ContinuousPower,
    ExecutionStats,
    FixedPeriodPower,
    PowerSupply,
    SchedulePower,
    SuddenDropPower,
    trace_a,
    trace_b,
)

#: evaluation environments, in the paper's Figure 4 order
FIGURE4_ENVIRONMENTS = (
    "ratchet",
    "r-pdg",
    "epilog-optimizer",
    "write-clusterer",
    "loop-write-clusterer",
    "wario",
    "wario-expander",
)


class Cell(NamedTuple):
    """One point of the experiment grid."""

    bench: str
    env: str
    unroll: int = 0          #: 0 = the environment's default factor
    power_key: str = "continuous"


#: canonical power keys understood by :func:`power_from_key`; the
#: parameterised families are ``fixed-<cycles>``,
#: ``sudden-drop-<base>-<every>-<drop>`` and ``schedule-<d1>-<d2>-...``
POWER_KEYS = ("continuous", "trace-a", "trace-b")


def power_from_key(power_key: Optional[str]) -> Optional[PowerSupply]:
    """Reconstruct a power supply from its canonical key.

    Supplies are deterministic (seeded), so the key fully identifies the
    on-duration sequence — this is what makes emulation results disk-
    cacheable and lets pool workers build their own supply instances.
    """
    if power_key is None or power_key == "continuous":
        return None
    if power_key == "trace-a":
        return trace_a()
    if power_key == "trace-b":
        return trace_b()
    try:
        if power_key.startswith("fixed-"):
            return FixedPeriodPower(int(power_key[len("fixed-"):]))
        if power_key.startswith("sudden-drop-"):
            base, every, drop = (
                int(p) for p in power_key[len("sudden-drop-"):].split("-")
            )
            return SuddenDropPower(base, drop_every=every, drop_cycles=drop)
        if power_key.startswith("schedule-"):
            durations = [int(p) for p in power_key[len("schedule-"):].split("-")]
            return SchedulePower(durations)
    except ValueError as exc:
        raise ValueError(f"malformed power key {power_key!r}: {exc}") from None
    raise ValueError(
        f"unknown power key {power_key!r}; expected 'continuous', "
        f"'fixed-<cycles>', 'trace-a', 'trace-b', "
        f"'sudden-drop-<base>-<every>-<drop>' or 'schedule-<d1>-<d2>-...'"
    )


def supply_key(power: PowerSupply) -> str:
    """A stable cell key for an arbitrary supply object.

    Supplies whose ``name`` is a canonical key (every built-in model)
    key under it, so results unify with key-addressed cells.  Anonymous
    custom supplies get a content hash of their class and constructor
    state — two *distinct* custom supplies can never collide, while two
    identically-parameterised instances share one key (they produce the
    same deterministic on-duration sequence).
    """
    name = getattr(power, "name", "")
    if name:
        try:
            rebuilt = power_from_key(name)
        except ValueError:
            rebuilt = None
        # Only trust the name when it genuinely round-trips: same class,
        # same constructor state (a subclass inheriting a canonical name
        # must not alias the built-in supply's results).
        if (
            rebuilt is not None
            and type(rebuilt) is type(power)
            and vars(rebuilt) == vars(power)
        ):
            return name
        if name == "continuous" and type(power) is ContinuousPower:
            return name
    state = ",".join(
        f"{attr}={value!r}"
        for attr, value in sorted(vars(power).items())
        if attr != "name"
    )
    blob = f"{type(power).__qualname__}({state})"
    return "custom-" + hashlib.sha256(blob.encode()).hexdigest()[:16]


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
    return os.cpu_count() or 1


@dataclass
class RunResult:
    stats: ExecutionStats
    program: Program
    outputs_ok: bool = True
    #: the emulation result was served from the disk run-cache (the
    #: pipeline server reports this as the cell's cache-hit flag)
    from_cache: bool = False


# ---------------------------------------------------------------------------
# Cell execution (module-level so pool workers can pickle it)
# ---------------------------------------------------------------------------


def execute_cell(cell: Cell, war_check: bool, cache=None) -> RunResult:
    """Compile (once) and emulate one grid cell, honouring the disk cache.

    The program is compiled a single time and fed to the emulator; the
    same object lands in ``RunResult.program`` for the code-size tables.
    Emulation results are cached under a ``run-`` key derived from the
    program's own content address, the power key, and the WAR-check flag.
    Also the execution primitive behind the pipeline server's ``eval``
    request (:mod:`repro.serve.jobs`).
    """
    bench = BENCHMARKS[cell.bench]
    unroll = cell.unroll or None
    war = war_check and cell.env != "plain"
    program = compile_benchmark(bench, cell.env, unroll, cache=cache)
    store = resolve_cache(cache)
    rkey = None
    if store is not None and program.cache_key:
        rkey = run_key(
            program.cache_key,
            cell.power_key,
            war,
            bench.max_instructions,
            repr(DEFAULT_COSTS),
        )
        stats = store.get(rkey)
        if stats is not None:
            return RunResult(stats=stats, program=program, from_cache=True)
    _, stats = run_benchmark(
        bench,
        cell.env,
        power=power_from_key(cell.power_key),
        unroll_factor=unroll,
        war_check=war,
        verify=True,
        program=program,
    )
    if rkey is not None:
        store.put(rkey, stats)
    return RunResult(stats=stats, program=program)


#: pool workers keep one cache instance per directory so the in-memory
#: layer persists across the cells each worker executes
_worker_caches: Dict[Optional[str], CompileCache] = {}


def worker_cache(cache_dir: Optional[str], use_disk: bool):
    """Resolve a pool worker's cache policy (shared per directory).

    Returns ``False`` (caching disabled) or a :class:`CompileCache`
    pinned to ``cache_dir``; the instance persists in the worker process
    so its in-memory layer serves every payload the worker executes.
    Also used by the fault-injection campaign workers
    (:mod:`repro.faultinject.campaign`).
    """
    if not use_disk:
        return False
    cache = _worker_caches.get(cache_dir)
    if cache is None:
        cache = CompileCache(cache_dir)
        _worker_caches[cache_dir] = cache
    return cache


def _pool_worker(payload: Tuple[Cell, bool, Optional[str], bool]) -> RunResult:
    cell, war_check, cache_dir, use_disk = payload
    return execute_cell(cell, war_check, worker_cache(cache_dir, use_disk))


def map_ordered(
    worker: Callable,
    payloads: Sequence,
    jobs: Optional[int] = None,
) -> List:
    """Run picklable payloads through a module-level worker function.

    Results come back **in submission order** regardless of completion
    order, so consumers are byte-identical across ``jobs`` settings.
    ``jobs=1`` (or a single payload) runs serially in-process — no
    executor, no pickling.  This is the one fan-out primitive shared by
    the figure runner and the fault-injection campaign engine.
    """
    payloads = list(payloads)
    if not payloads:
        return []
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(payloads)))
    if jobs == 1:
        return [worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        # executor.map preserves submission order: deterministic merge
        return list(pool.map(worker, payloads))


CellLike = Union[Cell, Sequence]


class ExperimentRunner:
    """Runs and caches (benchmark, environment, unroll, power) cells.

    ``jobs`` fixes the parallelism of :meth:`prefetch` (default: resolved
    per call from ``REPRO_JOBS`` / CPU count).  ``cache`` follows the
    :func:`repro.cache.resolve_cache` convention: ``None`` uses the
    process-wide disk cache (honouring ``REPRO_CACHE``), ``False``
    disables disk caching, a :class:`CompileCache` pins a directory.
    """

    def __init__(
        self,
        war_check: bool = False,
        jobs: Optional[int] = None,
        cache=None,
    ):
        # WAR checking costs dict traffic per memory access; the
        # correctness suite verifies WAR freedom separately, so the
        # performance harness defaults it off (like the paper's separate
        # verification runs).
        self.war_check = war_check
        self.jobs = jobs
        self._cache_arg = cache
        self._results: Dict[Cell, RunResult] = {}

    # -- keying ----------------------------------------------------------

    def _cell(
        self,
        bench_name: str,
        env: str,
        unroll_factor: Optional[int] = None,
        power_key: Optional[str] = None,
    ) -> Cell:
        return Cell(bench_name, env, unroll_factor or 0, power_key or "continuous")

    def _normalize(self, cell: CellLike) -> Cell:
        if isinstance(cell, Cell):
            return cell
        return self._cell(*cell)

    # -- execution -------------------------------------------------------

    def run(
        self,
        bench_name: str,
        env: str,
        unroll_factor: Optional[int] = None,
        power: Optional[PowerSupply] = None,
        power_key: Optional[str] = None,
    ) -> RunResult:
        if power is not None and power_key is None:
            # derive the memo key from the supply's class + parameters
            # (:func:`supply_key`): canonical supplies unify with their
            # key-addressed cells, anonymous custom supplies get a
            # content hash — two distinct supplies never collide
            power_key = supply_key(power)
        cell = self._cell(bench_name, env, unroll_factor, power_key)
        result = self._results.get(cell)
        if result is not None:
            return result
        if power is not None:
            # caller-supplied supply object: its state is unknown (it may
            # be mid-iteration or a custom model), so run it directly and
            # skip the disk run-cache
            bench = BENCHMARKS[bench_name]
            war = self.war_check and env != "plain"
            program = compile_benchmark(
                bench, env, unroll_factor, cache=self._cache_arg
            )
            _, stats = run_benchmark(
                bench,
                env,
                power=power,
                unroll_factor=unroll_factor,
                war_check=war,
                verify=True,
                program=program,
            )
            result = RunResult(stats=stats, program=program)
        else:
            result = execute_cell(cell, self.war_check, self._cache_arg)
        self._results[cell] = result
        return result

    def prefetch(
        self, cells: Iterable[CellLike], jobs: Optional[int] = None
    ) -> None:
        """Execute a batch of cells, fanning out over worker processes.

        Results merge into the in-process memo **in the order given**, so
        a subsequent serial walk of the same cells (what every figure
        does) observes exactly what a serial run would have computed.
        """
        ordered = []
        seen = set()
        for cell in map(self._normalize, cells):
            if cell not in seen and cell not in self._results:
                seen.add(cell)
                ordered.append(cell)
        if not ordered:
            return
        if jobs is None:
            jobs = self.jobs if self.jobs is not None else default_jobs()
        jobs = max(1, min(jobs, len(ordered)))
        if jobs == 1:
            for cell in ordered:
                self._results[cell] = execute_cell(
                    cell, self.war_check, self._cache_arg
                )
            return
        store = resolve_cache(self._cache_arg)
        use_disk = store is not None
        cache_dir = store.directory if use_disk else None
        payloads = [(cell, self.war_check, cache_dir, use_disk) for cell in ordered]
        for cell, result in zip(ordered, map_ordered(_pool_worker, payloads, jobs)):
            self._results[cell] = result

    # -- convenience -----------------------------------------------------
    def cycles(self, bench_name: str, env: str) -> int:
        return self.run(bench_name, env).stats.cycles

    def normalized_time(self, bench_name: str, env: str) -> float:
        plain = self.cycles(bench_name, "plain")
        return self.cycles(bench_name, env) / plain

    def checkpoint_overhead(self, bench_name: str, env: str) -> int:
        """Extra cycles over the uninstrumented build."""
        return self.cycles(bench_name, env) - self.cycles(bench_name, "plain")

    def executed_checkpoints(self, bench_name: str, env: str) -> int:
        return self.run(bench_name, env).stats.checkpoints

    def checkpoint_causes(self, bench_name: str, env: str) -> Dict[str, int]:
        return dict(self.run(bench_name, env).stats.checkpoint_causes)
