"""repro.eval — the evaluation harness: one function per paper figure and
table (§5.2), all driven by the shared parallel :class:`ExperimentRunner`.
"""

from .figures import (
    EXPERIMENT_CELLS,
    cells_for,
    figure4,
    figure4_summary,
    figure5,
    figure6,
    figure7,
    render_all,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
)
from .runner import (
    FIGURE4_ENVIRONMENTS,
    Cell,
    ExperimentRunner,
    RunResult,
    default_jobs,
    map_ordered,
    power_from_key,
    supply_key,
)

__all__ = [
    "ExperimentRunner", "RunResult", "Cell", "FIGURE4_ENVIRONMENTS",
    "default_jobs", "map_ordered", "power_from_key", "supply_key",
    "EXPERIMENT_CELLS", "cells_for",
    "figure4", "figure4_summary", "figure5", "figure6", "figure7",
    "table1", "table2", "table3",
    "render_figure4", "render_figure5", "render_table1", "render_table2",
    "render_figure6", "render_figure7", "render_table3", "render_all",
]
