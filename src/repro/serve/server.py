"""The asyncio pipeline server: accept loop, worker pool, single-flight.

Architecture (one event loop, N worker processes)::

    client --tcp--> _handle_connection --task--> _handle_request
                                                     |
                                    inline kinds  <--+-->  pooled kinds
                                    (envs, stats,          |
                                     ping, shutdown)       v
                                                   _submit (single-flight
                                                    on the request's cache
                                                    key) --> ProcessPool
                                                             (jobs.pool_entry)

Requests are newline-delimited JSON (:mod:`repro.serve.protocol`) and
fully pipelined: every request gets its own task, responses are written
as they finish (a per-connection lock keeps frames whole) and matched by
``id`` on the client.

**Single-flight dedup.**  Pooled requests are keyed by their content
address (:func:`repro.serve.jobs.request_cache_key` — the same SHA-256
the disk cache uses).  The first submission creates an asyncio task in
``_inflight``; identical submissions arriving while it runs await *the
same task* and are marked ``deduped`` in their response meta.  Requests
arriving after completion hit the disk cache inside the worker instead
(``cached`` meta flag).  Either way the expensive work happens once.

**Crash recovery.**  A worker dying (OOM kill, the ``chaos`` probe)
breaks the pool: every pending future raises ``BrokenExecutor``.  The
server swaps in a fresh pool and retries each affected request
independently, up to ``max_retries`` times — except ``chaos`` requests,
which are *meant* to kill workers and must fail per-request rather than
loop.  A request exceeding its timeout also retires the pool (the hung
worker can't be reclaimed) and fails with a ``timeout`` error; other
in-flight requests finish on the old pool and new ones go to the fresh
pool.

**Graceful shutdown.**  ``shutdown`` (or SIGTERM/SIGINT) stops the
accept loop, drains every in-flight request to completion, then tears
the pool down.  New requests arriving during the drain are refused with
a ``draining`` error.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

try:  # BrokenProcessPool subclasses BrokenExecutor (3.7+)
    from concurrent.futures import BrokenExecutor
except ImportError:  # pragma: no cover
    from concurrent.futures.process import BrokenProcessPool as BrokenExecutor

from .jobs import (
    JobError,
    POOLED_KINDS,
    pool_entry,
    request_cache_key,
    worker_init,
)
from .metrics import ServerMetrics
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    decode_request,
    encode_message,
    error_response,
    ok_response,
)


def _best_effort_id(line: bytes):
    """The ``id`` of a frame that failed validation, if it parses at all
    — so even a rejected request gets a matchable error response."""
    try:
        obj = json.loads(line.decode("utf-8"))
        if isinstance(obj, dict):
            return obj.get("id")
    except Exception:
        pass
    return None


@dataclass
class ServerConfig:
    """Everything ``python -m repro serve`` can set."""

    host: str = "127.0.0.1"
    port: int = 0                       #: 0 = pick a free port
    jobs: Optional[int] = None          #: pool width (None = default_jobs)
    cache_dir: Optional[str] = None     #: None = REPRO_CACHE_DIR / default
    request_timeout: float = 300.0      #: per-request wall-clock cap (s)
    max_retries: int = 1                #: crash-recovery retries per request
    announce: bool = False              #: print a JSON "serving" line


class PipelineServer:
    """One long-lived compile/analysis service over a shared cache."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[str, asyncio.Task] = {}
        self._request_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._shutdown_event = asyncio.Event()
        self._chaos_seq = 0
        from ..cache import CompileCache

        self._cache = CompileCache(self.config.cache_dir)

    # -- pool lifecycle --------------------------------------------------

    def _jobs(self) -> int:
        if self.config.jobs is not None:
            return max(1, self.config.jobs)
        from ..eval.runner import default_jobs

        return default_jobs()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._jobs(), initializer=worker_init
            )
        return self._pool

    def _retire_pool(self, pool: Optional[ProcessPoolExecutor]) -> None:
        """Replace ``pool`` if it is still current (idempotent under
        races: two requests observing the same crash retire it once).
        ``wait=False`` — a broken pool has nothing to wait for and a
        hung worker would block forever; running futures on a *healthy*
        old pool still complete."""
        if pool is not None and pool is self._pool:
            self._pool = None
            pool.shutdown(wait=False)

    # -- request execution ----------------------------------------------

    async def _run_on_pool(self, kind: str, params: Dict[str, Any],
                           timeout: float) -> Dict[str, Any]:
        """Execute one pooled request with timeout + crash retry."""
        loop = asyncio.get_event_loop()
        payload = (kind, params, self._cache.directory, True)
        attempts = 0
        while True:
            attempts += 1
            pool = self._ensure_pool()
            future = loop.run_in_executor(pool, pool_entry, payload)
            try:
                return await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                # The worker is hung (or the job is genuinely over
                # budget); either way the worker can't be reclaimed, so
                # retire the whole pool and fail this request.
                self.metrics.timeouts += 1
                self._retire_pool(pool)
                raise JobError(
                    "timeout",
                    f"request exceeded {timeout:.1f}s wall-clock limit",
                ) from None
            except BrokenExecutor:
                self.metrics.worker_crashes += 1
                self._retire_pool(pool)
                # chaos probes kill workers by design: retrying one
                # would kill workers until the retry budget runs out
                if kind != "chaos" and attempts <= self.config.max_retries:
                    self.metrics.retries += 1
                    continue
                raise JobError(
                    "worker-crashed",
                    f"worker process died executing {kind!r} "
                    f"(attempt {attempts})",
                ) from None

    async def _submit(self, request: Request) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Single-flight entry: coalesce on the request's cache key.

        Returns ``(response_payload, meta)`` where the payload is the
        worker's structured result dict.
        """
        kind = request.type
        timeout = request.timeout or self.config.request_timeout
        try:
            if kind == "chaos":
                # never coalesced: each probe is a distinct event
                self._chaos_seq += 1
                key = f"chaos-{self._chaos_seq}"
                task: Optional[asyncio.Task] = None
            else:
                key = request_cache_key(kind, request.params)
                task = self._inflight.get(key)
        except JobError as exc:
            return (
                {"status": "error", "code": exc.code, "message": str(exc)},
                {"key": None, "deduped": False},
            )
        deduped = task is not None
        if task is None:
            task = asyncio.ensure_future(
                self._run_on_pool(kind, request.params, timeout)
            )
            if kind != "chaos":
                self._inflight[key] = task
                task.add_done_callback(
                    lambda _t, _key=key: self._inflight.pop(_key, None)
                )
        try:
            # shield: a follower timing out / disconnecting must not
            # cancel the leader's execution
            outcome = await asyncio.shield(task)
        except JobError as exc:
            outcome = {"status": "error", "code": exc.code,
                       "message": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            outcome = {"status": "error", "code": "internal",
                       "message": f"{type(exc).__name__}: {exc}"}
        return outcome, {"key": key, "deduped": deduped}

    # -- inline kinds ----------------------------------------------------

    def _inline_result(self, request: Request) -> Optional[Dict[str, Any]]:
        kind = request.type
        if kind == "ping":
            return {"pong": True}
        if kind == "envs":
            from ..core.pipeline import environments_payload

            return {"environments": environments_payload()}
        if kind == "stats":
            snapshot = self.metrics.snapshot(
                inflight=len(self._inflight), draining=self._draining
            )
            snapshot["cache"] = self._cache.report().to_dict()
            snapshot["jobs"] = self._jobs()
            return snapshot
        return None

    # -- connection handling ---------------------------------------------

    async def _handle_request(self, line: bytes, writer: asyncio.StreamWriter,
                              write_lock: asyncio.Lock) -> None:
        started = time.monotonic()
        request_id: Any = None
        try:
            try:
                request = decode_request(line)
            except ProtocolError as exc:
                self.metrics.protocol_errors += 1
                response = error_response(
                    _best_effort_id(line), exc.code, str(exc),
                    {"elapsed_ms": 0.0},
                )
                await self._write(writer, write_lock, response)
                return
            request_id = request.id
            kind = request.type

            if kind == "shutdown":
                await self._write(writer, write_lock, ok_response(
                    request_id, {"draining": True},
                    {"type": kind, "elapsed_ms": 0.0},
                ))
                self._shutdown_event.set()
                return

            inline = self._inline_result(request)
            if inline is not None:
                elapsed = (time.monotonic() - started) * 1000.0
                self.metrics.record(kind, ok=True, elapsed_ms=elapsed)
                await self._write(writer, write_lock, ok_response(
                    request_id, inline,
                    {"type": kind, "elapsed_ms": round(elapsed, 3)},
                ))
                return

            if kind not in POOLED_KINDS:
                elapsed = (time.monotonic() - started) * 1000.0
                self.metrics.record(kind, ok=False, elapsed_ms=elapsed)
                await self._write(writer, write_lock, error_response(
                    request_id, "unknown-type",
                    f"unknown request type {kind!r}",
                    {"type": kind, "elapsed_ms": round(elapsed, 3)},
                ))
                return

            if self._draining:
                await self._write(writer, write_lock, error_response(
                    request_id, "draining",
                    "server is shutting down; not accepting new work",
                    {"type": kind, "elapsed_ms": 0.0},
                ))
                return

            outcome, flight = await self._submit(request)
            elapsed = (time.monotonic() - started) * 1000.0
            meta = {
                "type": kind,
                "cached": bool(outcome.get("cache_hit")),
                "deduped": flight["deduped"],
                "elapsed_ms": round(elapsed, 3),
                "key": flight["key"],
            }
            ok = outcome.get("status") == "ok"
            self.metrics.record(
                kind, ok=ok, elapsed_ms=elapsed,
                cached=meta["cached"], deduped=meta["deduped"],
            )
            if ok:
                response = ok_response(request_id, outcome["result"], meta)
            else:
                response = error_response(
                    request_id, outcome.get("code", "internal"),
                    outcome.get("message", "unknown error"), meta,
                )
            await self._write(writer, write_lock, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to respond to
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            try:
                await self._write(writer, write_lock, error_response(
                    request_id, "internal",
                    f"{type(exc).__name__}: {exc}", {},
                ))
            except Exception:
                pass

    async def _write(self, writer: asyncio.StreamWriter,
                     write_lock: asyncio.Lock, message: Dict[str, Any]) -> None:
        async with write_lock:
            writer.write(encode_message(message))
            await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.connections += 1
        write_lock = asyncio.Lock()
        tasks = []
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    self.metrics.protocol_errors += 1
                    await self._write(writer, write_lock, error_response(
                        None, "oversized",
                        f"request frame exceeds {MAX_LINE_BYTES} bytes", {},
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # one task per request: pipelining — a slow compile must
                # not head-of-line block a ping on the same connection
                task = asyncio.ensure_future(
                    self._handle_request(line, writer, write_lock)
                )
                tasks.append(task)
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # loop teardown while parked in readline(): fall through to
            # cleanup — the coroutine ends immediately after
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                if hasattr(writer, "wait_closed"):
                    await writer.wait_closed()
            except Exception:
                pass

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        host, port = sockname[0], sockname[1]
        if self.config.announce:
            import os

            print(json.dumps({
                "event": "serving", "host": host, "port": port,
                "pid": os.getpid(), "jobs": self._jobs(),
                "cache_dir": self._cache.directory,
            }, sort_keys=True), flush=True)
        return host, port

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, tear the pool down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._request_tasks if not t.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        inflight = [t for t in self._inflight.values() if not t.done()]
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    async def serve_until_shutdown(self) -> None:
        """start() + block until a ``shutdown`` request or signal, then
        drain.  The entry point behind ``python -m repro serve``."""
        await self.start()
        loop = asyncio.get_event_loop()
        try:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        signum, self._shutdown_event.set
                    )
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix / nested loop
        except ImportError:  # pragma: no cover
            pass
        await self._shutdown_event.wait()
        await self.drain()


def serve_forever(config: Optional[ServerConfig] = None) -> None:
    """Blocking convenience wrapper (the CLI calls this)."""
    server = PipelineServer(config)
    if sys.platform == "win32":  # pragma: no cover
        asyncio.set_event_loop_policy(asyncio.WindowsSelectorEventLoopPolicy())
    loop = asyncio.new_event_loop()
    try:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.serve_until_shutdown())
    except KeyboardInterrupt:  # pragma: no cover
        loop.run_until_complete(server.drain())
    finally:
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


__all__ = ["PipelineServer", "ServerConfig", "serve_forever"]
