"""Server observability: per-request-type latency and outcome counters.

The server records every finished request — including dedup followers,
which observe the shared execution's latency from their own arrival —
and the ``stats`` request type serves :meth:`ServerMetrics.snapshot`
as JSON.  Latency percentiles use the same linear-interpolation rule as
:meth:`repro.emulator.stats.ExecutionStats.region_percentile`, so the
numbers line up with the rest of the repo's reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: per-type latency samples kept for percentile computation; beyond the
#: cap the reservoir keeps the earliest samples (bench runs stay far
#: below it — the cap only guards a weeks-long server's memory)
MAX_LATENCY_SAMPLES = 100_000


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (``q`` in [0, 1])."""
    if not values:
        return 0.0
    data = sorted(values)
    pos = (len(data) - 1) * q
    lower = int(pos)
    upper = min(lower + 1, len(data) - 1)
    frac = pos - lower
    return data[lower] * (1 - frac) + data[upper] * frac


@dataclass
class TypeMetrics:
    """Counters for one request type."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    def record(self, ok: bool, elapsed_ms: float, cached: bool,
               deduped: bool) -> None:
        self.requests += 1
        if ok:
            self.ok += 1
        else:
            self.errors += 1
        if deduped:
            self.dedup_hits += 1
        elif ok:
            # cache accounting only for the request that actually ran:
            # a dedup follower neither hit nor missed the store itself
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        if len(self.latencies_ms) < MAX_LATENCY_SAMPLES:
            self.latencies_ms.append(elapsed_ms)

    def snapshot(self) -> Dict[str, object]:
        lat = self.latencies_ms
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "dedup_hits": self.dedup_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "p50_ms": round(percentile(lat, 0.50), 3),
            "p99_ms": round(percentile(lat, 0.99), 3),
            "mean_ms": round(sum(lat) / len(lat), 3) if lat else 0.0,
            "max_ms": round(max(lat), 3) if lat else 0.0,
        }


class ServerMetrics:
    """All the server's counters, snapshotted by the ``stats`` request."""

    def __init__(self):
        self.started = time.monotonic()
        self.per_type: Dict[str, TypeMetrics] = {}
        self.worker_crashes = 0
        self.retries = 0
        self.timeouts = 0
        self.connections = 0
        self.protocol_errors = 0

    def record(self, kind: str, ok: bool, elapsed_ms: float,
               cached: bool = False, deduped: bool = False) -> None:
        entry = self.per_type.get(kind)
        if entry is None:
            entry = self.per_type[kind] = TypeMetrics()
        entry.record(ok, elapsed_ms, cached, deduped)

    # -- aggregates ------------------------------------------------------

    def _total(self, attr: str) -> int:
        return sum(getattr(t, attr) for t in self.per_type.values())

    def snapshot(self, inflight: int = 0,
                 draining: bool = False) -> Dict[str, object]:
        cache_hits = self._total("cache_hits")
        cache_misses = self._total("cache_misses")
        looked_up = cache_hits + cache_misses
        return {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "requests": self._total("requests"),
            "ok": self._total("ok"),
            "errors": self._total("errors"),
            "inflight": inflight,
            "draining": draining,
            "connections": self.connections,
            "protocol_errors": self.protocol_errors,
            "dedup_hits": self._total("dedup_hits"),
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_hit_rate": (
                round(cache_hits / looked_up, 4) if looked_up else 0.0
            ),
            "worker_crashes": self.worker_crashes,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "per_type": {
                kind: metrics.snapshot()
                for kind, metrics in sorted(self.per_type.items())
            },
        }


__all__ = ["MAX_LATENCY_SAMPLES", "ServerMetrics", "TypeMetrics", "percentile"]
