"""repro.serve — the pipeline as a long-lived service.

Every subsystem so far is reachable only through one-shot CLI
invocations that re-enter the pipeline per process.  This package turns
the whole toolchain — compile, lint, analyze, inject, eval — into a
**compiler-as-a-service**: a long-lived asyncio JSON-over-TCP server
(:mod:`repro.serve.server`) backed by a ``ProcessPoolExecutor`` worker
pool and the content-addressed :mod:`repro.cache` as the shared
artifact layer.

The serving-specific machinery:

* :mod:`repro.serve.protocol` — newline-delimited JSON framing, the
  request/response schema, and an asyncio client with pipelining;
* :mod:`repro.serve.jobs` — the request handlers that run inside pool
  workers, each content-addressed under the same cache keys the CLI
  uses (so server results and CLI results are byte-identical);
* :mod:`repro.serve.server` — single-flight request coalescing on
  cache keys (identical in-flight submissions share one execution),
  per-request timeouts, worker-crash recovery with bounded retry, and
  graceful drain on shutdown;
* :mod:`repro.serve.metrics` — per-request-type latency/outcome
  counters served by the ``stats`` request;
* :mod:`repro.serve.loadtest` — a concurrent load generator over the
  benchsuite × environment grid reporting requests/sec, p50/p99
  latency, cache hit rate, and dedup counts into ``BENCH_<rev>.json``.

Entry points: ``python -m repro serve`` and ``python -m repro loadtest
[--quick]``; see ``docs/SERVING.md`` for the wire protocol.
"""

from .jobs import JobError, POOLED_KINDS, request_cache_key
from .metrics import ServerMetrics, percentile
from .protocol import (
    ProtocolError,
    ServeClient,
    ServeResponse,
    decode_request,
    encode_message,
    error_response,
    ok_response,
)
from .server import PipelineServer, ServerConfig

__all__ = [
    "JobError", "POOLED_KINDS", "PipelineServer", "ProtocolError",
    "ServeClient", "ServeResponse", "ServerConfig", "ServerMetrics",
    "decode_request", "encode_message", "error_response", "ok_response",
    "percentile", "request_cache_key",
]
