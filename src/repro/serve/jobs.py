"""Request execution inside pool workers.

Each pooled request kind maps to one handler that (a) resolves its
parameters against the same pipeline entry points the CLI uses, (b)
content-addresses the work under the same :mod:`repro.cache` keys, and
(c) returns a JSON-safe payload plus a cache-hit flag.  Because server
and CLI share both the keys and the render functions
(:func:`repro.backend.disasm.render_compile_listing`,
:func:`repro.core.lint.diagnostics_json`,
:func:`repro.core.analyze.analyze_report`), the server's payloads are
byte-identical to the equivalent direct invocation — the parity tests
pin this.

:func:`request_cache_key` computes a request's content address *without
executing it* (compiling a key is a SHA-256 over the inputs).  The
server uses it for single-flight coalescing: identical in-flight
submissions await one execution, completed ones are served from the
store by the handler itself.

Handlers run in ``ProcessPoolExecutor`` workers; everything here is
module-level and picklable.  :func:`pool_entry` is the single pool
entry point — it never raises (structured error dicts cross the process
boundary instead of exception pickles), except for the deliberate
``chaos`` probe, which kills the worker to exercise the server's
crash-recovery path.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Tuple

from ..cache import (
    analyze_key,
    compile_key,
    lint_key,
    resolve_cache,
    run_key,
    version_tag,
)
from ..core.pipeline import EnvironmentConfig, environment

#: request kinds executed on the worker pool (the server handles
#: ``envs``, ``stats``, ``ping``, and ``shutdown`` inline — they are
#: metadata, not pipeline work)
POOLED_KINDS = ("compile", "lint", "analyze", "eval", "inject", "chaos")

#: payload = (result, cache_hit)
JobPayload = Tuple[Dict[str, Any], bool]


class JobError(Exception):
    """A request that cannot be executed (bad params, unknown names).

    Carries a stable machine-readable ``code`` so clients can branch
    without parsing messages.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# Parameter resolution
# ---------------------------------------------------------------------------


def _resolve_sources(params: Dict[str, Any]) -> Tuple[list, str]:
    """(sources, name) from either ``benchmark`` or ``source(s)``."""
    bench_name = params.get("benchmark")
    if bench_name:
        from ..benchsuite import get_benchmark

        try:
            bench = get_benchmark(bench_name)
        except KeyError as exc:
            raise JobError("unknown-benchmark", str(exc)) from None
        return [bench.source], bench.name
    sources = params.get("sources")
    if sources is None and params.get("source") is not None:
        sources = [params["source"]]
    if not sources or not all(isinstance(s, str) for s in sources):
        raise JobError(
            "bad-request",
            "pass either 'benchmark' (a benchsuite name) or "
            "'source'/'sources' (mini-C text)",
        )
    return list(sources), params.get("name", "program")


def _resolve_config(params: Dict[str, Any]) -> EnvironmentConfig:
    """The fully resolved environment config, unroll override applied —
    exactly the resolution :func:`repro.core.pipeline.iclang` performs,
    so keys computed here match keys computed there."""
    env = params.get("env", "wario")
    try:
        config = environment(env)
    except ValueError as exc:
        raise JobError("unknown-environment", str(exc)) from None
    unroll = params.get("unroll")
    if unroll is not None:
        try:
            config = replace(config, unroll_factor=int(unroll))
        except (TypeError, ValueError):
            raise JobError("bad-request", "'unroll' must be an integer")
    return config


def _params_digest(kind: str, params: Dict[str, Any]) -> str:
    """Content address for request kinds without a first-class cache key
    (``inject``): version tag + canonical JSON of the parameters."""
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"),
                      default=str)
    digest = hashlib.sha256()
    digest.update(version_tag().encode())
    digest.update(b"\x00")
    digest.update(kind.encode())
    digest.update(b"\x00")
    digest.update(blob.encode())
    return f"srv-{kind}-{digest.hexdigest()}"


def request_cache_key(kind: str, params: Dict[str, Any]) -> str:
    """The content address the server single-flights this request on.

    Computed without executing anything: two requests with the same key
    are guaranteed to produce the same artifact, so coalescing them is
    sound.  ``chaos`` has no key (the server never coalesces probes).
    Raises :class:`JobError` for unknown kinds or unresolvable params.
    """
    if kind == "compile":
        sources, name = _resolve_sources(params)
        config = _resolve_config(params)
        return compile_key(sources, config, name=name)
    if kind == "lint":
        sources, name = _resolve_sources(params)
        config = _resolve_config(params)
        return lint_key(sources, config, name=name,
                        level=params.get("level", "full"),
                        budget=params.get("budget"))
    if kind == "analyze":
        bench = params.get("benchmark")
        if bench == "all":
            return _params_digest("analyze", params)
        sources, name = _resolve_sources(params)
        config = _resolve_config({"env": params.get("env", "wario-summaries")})
        return analyze_key(sources, config, name=name)
    if kind == "eval":
        from ..benchsuite import get_benchmark
        from ..emulator import DEFAULT_COSTS

        sources, name = _resolve_sources(
            {"benchmark": params.get("benchmark")}
        )
        bench = get_benchmark(params["benchmark"])
        config = _resolve_config(params)
        program_key = compile_key(sources, config, name=name)
        return run_key(
            program_key,
            params.get("power", "continuous"),
            False,
            bench.max_instructions,
            repr(DEFAULT_COSTS),
        )
    if kind == "inject":
        return _params_digest("inject", params)
    if kind == "chaos":
        raise JobError("internal", "chaos probes are never coalesced")
    raise JobError("unknown-type", f"unknown request type {kind!r}")


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------


def _job_compile(params: Dict[str, Any], cache) -> JobPayload:
    from ..backend.disasm import render_compile_listing
    from ..core import iclang

    sources, name = _resolve_sources(params)
    config = _resolve_config(params)
    key = compile_key(sources, config, name=name)
    store = resolve_cache(cache)
    hit = store is not None and store.get(key) is not None
    program = iclang(sources, config, name=name, cache=cache)
    checkpoints = sum(1 for i in program.instrs if i.opcode == "checkpoint")
    return {
        "program": name,
        "env": config.name,
        "listing": render_compile_listing(program, config.name),
        "text_size": program.text_size,
        "static_checkpoints": checkpoints,
        "elisions": getattr(program, "elisions", 0),
        "cache_key": key,
    }, hit


def _job_lint(params: Dict[str, Any], cache) -> JobPayload:
    from ..core.lint import diagnostics_json, lint_sources

    sources, name = _resolve_sources(params)
    config = _resolve_config(params)
    level = params.get("level", "full")
    budget = params.get("budget")
    key = lint_key(sources, config, name=name, level=level, budget=budget)
    store = resolve_cache(cache)
    hit = store is not None and store.get(key) is not None
    try:
        result = lint_sources(sources, config, name=name, cache=cache,
                              level=level, budget=budget)
    except JobError:
        raise
    except ValueError as exc:
        raise JobError("bad-request", str(exc)) from None
    except Exception as exc:
        raise JobError("compile-failed", f"compilation failed: {exc}") from None
    return {
        "program": result.name,
        "env": result.env,
        "level": result.level,
        "certified": result.certified,
        "exit_code": result.exit_code,
        "diagnostics_json": diagnostics_json([result]),
        "progress_bound": result.progress_bound,
        "elided": len(result.placement),
        "cache_key": key,
    }, hit


def _job_analyze(params: Dict[str, Any], cache) -> JobPayload:
    from ..core.analyze import analyze_report

    env = params.get("env", "wario-summaries")
    bench = params.get("benchmark")
    key = request_cache_key("analyze", params)
    store = resolve_cache(cache)
    cached = store.get(key) if store is not None else None
    if cached is not None:
        return {"report": cached, "cache_key": key}, True
    try:
        if bench:
            report = analyze_report(env=env, benchmark=bench)
        else:
            sources, name = _resolve_sources(params)
            report = analyze_report(env=env, sources=sources, name=name)
    except JobError:
        raise
    except ValueError as exc:
        raise JobError("bad-request", str(exc)) from None
    except KeyError as exc:
        raise JobError("unknown-benchmark", str(exc)) from None
    except Exception as exc:
        raise JobError("compile-failed", f"analysis failed: {exc}") from None
    if store is not None:
        store.put(key, report)
    return {"report": report, "cache_key": key}, False


def _job_eval(params: Dict[str, Any], cache) -> JobPayload:
    from ..eval.runner import Cell, execute_cell, power_from_key

    bench_name = params.get("benchmark")
    if not bench_name:
        raise JobError("bad-request", "'eval' needs a 'benchmark' name")
    power_key = params.get("power", "continuous")
    try:
        power_from_key(power_key)        # validate before compiling
    except ValueError as exc:
        raise JobError("bad-request", str(exc)) from None
    config = _resolve_config(params)
    cell = Cell(bench_name, config.name, int(params.get("unroll") or 0),
                power_key)
    key = request_cache_key("eval", params)
    try:
        result = execute_cell(cell, war_check=False, cache=cache)
    except KeyError as exc:
        raise JobError("unknown-benchmark", str(exc)) from None
    stats = result.stats
    return {
        "bench": cell.bench,
        "env": cell.env,
        "power": cell.power_key,
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "checkpoints": stats.checkpoints,
        "checkpoint_causes": dict(sorted(stats.checkpoint_causes.items())),
        "power_failures": stats.power_failures,
        "reexecuted_cycles": stats.reexecuted_cycles,
        "max_region_cycles": stats.max_region_cycles,
        "text_size": result.program.text_size,
        "summary": stats.summary(),
        "cache_key": key,
    }, result.from_cache


def _job_inject(params: Dict[str, Any], cache) -> JobPayload:
    from ..faultinject import full_config, quick_config, run_campaign

    overrides: Dict[str, Any] = {
        "seed": int(params.get("seed", 0)),
        # serial inside the worker by default: the server's pool is the
        # fan-out layer, and nesting pools multiplies workers
        "jobs": int(params.get("jobs", 1)),
        "max_schedules": int(params.get("budget", 0)),
    }
    if params.get("event_cap") is not None:
        overrides["event_cap"] = int(params["event_cap"])
    maker = quick_config if params.get("quick", True) else full_config
    config = maker(**overrides)
    if params.get("benches"):
        config = replace(config, benches=tuple(params["benches"]))
    if params.get("envs"):
        config = replace(config, envs=tuple(params["envs"]))
    try:
        report = run_campaign(config, cache=cache)
    except Exception as exc:
        raise JobError("campaign-failed", f"campaign failed: {exc}") from None
    return {
        "certified": report.certified,
        "cells": report.cells,
        "findings": len(report.findings),
        "report_json": report.to_json(),
    }, False


def _job_chaos(params: Dict[str, Any], cache) -> JobPayload:
    """Operational probe: deliberately misbehave inside the worker so the
    server's recovery paths can be exercised end-to-end (the load
    generator's crash probe, the timeout tests).  ``exit`` kills the
    worker process; ``hang`` sleeps past the request timeout; ``noop``
    round-trips."""
    action = params.get("action", "noop")
    if action == "exit":
        os._exit(int(params.get("code", 23)))
    if action == "hang":
        seconds = float(params.get("seconds", 30.0))
        time.sleep(seconds)
        return {"slept": seconds}, False
    if action == "noop":
        return {"pong": True, "pid": os.getpid()}, False
    raise JobError("bad-request", f"unknown chaos action {action!r}")


_HANDLERS: Dict[str, Callable[[Dict[str, Any], Any], JobPayload]] = {
    "compile": _job_compile,
    "lint": _job_lint,
    "analyze": _job_analyze,
    "eval": _job_eval,
    "inject": _job_inject,
    "chaos": _job_chaos,
}


# ---------------------------------------------------------------------------
# Pool entry point
# ---------------------------------------------------------------------------


def worker_init() -> None:
    """Disarm inherited asyncio signal plumbing in pool workers.

    Fork-started workers inherit the server loop's signal wakeup fd and
    its no-op signal handlers.  Without this, a SIGTERM delivered to a
    *worker* (e.g. the executor terminating survivors of a broken pool)
    writes into the wakeup pipe shared with the parent — and the server
    event loop believes *it* received SIGTERM and drains.  Resetting the
    wakeup fd and restoring default dispositions keeps worker signals in
    the workers.
    """
    import signal

    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        return
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def pool_entry(payload: Tuple[str, Dict[str, Any], Optional[str], bool]) -> Dict[str, Any]:
    """Execute one request inside a pool worker.

    Returns a structured dict (never raises — exceptions don't pickle
    reliably and must not poison the pool): ``{"status": "ok", "result":
    ..., "cache_hit": ...}`` or ``{"status": "error", "code": ...,
    "message": ...}``.
    """
    kind, params, cache_dir, use_disk = payload
    if cache_dir is not None:
        # nested machinery (the inject campaign's own cell fan-out, any
        # resolve_cache(None) deep in the pipeline) must land in the
        # server's store, not the worker environment's default
        os.environ["REPRO_CACHE_DIR"] = cache_dir
    from ..eval.runner import worker_cache

    cache = worker_cache(cache_dir, use_disk)
    handler = _HANDLERS.get(kind)
    if handler is None:
        return {"status": "error", "code": "unknown-type",
                "message": f"unknown request type {kind!r}"}
    try:
        result, cache_hit = handler(params, cache)
        return {"status": "ok", "result": result, "cache_hit": cache_hit}
    except JobError as exc:
        return {"status": "error", "code": exc.code, "message": str(exc)}
    except Exception as exc:  # the pipeline rejected the program
        return {"status": "error", "code": "internal",
                "message": f"{type(exc).__name__}: {exc}"}


__all__ = [
    "JobError", "POOLED_KINDS", "pool_entry", "request_cache_key",
]
