"""The wire protocol: newline-delimited JSON over a stream.

One message per line, UTF-8, no framing beyond the ``\\n`` terminator —
trivially scriptable (``nc`` + ``jq`` work) and trivially robust: a
malformed line yields an error *response* on the same connection
instead of killing it.

Request::

    {"id": 7, "type": "compile", "params": {"benchmark": "crc",
     "env": "wario"}, "timeout": 120}

``id`` is echoed verbatim in the response so clients may pipeline any
number of concurrent requests per connection; ``timeout`` (seconds,
optional) caps this request's execution below the server-wide limit.

Response::

    {"id": 7, "ok": true, "result": {...},
     "meta": {"type": "compile", "cached": false, "deduped": false,
              "elapsed_ms": 412.7, "key": "program-..."}}

or, on failure::

    {"id": 7, "ok": false, "error": {"code": "unknown-benchmark",
     "message": "..."}, "meta": {...}}

``meta.cached`` means the artifact was served from the
content-addressed cache; ``meta.deduped`` means this request coalesced
onto another in-flight execution of the same cache key (single-flight).

:class:`ServeClient` is the asyncio client used by the load generator,
the parity tests, and anything else speaking the protocol from Python.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: StreamReader line limit: disassembly listings of the larger
#: benchmarks run to a few MiB; 16 MiB leaves ample headroom.
MAX_LINE_BYTES = 1 << 24


class ProtocolError(Exception):
    """A malformed frame (not JSON, not an object, missing ``type``)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class Request:
    """One decoded request frame."""

    type: str
    id: Any = None
    params: Dict[str, Any] = field(default_factory=dict)
    timeout: Optional[float] = None


def decode_request(line: bytes) -> Request:
    """Parse one frame into a :class:`Request` (raising, never killing
    the connection — the server turns the raise into an error response)."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    kind = obj.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("bad-request", "request needs a string 'type'")
    params = obj.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError("bad-request", "'params' must be an object")
    timeout = obj.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise ProtocolError("bad-request", "'timeout' must be a number")
        if timeout <= 0:
            raise ProtocolError("bad-request", "'timeout' must be positive")
    return Request(type=kind, id=obj.get("id"), params=params, timeout=timeout)


def encode_message(obj: Dict[str, Any]) -> bytes:
    """One compact JSON frame + newline.

    Keys keep their construction order (no re-sorting): result payloads
    must round-trip the wire byte-identical to what the CLI's renderers
    produce, which is what the parity tests pin.  The order is still
    deterministic — handlers build their dicts in literal order.
    """
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def ok_response(request_id, result, meta: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result, "meta": meta}


def error_response(request_id, code: str, message: str,
                   meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    return {
        "id": request_id, "ok": False,
        "error": {"code": code, "message": message},
        "meta": meta or {},
    }


@dataclass
class ServeResponse:
    """A decoded response, as handed to client callers."""

    ok: bool
    result: Any = None
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def cached(self) -> bool:
        return bool(self.meta.get("cached"))

    @property
    def deduped(self) -> bool:
        return bool(self.meta.get("deduped"))

    @property
    def elapsed_ms(self) -> float:
        return float(self.meta.get("elapsed_ms", 0.0))


class ServeClient:
    """Asyncio client with pipelining: any number of requests may be in
    flight per connection; responses are matched back by ``id``."""

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None

    async def connect(self, host: str, port: int) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    obj = json.loads(line.decode("utf-8"))
                except ValueError:
                    continue
                future = self._pending.pop(obj.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(obj)
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            # connection gone: fail anything still waiting
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("server closed the connection"))
            self._pending.clear()

    async def request(self, kind: str, params: Optional[Dict[str, Any]] = None,
                      timeout: Optional[float] = None) -> ServeResponse:
        """Send one request and await its response."""
        request_id = next(self._ids)
        frame: Dict[str, Any] = {"id": request_id, "type": kind,
                                 "params": params or {}}
        if timeout is not None:
            frame["timeout"] = timeout
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_message(frame))
        await self._writer.drain()
        obj = await future
        if obj.get("ok"):
            return ServeResponse(ok=True, result=obj.get("result"),
                                 meta=obj.get("meta", {}))
        error = obj.get("error", {})
        return ServeResponse(
            ok=False,
            error_code=error.get("code", "unknown"),
            error_message=error.get("message", ""),
            meta=obj.get("meta", {}),
        )

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


__all__ = [
    "MAX_LINE_BYTES", "ProtocolError", "Request", "ServeClient",
    "ServeResponse", "decode_request", "encode_message", "error_response",
    "ok_response",
]
