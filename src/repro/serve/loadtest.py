"""Concurrent load generation against the pipeline server.

``python -m repro loadtest [--quick]`` spawns a server subprocess (or
targets a running one via ``--host/--port``), drives a mixed workload —
``compile``, ``lint``, ``eval``, and ``envs`` requests over the
benchsuite × environment grid — from several pipelined client
connections, and reports:

* throughput (requests/sec) and latency (p50 / p99 / mean / max), both
  aggregate and per request type;
* cache effectiveness: hit/miss counts and the hit rate — the workload
  runs in two phases over the same request set, so the warm phase should
  be nearly all hits;
* dedup effectiveness: how many requests coalesced onto an in-flight
  execution, plus a **dedup probe** — a never-before-seen source
  submitted concurrently from two clients, asserting exactly one
  execution actually ran (the other either coalesced or hit the cache);
* a **crash probe**: a ``chaos`` request kills a worker mid-request and
  the report records whether the server kept serving afterwards.

The report lands in ``BENCH_<rev>.json`` next to the toolchain
performance numbers (under the ``"loadtest"`` key), or standalone via
``-o``.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import percentile
from .protocol import ServeClient, ServeResponse

#: the quick (CI-sized) grid; the full grid covers the whole suite
QUICK_BENCHES = ("crc", "sha")
QUICK_ENVS = ("wario", "ratchet")
FULL_ENVS = ("wario", "ratchet", "wario-opt")


@dataclass
class LoadtestConfig:
    """Everything ``python -m repro loadtest`` can set."""

    quick: bool = False
    host: Optional[str] = None      #: None = spawn a server subprocess
    port: Optional[int] = None
    clients: int = 4                #: concurrent client connections
    benches: Optional[Sequence[str]] = None
    envs: Optional[Sequence[str]] = None
    jobs: Optional[int] = None      #: spawned server's pool width
    cache_dir: Optional[str] = None  #: None = fresh temp dir (cold start)
    output: Optional[str] = None    #: None = merge into BENCH_<rev>.json
    request_timeout: float = 120.0
    dedup_probe: bool = True
    crash_probe: bool = True
    lint_level: str = "ir"          #: keep lint requests cheap under load


def _grid(config: LoadtestConfig) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    if config.benches:
        benches = tuple(config.benches)
    elif config.quick:
        benches = QUICK_BENCHES
    else:
        from ..benchsuite import BENCHMARKS

        benches = tuple(BENCHMARKS)
    if config.envs:
        envs = tuple(config.envs)
    else:
        envs = QUICK_ENVS if config.quick else FULL_ENVS
    return benches, envs


def build_workload(config: LoadtestConfig) -> List[Tuple[str, Dict[str, Any]]]:
    """The mixed request list for one phase (deterministic order)."""
    benches, envs = _grid(config)
    work: List[Tuple[str, Dict[str, Any]]] = []
    for bench in benches:
        for env in envs:
            work.append(("compile", {"benchmark": bench, "env": env}))
            work.append(("lint", {"benchmark": bench, "env": env,
                                  "level": config.lint_level}))
            work.append(("eval", {"benchmark": bench, "env": env,
                                  "power": "continuous"}))
    work.append(("envs", {}))
    return work


# ---------------------------------------------------------------------------
# Server subprocess management
# ---------------------------------------------------------------------------


class ServerProcess:
    """A ``python -m repro serve`` child, bound port read from its
    announce line."""

    def __init__(self, jobs: Optional[int], cache_dir: Optional[str],
                 request_timeout: float):
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.request_timeout = request_timeout
        self.proc: Optional[subprocess.Popen] = None
        self.host = "127.0.0.1"
        self.port = 0

    def start(self) -> "ServerProcess":
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", self.host, "--port", "0", "--announce",
                "--timeout", str(self.request_timeout)]
        if self.jobs is not None:
            argv += ["--jobs", str(self.jobs)]
        if self.cache_dir is not None:
            argv += ["--cache-dir", self.cache_dir]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        line = self.proc.stdout.readline()
        try:
            announce = json.loads(line)
            assert announce.get("event") == "serving"
        except (ValueError, AssertionError):
            self.stop()
            raise RuntimeError(
                f"server failed to start (got {line!r}); stderr:\n"
                + (self.proc.stderr.read() if self.proc else "")
            )
        self.host = announce["host"]
        self.port = int(announce["port"])
        return self

    def stop(self) -> None:
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=15)
        self.proc = None


# ---------------------------------------------------------------------------
# The run
# ---------------------------------------------------------------------------


@dataclass
class _Sample:
    kind: str
    ok: bool
    cached: bool
    deduped: bool
    elapsed_ms: float
    error: Optional[str] = None


async def _drive_phase(
    host: str, port: int, work: List[Tuple[str, Dict[str, Any]]],
    clients: int, timeout: float,
) -> List[_Sample]:
    """Fire the whole phase concurrently across ``clients`` pipelined
    connections (request i goes to connection i mod clients)."""
    clients = max(1, min(clients, len(work)))
    conns = []
    for _ in range(clients):
        conns.append(await ServeClient().connect(host, port))
    try:
        async def one(index: int, kind: str, params: Dict[str, Any]) -> _Sample:
            started = time.perf_counter()
            try:
                response = await conns[index % clients].request(
                    kind, params, timeout=timeout
                )
            except ConnectionError as exc:
                return _Sample(kind, False, False, False,
                               (time.perf_counter() - started) * 1000.0,
                               error=str(exc))
            return _Sample(
                kind, response.ok, response.cached, response.deduped,
                (time.perf_counter() - started) * 1000.0,
                error=response.error_code if not response.ok else None,
            )

        return list(await asyncio.gather(*[
            one(i, kind, params) for i, (kind, params) in enumerate(work)
        ]))
    finally:
        for conn in conns:
            await conn.close()


async def _dedup_probe(host: str, port: int,
                       timeout: float) -> Dict[str, Any]:
    """Submit a never-seen compile concurrently from two connections.

    Exactly one execution must actually run; the other response must be
    marked ``deduped`` (it coalesced in flight) or ``cached`` (it
    arrived after completion).  Both forms mean the work happened once,
    so the assertion is race-robust.
    """
    nonce = os.urandom(8).hex()
    source = (
        f"unsigned int nonce = 0x{nonce[:8]};\n"
        "unsigned int out;\n"
        "int main(void) {\n"
        "    out = nonce + 1;\n"
        "    return 0;\n"
        "}\n"
    )
    params = {"source": source, "name": f"dedup-probe-{nonce}",
              "env": "wario"}
    a = await ServeClient().connect(host, port)
    b = await ServeClient().connect(host, port)
    try:
        responses = await asyncio.gather(
            a.request("compile", params, timeout=timeout),
            b.request("compile", params, timeout=timeout),
        )
    finally:
        await a.close()
        await b.close()
    executed = sum(
        1 for r in responses if r.ok and not r.deduped and not r.cached
    )
    return {
        "submitted": len(responses),
        "ok": sum(1 for r in responses if r.ok),
        "deduped": sum(1 for r in responses if r.deduped),
        "cached": sum(1 for r in responses if r.cached),
        "executed_compiles": executed,
        "passed": executed == 1 and all(r.ok for r in responses),
    }


async def _crash_probe(host: str, port: int,
                       timeout: float) -> Dict[str, Any]:
    """Kill a worker mid-request; the request must fail cleanly and the
    server must keep serving."""
    client = await ServeClient().connect(host, port)
    try:
        chaos = await client.request("chaos", {"action": "exit"},
                                     timeout=timeout)
        follow_up = await client.request(
            "compile", {"benchmark": "crc", "env": "wario"}, timeout=timeout
        )
        stats = await client.request("stats", {}, timeout=timeout)
    except ConnectionError as exc:
        return {"survived": False, "error": str(exc)}
    finally:
        await client.close()
    return {
        "survived": follow_up.ok,
        "chaos_error": chaos.error_code,
        "worker_crashes": (
            stats.result.get("worker_crashes") if stats.ok else None
        ),
    }


def _phase_summary(samples: List[_Sample],
                   wall_seconds: float) -> Dict[str, Any]:
    latencies = [s.elapsed_ms for s in samples]
    per_type: Dict[str, Dict[str, Any]] = {}
    for sample in samples:
        row = per_type.setdefault(sample.kind, {
            "requests": 0, "errors": 0, "cache_hits": 0, "dedup_hits": 0,
            "latencies": [],
        })
        row["requests"] += 1
        row["errors"] += 0 if sample.ok else 1
        row["cache_hits"] += 1 if sample.cached else 0
        row["dedup_hits"] += 1 if sample.deduped else 0
        row["latencies"].append(sample.elapsed_ms)
    for row in per_type.values():
        lat = row.pop("latencies")
        row["p50_ms"] = round(percentile(lat, 0.50), 3)
        row["p99_ms"] = round(percentile(lat, 0.99), 3)
    # cache accounting covers pooled kinds only (inline kinds like
    # ``envs`` never consult the store) and skips dedup followers, which
    # neither hit nor missed themselves
    from .jobs import POOLED_KINDS

    looked_up = sum(
        1 for s in samples
        if s.ok and not s.deduped and s.kind in POOLED_KINDS
    )
    hits = sum(1 for s in samples if s.cached and not s.deduped)
    return {
        "requests": len(samples),
        "errors": sum(1 for s in samples if not s.ok),
        "wall_seconds": round(wall_seconds, 3),
        "requests_per_sec": (
            round(len(samples) / wall_seconds, 2) if wall_seconds else 0.0
        ),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "mean": (
                round(sum(latencies) / len(latencies), 3) if latencies else 0.0
            ),
            "max": round(max(latencies), 3) if latencies else 0.0,
        },
        "cache_hits": hits,
        "cache_misses": looked_up - hits,
        "cache_hit_rate": round(hits / looked_up, 4) if looked_up else 0.0,
        "dedup_count": sum(1 for s in samples if s.deduped),
        "per_type": {kind: per_type[kind] for kind in sorted(per_type)},
    }


async def _run(config: LoadtestConfig, host: str,
               port: int) -> Dict[str, Any]:
    work = build_workload(config)
    report: Dict[str, Any] = {
        "quick": config.quick,
        "clients": config.clients,
        "workload_size": len(work),
    }
    phases = {}
    for phase in ("cold", "warm"):
        started = time.perf_counter()
        samples = await _drive_phase(
            host, port, work, config.clients, config.request_timeout
        )
        phases[phase] = _phase_summary(
            samples, time.perf_counter() - started
        )
    report["phases"] = phases
    # headline numbers: the full run (both phases)
    combined_requests = sum(p["requests"] for p in phases.values())
    combined_wall = sum(p["wall_seconds"] for p in phases.values())
    looked_up = sum(
        p["cache_hits"] + p["cache_misses"] for p in phases.values()
    )
    hits = sum(p["cache_hits"] for p in phases.values())
    report.update({
        "requests": combined_requests,
        "errors": sum(p["errors"] for p in phases.values()),
        "wall_seconds": round(combined_wall, 3),
        "requests_per_sec": (
            round(combined_requests / combined_wall, 2)
            if combined_wall else 0.0
        ),
        "latency_ms": {
            "p50": phases["warm"]["latency_ms"]["p50"],
            "p99": phases["cold"]["latency_ms"]["p99"],
        },
        "cache_hits": hits,
        "cache_misses": looked_up - hits,
        "cache_hit_rate": round(hits / looked_up, 4) if looked_up else 0.0,
        "dedup_count": sum(p["dedup_count"] for p in phases.values()),
    })
    if config.dedup_probe:
        report["dedup_probe"] = await _dedup_probe(
            host, port, config.request_timeout
        )
    if config.crash_probe:
        report["crash_probe"] = await _crash_probe(
            host, port, config.request_timeout
        )
    client = await ServeClient().connect(host, port)
    try:
        stats = await client.request("stats", {},
                                     timeout=config.request_timeout)
        if stats.ok:
            report["server_stats"] = stats.result
    finally:
        await client.close()
    return report


def _merge_output(report: Dict[str, Any], output: Optional[str]) -> str:
    """Write the report: standalone at ``output``, else merged under the
    ``"loadtest"`` key of ``BENCH_<rev>.json`` (creating a minimal file
    when no bench run preceded this one)."""
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return output
    from ..bench import _revision

    revision = _revision()
    path = f"BENCH_{revision}.json"
    document: Dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                document = json.load(handle)
        except ValueError:
            document = {}
    document.setdefault("revision", revision)
    document.setdefault(
        "timestamp", time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    )
    document["loadtest"] = report
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def run_loadtest(config: Optional[LoadtestConfig] = None) -> Tuple[Dict[str, Any], str]:
    """Drive the full load test; returns ``(report, output_path)``."""
    import tempfile

    config = config or LoadtestConfig()
    server: Optional[ServerProcess] = None
    temp_cache: Optional[tempfile.TemporaryDirectory] = None
    try:
        if config.host is not None and config.port:
            host, port = config.host, config.port
        else:
            cache_dir = config.cache_dir
            if cache_dir is None:
                temp_cache = tempfile.TemporaryDirectory(
                    prefix="repro-loadtest-cache-"
                )
                cache_dir = temp_cache.name
            server = ServerProcess(
                config.jobs, cache_dir, config.request_timeout
            ).start()
            host, port = server.host, server.port
        report = _run_sync(config, host, port)
    finally:
        if server is not None:
            server.stop()
        if temp_cache is not None:
            temp_cache.cleanup()
    path = _merge_output(report, config.output)
    return report, path


def _run_sync(config: LoadtestConfig, host: str, port: int) -> Dict[str, Any]:
    loop = asyncio.new_event_loop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(_run(config, host, port))
    finally:
        asyncio.set_event_loop(None)
        loop.close()


def render_report(report: Dict[str, Any]) -> str:
    lines = [
        f"loadtest: {report['requests']} requests, "
        f"{report['errors']} errors, "
        f"{report['requests_per_sec']} req/s over "
        f"{report['wall_seconds']}s "
        f"({report['clients']} clients)",
        f"  latency : p50 {report['latency_ms']['p50']} ms (warm), "
        f"p99 {report['latency_ms']['p99']} ms (cold)",
        f"  cache   : {report['cache_hits']} hits / "
        f"{report['cache_misses']} misses "
        f"(hit rate {report['cache_hit_rate']})",
        f"  dedup   : {report['dedup_count']} coalesced requests",
    ]
    for phase in ("cold", "warm"):
        summary = report["phases"][phase]
        lines.append(
            f"  {phase:<5}   : {summary['requests']} reqs, "
            f"p50 {summary['latency_ms']['p50']} ms, "
            f"p99 {summary['latency_ms']['p99']} ms, "
            f"hit rate {summary['cache_hit_rate']}"
        )
    probe = report.get("dedup_probe")
    if probe:
        verdict = "passed" if probe["passed"] else "FAILED"
        lines.append(
            f"  dedup probe: {verdict} "
            f"({probe['executed_compiles']} executed, "
            f"{probe['deduped']} deduped, {probe['cached']} cached)"
        )
    crash = report.get("crash_probe")
    if crash:
        verdict = "survived" if crash.get("survived") else "DIED"
        lines.append(
            f"  crash probe: server {verdict} a worker kill "
            f"(crashes seen: {crash.get('worker_crashes')})"
        )
    return "\n".join(lines)


__all__ = [
    "LoadtestConfig", "ServerProcess", "build_workload", "render_report",
    "run_loadtest",
]
