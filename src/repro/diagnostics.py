"""Structured compiler diagnostics.

Every verifier in the reproduction (the static WAR verifiers, the machine
IR structural verifier, the emulator's dynamic WAR checker) reports its
findings as :class:`Diagnostic` values collected by a
:class:`DiagnosticEngine`, so one program has one uniform diagnostic
stream regardless of which level of the pipeline produced it.

A diagnostic carries:

* a *severity* (``error`` | ``warning`` | ``note``),
* a stable *code* (e.g. ``war-forward``, ``mir-war-spill``) suitable for
  filtering and CI gating,
* the *level* that produced it (``ir`` middle end, ``mir`` back end,
  ``dynamic`` emulator),
* the owning *function* and an idempotent-*region* identifier,
* a primary :class:`SourceLoc` (threaded from the mini-C front end
  through IR lowering into machine IR, so even spill-slot diagnostics can
  point back at a source line), and
* *related* secondary notes — typically the load of a load/store WAR
  pair, rendered under the primary store message.

Renderers: :func:`render_text` (clang-style, one line per note) and
:func:`render_json` (a stable machine-readable schema for tooling).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Severities, most severe first.
ERROR = "error"
WARNING = "warning"
NOTE = "note"
SEVERITIES = (ERROR, WARNING, NOTE)

#: Pipeline levels a diagnostic can originate from.
LEVEL_IR = "ir"
LEVEL_MIR = "mir"
LEVEL_DYNAMIC = "dynamic"
#: findings of the power-failure fault-injection campaign
#: (:mod:`repro.faultinject`): differential divergence from the
#: continuous-power oracle under a concrete failure schedule
LEVEL_CAMPAIGN = "campaign"
#: findings of the static idempotence certifier
#: (:mod:`repro.analysis.idempotence`): per-region re-execution proof
#: obligations that could not be discharged
LEVEL_CERTIFY = "certify"


@dataclass(frozen=True)
class SourceLoc:
    """A location in the mini-C source: ``file:line``.

    ``line`` is 1-based; ``0`` means "unknown line".  ``file`` may be
    empty when the translation unit was compiled from an in-memory
    string (the benchsuite does this).
    """

    line: int = 0
    file: str = ""

    @property
    def known(self) -> bool:
        return self.line > 0

    def __str__(self):
        name = self.file or "<source>"
        return f"{name}:{self.line}" if self.known else name


@dataclass
class Diagnostic:
    """One finding, plus any attached secondary notes."""

    severity: str
    code: str
    message: str
    function: str = ""
    region: str = ""
    level: str = LEVEL_IR
    loc: Optional[SourceLoc] = None
    #: (note message, note location) pairs rendered under the primary.
    related: List[Tuple[str, Optional[SourceLoc]]] = field(default_factory=list)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "function": self.function,
            "region": self.region,
            "level": self.level,
            "loc": _loc_dict(self.loc),
            "related": [
                {"message": msg, "loc": _loc_dict(loc)} for msg, loc in self.related
            ],
        }

    def render(self) -> str:
        lines = [
            f"{_loc_str(self.loc)}: {self.severity}: [{self.code}] {self.message}"
        ]
        context = []
        if self.function:
            context.append(f"function '{self.function}'")
        if self.region:
            context.append(f"region {self.region}")
        if context:
            lines[0] += f" ({', '.join(context)})"
        for msg, loc in self.related:
            lines.append(f"{_loc_str(loc)}: note: {msg}")
        return "\n".join(lines)


def _loc_dict(loc: Optional[SourceLoc]):
    if loc is None or not loc.known:
        return None
    return {"file": loc.file, "line": loc.line}


def _loc_str(loc: Optional[SourceLoc]) -> str:
    return str(loc) if loc is not None else "<unknown>"


class DiagnosticEngine:
    """Collects diagnostics and answers severity queries.

    One engine is threaded through every verification stage of a single
    compilation, so ``engine.has_errors`` is the whole-pipeline verdict.
    """

    def __init__(self):
        self.diagnostics: List[Diagnostic] = []

    # -- emission --------------------------------------------------------
    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def error(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.emit(Diagnostic(ERROR, code, message, **kwargs))

    def warning(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.emit(Diagnostic(WARNING, code, message, **kwargs))

    def note(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.emit(Diagnostic(NOTE, code, message, **kwargs))

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diagnostic in diagnostics:
            self.emit(diagnostic)

    # -- queries ---------------------------------------------------------
    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    def summary(self) -> str:
        errors, warnings = self.count(ERROR), self.count(WARNING)
        if not errors and not warnings:
            return "0 errors, 0 warnings"
        return f"{errors} error{'s' * (errors != 1)}, " \
               f"{warnings} warning{'s' * (warnings != 1)}"

    # -- rendering -------------------------------------------------------
    def render_text(self) -> str:
        return render_text(self.diagnostics)

    def render_json(self) -> str:
        return render_json(self.diagnostics)


def render_text(diagnostics: List[Diagnostic]) -> str:
    """Clang-style plain-text rendering, one finding per paragraph."""
    if not diagnostics:
        return "no diagnostics"
    return "\n".join(d.render() for d in diagnostics)


def render_json(diagnostics: List[Diagnostic]) -> str:
    """Stable machine-readable rendering (a JSON object per finding)."""
    payload = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "counts": {
            severity: sum(1 for d in diagnostics if d.severity == severity)
            for severity in SEVERITIES
        },
    }
    return json.dumps(payload, indent=2)


#: SARIF maps our three severities onto its own level names.
_SARIF_LEVEL = {ERROR: "error", WARNING: "warning", NOTE: "note"}


def _sarif_location(loc: Optional[SourceLoc], message: Optional[str] = None):
    physical = {
        "artifactLocation": {"uri": (loc.file if loc is not None else "")
                             or "<source>"},
    }
    if loc is not None and loc.known:
        physical["region"] = {"startLine": loc.line}
    out: Dict[str, object] = {"physicalLocation": physical}
    if message is not None:
        out["message"] = {"text": message}
    return out


def _sort_key(d: Diagnostic):
    return (
        d.loc.file if d.loc is not None else "",
        d.loc.line if d.loc is not None else 0,
        d.code,
        d.function,
        d.message,
    )


def render_sarif(diagnostics: List[Diagnostic],
                 tool_name: str = "repro-lint") -> str:
    """SARIF 2.1.0 rendering for CI code-scanning upload.

    Ordering is deterministic: results sort by (file, line, code,
    function, message) and the rule table by code, so identical verdicts
    always serialize to identical bytes regardless of emission order.
    """
    ordered = sorted(diagnostics, key=_sort_key)
    rules = []
    for code in sorted({d.code for d in ordered}):
        rules.append({
            "id": code,
            "shortDescription": {"text": code},
            "properties": {"pipelineLevels": sorted(
                {d.level for d in ordered if d.code == code}
            )},
        })
    results = []
    for d in ordered:
        result: Dict[str, object] = {
            "ruleId": d.code,
            "level": _SARIF_LEVEL[d.severity],
            "message": {"text": d.message},
            "locations": [_sarif_location(d.loc)],
            "properties": {
                "function": d.function,
                "region": d.region,
                "pipelineLevel": d.level,
            },
        }
        if d.related:
            result["relatedLocations"] = [
                _sarif_location(loc, msg) for msg, loc in d.related
            ]
        results.append(result)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://dl.acm.org/doi/10.1145/3519939.3523454",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = [
    "ERROR", "WARNING", "NOTE", "SEVERITIES",
    "LEVEL_IR", "LEVEL_MIR", "LEVEL_DYNAMIC", "LEVEL_CAMPAIGN", "LEVEL_CERTIFY",
    "SourceLoc", "Diagnostic", "DiagnosticEngine",
    "render_text", "render_json", "render_sarif",
]
