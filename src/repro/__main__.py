"""The ``iclang`` command-line driver (paper §4.6), as a CLI.

Usage::

    python -m repro compile program.c --env wario -o listing.txt
    python -m repro run program.c --env wario --power 50000 --verify-war
    python -m repro run program.c --env ratchet --print-globals acc,total
    python -m repro lint program.c --env wario
    python -m repro lint --benchmark all --env wario-expander --format json
    python -m repro analyze --benchmark all --env wario-summaries
    python -m repro inject --quick -o report.json
    python -m repro cache stats -o json
    python -m repro bench --quick
    python -m repro envs -o json
    python -m repro serve --port 9123
    python -m repro loadtest --quick

``compile`` prints (or writes) a disassembly listing plus size/static
statistics; ``run`` executes on the emulator and reports execution
statistics; ``lint`` statically certifies WAR-freedom (exit 0 clean,
1 diagnostics of severity error, 2 compile failure); ``analyze`` dumps
the interprocedural points-to sets, mod/ref summaries and every
precision-loss cause; ``inject`` runs the deterministic power-failure
fault-injection campaign and differentially certifies crash consistency
against the continuous-power oracle (exit 0 certified, 1 findings, 2
campaign failure — see ``docs/FAULT_INJECTION.md``); ``cache`` inspects
or clears the content-addressed compile cache; ``bench`` measures the toolchain's own performance (see
``docs/PERFORMANCE.md``); ``envs`` lists the available software
environments; ``serve`` runs the long-lived compiler-as-a-service
(JSON over TCP — see ``docs/SERVING.md``); ``loadtest`` drives a
concurrent mixed workload against it and reports throughput, latency
percentiles, cache hit rate, and dedup counts.
"""

from __future__ import annotations

import argparse
import sys

from .core import ENVIRONMENTS, iclang
from .core.lint import (
    EXIT_CLEAN,
    EXIT_COMPILE_FAILED,
    EXIT_ERRORS,
    lint_benchmarks,
    lint_sources,
)
from .diagnostics import render_json, render_sarif
from .emulator import (
    ContinuousPower,
    EmulationError,
    FixedPeriodPower,
    Machine,
    trace_a,
    trace_b,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="WARio reproduction: compile mini-C for intermittent execution",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile", help="compile and disassemble")
    compile_p.add_argument("sources", nargs="+", help="mini-C source files")
    compile_p.add_argument("--env", default="wario", help="software environment")
    compile_p.add_argument("--unroll", type=int, default=None,
                           help="Loop Write Clusterer unroll factor N")
    compile_p.add_argument("-o", "--output", default=None,
                           help="write the listing to a file instead of stdout")

    run_p = sub.add_parser("run", help="compile and execute on the emulator")
    run_p.add_argument("sources", nargs="+")
    run_p.add_argument("--env", default="wario")
    run_p.add_argument("--unroll", type=int, default=None)
    run_p.add_argument("--power", default=None,
                       help="'continuous' (default), a fixed on-period in "
                            "cycles, 'trace-a', or 'trace-b'")
    run_p.add_argument("--verify-war", action="store_true",
                       help="check every memory access for WAR violations")
    run_p.add_argument("--interrupt-interval", type=int, default=None,
                       help="fire a timer interrupt every N cycles")
    run_p.add_argument("--print-globals", default=None,
                       help="comma-separated globals to print after the run "
                            "(append :COUNT for arrays, e.g. acc:16)")
    run_p.add_argument("--max-instructions", type=int, default=50_000_000)

    lint_p = sub.add_parser(
        "lint",
        help="statically certify WAR-freedom and per-region idempotence",
    )
    lint_p.add_argument("sources", nargs="*", help="mini-C source files")
    lint_p.add_argument("--benchmark", default=None, metavar="NAME",
                        help="lint a benchsuite program instead of files "
                             "('all' for the whole suite)")
    lint_p.add_argument("--env", default="wario")
    lint_p.add_argument("--level", choices=("ir", "mir", "full"),
                        default="full",
                        help="certification depth: 'ir' middle-end WAR "
                             "verifier only, 'mir' adds the back-end stack "
                             "verifiers, 'full' adds the idempotence "
                             "certifier (default)")
    lint_p.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    lint_p.add_argument("--budget", type=int, default=None, metavar="CYCLES",
                        help="per-region cycle budget for the forward-"
                             "progress certifier (level full): unbounded "
                             "regions become errors, and any region whose "
                             "machine-level worst case exceeds CYCLES "
                             "raises progress-budget-exceeded")
    lint_p.add_argument("--certificates", default=None, metavar="PATH",
                        help="write the per-function idempotence and "
                             "forward-progress certificates (JSON) to PATH")

    analyze_p = sub.add_parser(
        "analyze",
        help="dump points-to sets, mod/ref summaries and precision losses",
    )
    analyze_p.add_argument("sources", nargs="*", help="mini-C source files")
    analyze_p.add_argument("--benchmark", default=None, metavar="NAME",
                          help="analyze a benchsuite program instead of "
                               "files ('all' for the whole suite)")
    analyze_p.add_argument("--env", default="wario-summaries")
    analyze_p.add_argument("--format", choices=("text", "json"),
                          default="text")

    inject_p = sub.add_parser(
        "inject",
        help="deterministic power-failure fault injection with "
             "differential crash-consistency certification",
    )
    inject_p.add_argument("--bench", action="append", default=None,
                          metavar="NAME",
                          help="benchmark to sweep (repeatable; default: "
                               "the full suite, or crc+sha with --quick)")
    inject_p.add_argument("--env", action="append", default=None,
                          metavar="NAME",
                          help="software environment to sweep (repeatable; "
                               "default: wario and ratchet)")
    inject_p.add_argument("--quick", action="store_true",
                          help="CI-sized campaign: two benchmarks, small "
                               "schedule budgets")
    inject_p.add_argument("--seed", type=int, default=0,
                          help="campaign seed for the interior-point RNG")
    inject_p.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: REPRO_JOBS or "
                               "the CPU count)")
    inject_p.add_argument("--budget", type=int, default=0, metavar="N",
                          help="cap the planned schedules per pair "
                               "(0 = unlimited)")
    inject_p.add_argument("--event-cap", type=int, default=None, metavar="N",
                          help="max targeted events per kind")
    inject_p.add_argument("--differential", action="store_true",
                          help="cross-validate the static idempotence "
                               "certifier against the campaign over the "
                               "same cells (clean matrix + seeded "
                               "mutants); --quick selects the CI-sized "
                               "cell set")
    inject_p.add_argument("--progress", action="store_true",
                          help="cross-validate the static forward-"
                               "progress certifier: observed inter-"
                               "checkpoint gaps vs. static bounds, "
                               "tightness per cell, and the starvation "
                               "cross-check; --quick selects the "
                               "CI-sized cell set")
    inject_p.add_argument("--format", choices=("text", "json"),
                          default="text")
    inject_p.add_argument("-o", "--output", default=None,
                          help="also write the JSON report to a file")

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the content-addressed compile cache"
    )
    cache_p.add_argument("action", choices=("stats", "clear"),
                         help="'stats' prints entry counts and staleness; "
                              "'clear' removes every entry")
    cache_p.add_argument("-o", "--format", dest="format",
                         choices=("text", "json"), default="text",
                         help="stats output format (json includes the live "
                              "hit/miss/store counters)")

    bench_p = sub.add_parser(
        "bench", help="measure toolchain performance, write BENCH_<rev>.json"
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="small CI-sized run (one benchmark, fig4 only)")
    bench_p.add_argument("-o", "--output", default=None,
                         help="report path (default: BENCH_<git rev>.json)")

    envs_p = sub.add_parser("envs", help="list the software environments")
    envs_p.add_argument("-o", "--format", dest="format",
                        choices=("text", "json"), default="text",
                        help="output format (json is the machine-readable "
                             "listing the pipeline server also returns)")

    serve_p = sub.add_parser(
        "serve",
        help="long-lived compile/analysis server (JSON over TCP, see "
             "docs/SERVING.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=9123,
                         help="TCP port (0 = pick a free port)")
    serve_p.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS or "
                              "the CPU count)")
    serve_p.add_argument("--cache-dir", default=None,
                         help="shared artifact cache directory (default: "
                              "REPRO_CACHE_DIR or ~/.cache/repro)")
    serve_p.add_argument("--timeout", type=float, default=300.0,
                         help="per-request wall-clock limit in seconds")
    serve_p.add_argument("--retries", type=int, default=1,
                         help="crash-recovery retries per request")
    serve_p.add_argument("--announce", action="store_true",
                         help="print a JSON line with the bound host/port "
                              "once serving (used by the load generator)")

    loadtest_p = sub.add_parser(
        "loadtest",
        help="drive a concurrent mixed workload against the pipeline "
             "server and report throughput/latency/cache/dedup numbers",
    )
    loadtest_p.add_argument("--quick", action="store_true",
                            help="CI-sized workload (crc+sha x "
                                 "wario+ratchet)")
    loadtest_p.add_argument("--host", default=None,
                            help="target a running server instead of "
                                 "spawning one")
    loadtest_p.add_argument("--port", type=int, default=None)
    loadtest_p.add_argument("--clients", type=int, default=4,
                            help="concurrent client connections")
    loadtest_p.add_argument("--jobs", type=int, default=None,
                            help="spawned server's worker count")
    loadtest_p.add_argument("--cache-dir", default=None,
                            help="spawned server's cache directory "
                                 "(default: a fresh temp dir — a true "
                                 "cold start)")
    loadtest_p.add_argument("--bench", action="append", default=None,
                            metavar="NAME", help="benchmark to include "
                                                 "(repeatable)")
    loadtest_p.add_argument("--env", action="append", default=None,
                            metavar="NAME",
                            help="environment to include (repeatable)")
    loadtest_p.add_argument("--timeout", type=float, default=120.0,
                            help="per-request timeout in seconds")
    loadtest_p.add_argument("--no-probes", action="store_true",
                            help="skip the dedup and crash probes")
    loadtest_p.add_argument("-o", "--output", default=None,
                            help="standalone report path (default: merge "
                                 "under 'loadtest' in BENCH_<rev>.json)")
    return parser


def _power_from(spec):
    if spec is None or spec == "continuous":
        return None
    if spec == "trace-a":
        return trace_a()
    if spec == "trace-b":
        return trace_b()
    return FixedPeriodPower(int(spec))


def _read_sources(paths):
    sources = []
    for path in paths:
        with open(path) as handle:
            sources.append(handle.read())
    return sources


def _cmd_compile(args) -> int:
    from .backend.disasm import render_compile_listing

    program = iclang(_read_sources(args.sources), args.env, unroll_factor=args.unroll)
    checkpoints = sum(1 for i in program.instrs if i.opcode == "checkpoint")
    # shared renderer: the server's ``compile`` listing must be
    # byte-identical to this output (tests/test_serve_parity.py)
    text = render_compile_listing(program, args.env)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({program.text_size} .text bytes, "
              f"{checkpoints} static checkpoints)")
    else:
        print(text)
    return 0


def _cmd_run(args) -> int:
    program = iclang(_read_sources(args.sources), args.env, unroll_factor=args.unroll)
    machine = Machine(
        program,
        war_check=args.verify_war,
        interrupt_interval=args.interrupt_interval,
    )
    try:
        stats = machine.run(
            power=_power_from(args.power), max_instructions=args.max_instructions
        )
    except EmulationError as exc:
        print(f"execution aborted: {exc}")
        return 1
    print(stats.summary())
    if stats.power_failures:
        print(f"re-executed {stats.reexecuted_cycles} cycles across "
              f"{stats.power_failures} power failures")
    if args.verify_war:
        if machine.war.clean:
            print("WAR verification: clean")
        else:
            print(f"WAR verification: {len(machine.war.violations)} violations")
            for violation in machine.war.violations[:5]:
                print(f"  {violation}")
            return 1
    if args.print_globals:
        for spec in args.print_globals.split(","):
            name, _, count = spec.partition(":")
            value = machine.read_global(name.strip(), int(count) if count else 1)
            print(f"@{name.strip()} = {value}")
    return 0


def _cmd_lint(args) -> int:
    import json

    if bool(args.sources) == bool(args.benchmark):
        print("lint: pass either source files or --benchmark NAME",
              file=sys.stderr)
        return EXIT_COMPILE_FAILED
    try:
        if args.benchmark:
            results = lint_benchmarks(args.benchmark, args.env,
                                      level=args.level, budget=args.budget)
        else:
            results = [lint_sources(_read_sources(args.sources), args.env,
                                    name=args.sources[0], level=args.level,
                                    budget=args.budget)]
    except Exception as exc:  # front/middle end rejected the program
        print(f"lint: compilation failed: {exc}", file=sys.stderr)
        return EXIT_COMPILE_FAILED
    if args.certificates:
        payload = [
            {"program": r.name, "env": r.env, "certificates": r.certificates,
             "progress": r.progress, "placement": r.placement,
             "budget": r.budget, "progress_bound": r.progress_bound}
            for r in results
        ]
        with open(args.certificates, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    diagnostics = [d for r in results for d in r.engine.diagnostics]
    if args.format == "sarif":
        print(render_sarif(diagnostics))
    elif args.format == "json":
        # shared renderer (deterministic order): byte-identical to the
        # server's ``lint`` diagnostics_json payload
        from .core.lint import diagnostics_json

        print(diagnostics_json(results))
    else:
        for result in results:
            if result.certified:
                verdict = (
                    "certified idempotent" if result.level == "full"
                    else "certified WAR-free"
                )
            else:
                verdict = result.engine.summary()
            if result.level == "full" and result.progress:
                bound = result.progress_bound
                verdict += (
                    f", progress bound {bound} cycles/region"
                    if bound is not None else ", progress unbounded"
                )
            if result.placement:
                verdict += (
                    f", {len(result.placement)} checkpoint(s) elided"
                )
            print(f"{result.name} [{result.env}]: {verdict}")
            if not result.engine.clean:
                print(result.engine.render_text())
        if args.certificates:
            print(f"wrote {args.certificates}")
    clean = all(r.certified for r in results)
    return EXIT_CLEAN if clean else EXIT_ERRORS


def _cmd_analyze(args) -> int:
    import json

    # shared report builder: the server's ``analyze`` request returns
    # exactly this structure (tests/test_serve_parity.py)
    from .core.analyze import analyze_report, render_report_text

    if bool(args.sources) == bool(args.benchmark):
        print("analyze: pass either source files or --benchmark NAME",
              file=sys.stderr)
        return 2
    if args.benchmark:
        report = analyze_report(env=args.env, benchmark=args.benchmark)
    else:
        report = analyze_report(env=args.env,
                                sources=_read_sources(args.sources),
                                name=args.sources[0])
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_report_text(report))
    return 0


def _cmd_envs(args) -> int:
    if getattr(args, "format", "text") == "json":
        import json

        # shared payload builder: identical to the server's ``envs``
        # response (machine-readable environment listing)
        from .core.pipeline import environments_payload

        print(json.dumps(environments_payload(), indent=2))
        return 0
    for name, config in ENVIRONMENTS.items():
        bits = []
        if not config.instrument:
            bits.append("uninstrumented")
        else:
            bits.append(f"alias={config.alias_mode}")
            if config.loop_write_clusterer:
                bits.append(f"loop-write-clusterer(N={config.unroll_factor})")
            if config.write_clusterer:
                bits.append("write-clusterer")
            if config.expander:
                bits.append("expander")
            if config.call_summaries:
                bits.append("call-summaries")
            if config.checkpoint_elim:
                bits.append("checkpoint-elim")
            bits.append(f"spill={config.spill_checkpoint_mode}")
            bits.append(f"epilogue={config.epilogue_style}")
        print(f"{name:<22} {', '.join(bits)}")
    return 0


def _cmd_inject(args) -> int:
    if args.progress:
        return _cmd_inject_progress(args)
    if args.differential:
        return _cmd_inject_differential(args)
    from .faultinject import full_config, quick_config, run_campaign

    overrides = {"seed": args.seed, "jobs": args.jobs,
                 "max_schedules": args.budget}
    if args.event_cap is not None:
        overrides["event_cap"] = args.event_cap
    config = (quick_config if args.quick else full_config)(**overrides)
    if args.bench:
        config = _dc_replace(config, benches=tuple(args.bench))
    if args.env:
        config = _dc_replace(config, envs=tuple(args.env))
    try:
        report = run_campaign(config)
    except Exception as exc:  # compile failure, unknown bench/env, ...
        print(f"inject: campaign failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
        if args.output:
            print(f"wrote {args.output}")
    return 0 if report.certified else 1


def _cmd_inject_differential(args) -> int:
    from .faultinject import (
        full_differential_config,
        quick_differential_config,
        run_differential,
    )

    overrides = {"seed": args.seed, "jobs": args.jobs,
                 "max_schedules": args.budget}
    if args.event_cap is not None:
        overrides["event_cap"] = args.event_cap
    maker = (quick_differential_config if args.quick
             else full_differential_config)
    config = maker(**overrides)
    if args.bench or args.env:
        print("inject: --differential uses its built-in cell set; "
              "--bench/--env are ignored", file=sys.stderr)
    try:
        report = run_differential(config)
    except Exception as exc:
        print(f"inject: differential run failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
        if args.output:
            print(f"wrote {args.output}")
    return 0 if report.certified else 1


def _cmd_inject_progress(args) -> int:
    from .faultinject import (
        full_progress_config,
        quick_progress_config,
        run_progress_differential,
    )

    maker = (quick_progress_config if args.quick else full_progress_config)
    config = maker()
    if args.bench or args.env:
        cells = config.cells
        if args.bench:
            cells = tuple(c for c in cells if c[0] in set(args.bench))
        if args.env:
            cells = tuple(c for c in cells if c[1] in set(args.env))
        config = _dc_replace(config, cells=cells)
    try:
        report = run_progress_differential(config)
    except Exception as exc:
        print(f"inject: progress differential failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
        if args.output:
            print(f"wrote {args.output}")
    return 0 if report.certified else 1


def _dc_replace(config, **kwargs):
    from dataclasses import replace

    return replace(config, **kwargs)


def _cmd_cache(args) -> int:
    from .cache import get_cache

    cache = get_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    report = cache.report()
    if getattr(args, "format", "text") == "json":
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_serve(args) -> int:
    from .serve.server import ServerConfig, serve_forever

    serve_forever(ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        request_timeout=args.timeout,
        max_retries=args.retries,
        announce=args.announce,
    ))
    return 0


def _cmd_loadtest(args) -> int:
    from .serve.loadtest import LoadtestConfig, render_report, run_loadtest

    config = LoadtestConfig(
        quick=args.quick,
        host=args.host,
        port=args.port,
        clients=args.clients,
        benches=tuple(args.bench) if args.bench else None,
        envs=tuple(args.env) if args.env else None,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        output=args.output,
        request_timeout=args.timeout,
        dedup_probe=not args.no_probes,
        crash_probe=not args.no_probes,
    )
    report, path = run_loadtest(config)
    print(render_report(report))
    print(f"wrote {path}")
    failed = report["errors"] > 0
    probe = report.get("dedup_probe")
    if probe is not None and not probe["passed"]:
        failed = True
    crash = report.get("crash_probe")
    if crash is not None and not crash.get("survived"):
        failed = True
    return 1 if failed else 0


def _cmd_bench(args) -> int:
    from .bench import render_report, run_bench

    path = run_bench(quick=args.quick, output=args.output)
    print(render_report(path))
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "inject":
        return _cmd_inject(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    return _cmd_envs(args)


if __name__ == "__main__":
    raise SystemExit(main())
