"""The ``iclang`` command-line driver (paper §4.6), as a CLI.

Usage::

    python -m repro compile program.c --env wario -o listing.txt
    python -m repro run program.c --env wario --power 50000 --verify-war
    python -m repro run program.c --env ratchet --print-globals acc,total
    python -m repro lint program.c --env wario
    python -m repro lint --benchmark all --env wario-expander --format json
    python -m repro analyze --benchmark all --env wario-summaries
    python -m repro inject --quick -o report.json
    python -m repro cache stats
    python -m repro bench --quick
    python -m repro envs

``compile`` prints (or writes) a disassembly listing plus size/static
statistics; ``run`` executes on the emulator and reports execution
statistics; ``lint`` statically certifies WAR-freedom (exit 0 clean,
1 diagnostics of severity error, 2 compile failure); ``analyze`` dumps
the interprocedural points-to sets, mod/ref summaries and every
precision-loss cause; ``inject`` runs the deterministic power-failure
fault-injection campaign and differentially certifies crash consistency
against the continuous-power oracle (exit 0 certified, 1 findings, 2
campaign failure — see ``docs/FAULT_INJECTION.md``); ``cache`` inspects
or clears the content-addressed compile cache; ``bench`` measures the toolchain's own performance (see
``docs/PERFORMANCE.md``); ``envs`` lists the available software
environments.
"""

from __future__ import annotations

import argparse
import sys

from .backend.disasm import disassemble
from .core import ENVIRONMENTS, iclang
from .core.lint import (
    EXIT_CLEAN,
    EXIT_COMPILE_FAILED,
    EXIT_ERRORS,
    lint_benchmarks,
    lint_sources,
)
from .diagnostics import render_json, render_sarif
from .emulator import (
    ContinuousPower,
    EmulationError,
    FixedPeriodPower,
    Machine,
    trace_a,
    trace_b,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="WARio reproduction: compile mini-C for intermittent execution",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile", help="compile and disassemble")
    compile_p.add_argument("sources", nargs="+", help="mini-C source files")
    compile_p.add_argument("--env", default="wario", help="software environment")
    compile_p.add_argument("--unroll", type=int, default=None,
                           help="Loop Write Clusterer unroll factor N")
    compile_p.add_argument("-o", "--output", default=None,
                           help="write the listing to a file instead of stdout")

    run_p = sub.add_parser("run", help="compile and execute on the emulator")
    run_p.add_argument("sources", nargs="+")
    run_p.add_argument("--env", default="wario")
    run_p.add_argument("--unroll", type=int, default=None)
    run_p.add_argument("--power", default=None,
                       help="'continuous' (default), a fixed on-period in "
                            "cycles, 'trace-a', or 'trace-b'")
    run_p.add_argument("--verify-war", action="store_true",
                       help="check every memory access for WAR violations")
    run_p.add_argument("--interrupt-interval", type=int, default=None,
                       help="fire a timer interrupt every N cycles")
    run_p.add_argument("--print-globals", default=None,
                       help="comma-separated globals to print after the run "
                            "(append :COUNT for arrays, e.g. acc:16)")
    run_p.add_argument("--max-instructions", type=int, default=50_000_000)

    lint_p = sub.add_parser(
        "lint",
        help="statically certify WAR-freedom and per-region idempotence",
    )
    lint_p.add_argument("sources", nargs="*", help="mini-C source files")
    lint_p.add_argument("--benchmark", default=None, metavar="NAME",
                        help="lint a benchsuite program instead of files "
                             "('all' for the whole suite)")
    lint_p.add_argument("--env", default="wario")
    lint_p.add_argument("--level", choices=("ir", "mir", "full"),
                        default="full",
                        help="certification depth: 'ir' middle-end WAR "
                             "verifier only, 'mir' adds the back-end stack "
                             "verifiers, 'full' adds the idempotence "
                             "certifier (default)")
    lint_p.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    lint_p.add_argument("--budget", type=int, default=None, metavar="CYCLES",
                        help="per-region cycle budget for the forward-"
                             "progress certifier (level full): unbounded "
                             "regions become errors, and any region whose "
                             "machine-level worst case exceeds CYCLES "
                             "raises progress-budget-exceeded")
    lint_p.add_argument("--certificates", default=None, metavar="PATH",
                        help="write the per-function idempotence and "
                             "forward-progress certificates (JSON) to PATH")

    analyze_p = sub.add_parser(
        "analyze",
        help="dump points-to sets, mod/ref summaries and precision losses",
    )
    analyze_p.add_argument("sources", nargs="*", help="mini-C source files")
    analyze_p.add_argument("--benchmark", default=None, metavar="NAME",
                          help="analyze a benchsuite program instead of "
                               "files ('all' for the whole suite)")
    analyze_p.add_argument("--env", default="wario-summaries")
    analyze_p.add_argument("--format", choices=("text", "json"),
                          default="text")

    inject_p = sub.add_parser(
        "inject",
        help="deterministic power-failure fault injection with "
             "differential crash-consistency certification",
    )
    inject_p.add_argument("--bench", action="append", default=None,
                          metavar="NAME",
                          help="benchmark to sweep (repeatable; default: "
                               "the full suite, or crc+sha with --quick)")
    inject_p.add_argument("--env", action="append", default=None,
                          metavar="NAME",
                          help="software environment to sweep (repeatable; "
                               "default: wario and ratchet)")
    inject_p.add_argument("--quick", action="store_true",
                          help="CI-sized campaign: two benchmarks, small "
                               "schedule budgets")
    inject_p.add_argument("--seed", type=int, default=0,
                          help="campaign seed for the interior-point RNG")
    inject_p.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: REPRO_JOBS or "
                               "the CPU count)")
    inject_p.add_argument("--budget", type=int, default=0, metavar="N",
                          help="cap the planned schedules per pair "
                               "(0 = unlimited)")
    inject_p.add_argument("--event-cap", type=int, default=None, metavar="N",
                          help="max targeted events per kind")
    inject_p.add_argument("--differential", action="store_true",
                          help="cross-validate the static idempotence "
                               "certifier against the campaign over the "
                               "same cells (clean matrix + seeded "
                               "mutants); --quick selects the CI-sized "
                               "cell set")
    inject_p.add_argument("--progress", action="store_true",
                          help="cross-validate the static forward-"
                               "progress certifier: observed inter-"
                               "checkpoint gaps vs. static bounds, "
                               "tightness per cell, and the starvation "
                               "cross-check; --quick selects the "
                               "CI-sized cell set")
    inject_p.add_argument("--format", choices=("text", "json"),
                          default="text")
    inject_p.add_argument("-o", "--output", default=None,
                          help="also write the JSON report to a file")

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the content-addressed compile cache"
    )
    cache_p.add_argument("action", choices=("stats", "clear"),
                         help="'stats' prints entry counts and staleness; "
                              "'clear' removes every entry")

    bench_p = sub.add_parser(
        "bench", help="measure toolchain performance, write BENCH_<rev>.json"
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="small CI-sized run (one benchmark, fig4 only)")
    bench_p.add_argument("-o", "--output", default=None,
                         help="report path (default: BENCH_<git rev>.json)")

    sub.add_parser("envs", help="list the software environments")
    return parser


def _power_from(spec):
    if spec is None or spec == "continuous":
        return None
    if spec == "trace-a":
        return trace_a()
    if spec == "trace-b":
        return trace_b()
    return FixedPeriodPower(int(spec))


def _read_sources(paths):
    sources = []
    for path in paths:
        with open(path) as handle:
            sources.append(handle.read())
    return sources


def _cmd_compile(args) -> int:
    program = iclang(_read_sources(args.sources), args.env, unroll_factor=args.unroll)
    checkpoints = sum(1 for i in program.instrs if i.opcode == "checkpoint")
    listing = disassemble(program)
    summary = (
        f"; environment: {args.env}, static checkpoints: {checkpoints}\n"
    )
    text = summary + listing + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({program.text_size} .text bytes, "
              f"{checkpoints} static checkpoints)")
    else:
        print(text)
    return 0


def _cmd_run(args) -> int:
    program = iclang(_read_sources(args.sources), args.env, unroll_factor=args.unroll)
    machine = Machine(
        program,
        war_check=args.verify_war,
        interrupt_interval=args.interrupt_interval,
    )
    try:
        stats = machine.run(
            power=_power_from(args.power), max_instructions=args.max_instructions
        )
    except EmulationError as exc:
        print(f"execution aborted: {exc}")
        return 1
    print(stats.summary())
    if stats.power_failures:
        print(f"re-executed {stats.reexecuted_cycles} cycles across "
              f"{stats.power_failures} power failures")
    if args.verify_war:
        if machine.war.clean:
            print("WAR verification: clean")
        else:
            print(f"WAR verification: {len(machine.war.violations)} violations")
            for violation in machine.war.violations[:5]:
                print(f"  {violation}")
            return 1
    if args.print_globals:
        for spec in args.print_globals.split(","):
            name, _, count = spec.partition(":")
            value = machine.read_global(name.strip(), int(count) if count else 1)
            print(f"@{name.strip()} = {value}")
    return 0


def _cmd_lint(args) -> int:
    import json

    if bool(args.sources) == bool(args.benchmark):
        print("lint: pass either source files or --benchmark NAME",
              file=sys.stderr)
        return EXIT_COMPILE_FAILED
    try:
        if args.benchmark:
            results = lint_benchmarks(args.benchmark, args.env,
                                      level=args.level, budget=args.budget)
        else:
            results = [lint_sources(_read_sources(args.sources), args.env,
                                    name=args.sources[0], level=args.level,
                                    budget=args.budget)]
    except Exception as exc:  # front/middle end rejected the program
        print(f"lint: compilation failed: {exc}", file=sys.stderr)
        return EXIT_COMPILE_FAILED
    if args.certificates:
        payload = [
            {"program": r.name, "env": r.env, "certificates": r.certificates,
             "progress": r.progress, "placement": r.placement,
             "budget": r.budget, "progress_bound": r.progress_bound}
            for r in results
        ]
        with open(args.certificates, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    diagnostics = [d for r in results for d in r.engine.diagnostics]
    if args.format == "sarif":
        print(render_sarif(diagnostics))
    elif args.format == "json":
        # Deterministic order so CI diffs are stable across runs.
        diagnostics.sort(key=lambda d: (
            d.loc.file if d.loc is not None else "",
            d.loc.line if d.loc is not None else 0,
            d.code,
        ))
        print(render_json(diagnostics))
    else:
        for result in results:
            if result.certified:
                verdict = (
                    "certified idempotent" if result.level == "full"
                    else "certified WAR-free"
                )
            else:
                verdict = result.engine.summary()
            if result.level == "full" and result.progress:
                bound = result.progress_bound
                verdict += (
                    f", progress bound {bound} cycles/region"
                    if bound is not None else ", progress unbounded"
                )
            if result.placement:
                verdict += (
                    f", {len(result.placement)} checkpoint(s) elided"
                )
            print(f"{result.name} [{result.env}]: {verdict}")
            if not result.engine.clean:
                print(result.engine.render_text())
        if args.certificates:
            print(f"wrote {args.certificates}")
    clean = all(r.certified for r in results)
    return EXIT_CLEAN if clean else EXIT_ERRORS


def _object_name(obj) -> str:
    from .ir.values import GlobalVariable

    prefix = "@" if isinstance(obj, GlobalVariable) else "%"
    return prefix + (getattr(obj, "name", "") or "?")


def _object_names(objs):
    """Sorted printable names of a summary set, or None for TOP."""
    if objs is None:
        return None
    return sorted(_object_name(o) for o in objs)


def _analyze_one(module, config):
    """(function rows, argument rows, cause rows) for one module."""
    from .analysis.summaries import compute_summaries
    from .ir.types import is_pointer
    from .transforms import optimize_module

    optimize_module(module)
    table = compute_summaries(module, alias_mode=config.alias_mode)
    functions = []
    for name in sorted(table.functions):
        summary = table.functions[name]
        functions.append({
            "function": name,
            "mod": _object_names(summary.mod),
            "ref": _object_names(summary.ref),
            "pure": summary.pure,
            "read_only": summary.read_only,
            "recursive": summary.recursive,
            "transparent": name in table.transparent,
        })
    arguments = []
    for function in module.defined_functions():
        for arg in function.args:
            if not is_pointer(arg.type):
                continue
            arguments.append({
                "function": function.name,
                "argument": arg.name,
                "points_to": _object_names(
                    table.arg_points_to.get(id(arg), frozenset())
                ),
            })
    arguments.sort(key=lambda row: (row["function"], row["argument"]))
    causes = sorted(
        {(c.code, c.function, c.detail) for c in table.causes}
    )
    return functions, arguments, causes


def _cmd_analyze(args) -> int:
    import json

    from .core.pipeline import environment
    from .frontend import compile_sources
    from .ir import verify_module

    if bool(args.sources) == bool(args.benchmark):
        print("analyze: pass either source files or --benchmark NAME",
              file=sys.stderr)
        return 2
    config = environment(args.env)
    programs = []
    if args.benchmark:
        from .benchsuite import BENCHMARKS, get_benchmark

        names = list(BENCHMARKS) if args.benchmark == "all" else [args.benchmark]
        for name in names:
            programs.append((name, [get_benchmark(name).source]))
    else:
        programs.append((args.sources[0], _read_sources(args.sources)))

    report = []
    for name, sources in programs:
        module = compile_sources(sources, name)
        verify_module(module)
        functions, arguments, causes = _analyze_one(module, config)
        report.append({
            "program": name,
            "env": config.name,
            "functions": functions,
            "arguments": arguments,
            "precision_losses": [
                {"code": code, "function": fn, "detail": detail}
                for code, fn, detail in causes
            ],
        })

    if args.format == "json":
        print(json.dumps(report, indent=2))
        return 0
    for entry in report:
        print(f"== {entry['program']} [{entry['env']}] ==")
        for row in entry["functions"]:
            tags = [
                tag for tag, on in (
                    ("pure", row["pure"]),
                    ("read-only", row["read_only"] and not row["pure"]),
                    ("recursive", row["recursive"]),
                    ("transparent", row["transparent"]),
                ) if on
            ]
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            print(f"  {row['function']}{suffix}")
            for kind in ("mod", "ref"):
                sets = row[kind]
                rendered = "TOP" if sets is None else (
                    "{" + ", ".join(sets) + "}"
                )
                print(f"    {kind}: {rendered}")
        if entry["arguments"]:
            print("  pointer arguments:")
            for row in entry["arguments"]:
                sets = row["points_to"]
                rendered = "TOP" if sets is None else (
                    "{" + ", ".join(sets) + "}"
                )
                print(f"    {row['function']}({row['argument']}) -> {rendered}")
        if entry["precision_losses"]:
            print("  precision losses:")
            for loss in entry["precision_losses"]:
                print(f"    [{loss['code']}] {loss['function']}: "
                      f"{loss['detail']}")
        else:
            print("  precision losses: none")
    return 0


def _cmd_envs(_args) -> int:
    for name, config in ENVIRONMENTS.items():
        bits = []
        if not config.instrument:
            bits.append("uninstrumented")
        else:
            bits.append(f"alias={config.alias_mode}")
            if config.loop_write_clusterer:
                bits.append(f"loop-write-clusterer(N={config.unroll_factor})")
            if config.write_clusterer:
                bits.append("write-clusterer")
            if config.expander:
                bits.append("expander")
            if config.call_summaries:
                bits.append("call-summaries")
            if config.checkpoint_elim:
                bits.append("checkpoint-elim")
            bits.append(f"spill={config.spill_checkpoint_mode}")
            bits.append(f"epilogue={config.epilogue_style}")
        print(f"{name:<22} {', '.join(bits)}")
    return 0


def _cmd_inject(args) -> int:
    if args.progress:
        return _cmd_inject_progress(args)
    if args.differential:
        return _cmd_inject_differential(args)
    from .faultinject import full_config, quick_config, run_campaign

    overrides = {"seed": args.seed, "jobs": args.jobs,
                 "max_schedules": args.budget}
    if args.event_cap is not None:
        overrides["event_cap"] = args.event_cap
    config = (quick_config if args.quick else full_config)(**overrides)
    if args.bench:
        config = _dc_replace(config, benches=tuple(args.bench))
    if args.env:
        config = _dc_replace(config, envs=tuple(args.env))
    try:
        report = run_campaign(config)
    except Exception as exc:  # compile failure, unknown bench/env, ...
        print(f"inject: campaign failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
        if args.output:
            print(f"wrote {args.output}")
    return 0 if report.certified else 1


def _cmd_inject_differential(args) -> int:
    from .faultinject import (
        full_differential_config,
        quick_differential_config,
        run_differential,
    )

    overrides = {"seed": args.seed, "jobs": args.jobs,
                 "max_schedules": args.budget}
    if args.event_cap is not None:
        overrides["event_cap"] = args.event_cap
    maker = (quick_differential_config if args.quick
             else full_differential_config)
    config = maker(**overrides)
    if args.bench or args.env:
        print("inject: --differential uses its built-in cell set; "
              "--bench/--env are ignored", file=sys.stderr)
    try:
        report = run_differential(config)
    except Exception as exc:
        print(f"inject: differential run failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
        if args.output:
            print(f"wrote {args.output}")
    return 0 if report.certified else 1


def _cmd_inject_progress(args) -> int:
    from .faultinject import (
        full_progress_config,
        quick_progress_config,
        run_progress_differential,
    )

    maker = (quick_progress_config if args.quick else full_progress_config)
    config = maker()
    if args.bench or args.env:
        cells = config.cells
        if args.bench:
            cells = tuple(c for c in cells if c[0] in set(args.bench))
        if args.env:
            cells = tuple(c for c in cells if c[1] in set(args.env))
        config = _dc_replace(config, cells=cells)
    try:
        report = run_progress_differential(config)
    except Exception as exc:
        print(f"inject: progress differential failed: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
        if args.output:
            print(f"wrote {args.output}")
    return 0 if report.certified else 1


def _dc_replace(config, **kwargs):
    from dataclasses import replace

    return replace(config, **kwargs)


def _cmd_cache(args) -> int:
    from .cache import get_cache

    cache = get_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    print(cache.report().render())
    return 0


def _cmd_bench(args) -> int:
    from .bench import render_report, run_bench

    path = run_bench(quick=args.quick, output=args.output)
    print(render_report(path))
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "inject":
        return _cmd_inject(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_envs(args)


if __name__ == "__main__":
    raise SystemExit(main())
