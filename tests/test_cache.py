"""The content-addressed compile cache: keys, hits, invalidation,
corruption handling, and cross-process reuse."""

import os
import pickle
import subprocess
import sys
import zlib

import pytest

from repro import iclang
from repro.cache import (
    COMPILER_VERSION_TAG,
    CompileCache,
    cache_enabled,
    compile_key,
    lint_key,
    run_key,
    version_tag,
)
from repro.core.pipeline import ENVIRONMENTS

SRC = """
int acc = 0;
int main() {
    for (int i = 0; i < 10; i = i + 1) { acc = acc + i; }
    return acc;
}
"""

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------


def test_compile_key_is_stable():
    config = ENVIRONMENTS["wario"]
    assert compile_key(SRC, config) == compile_key(SRC, config)


def test_compile_key_varies_with_inputs():
    wario = ENVIRONMENTS["wario"]
    keys = {
        compile_key(SRC, wario),
        compile_key(SRC + " ", wario),                 # source change
        compile_key(SRC, ENVIRONMENTS["ratchet"]),     # env change
        compile_key(SRC, wario, name="other"),         # name change
        compile_key(SRC, wario, verify_static=True),   # flag change
    }
    assert len(keys) == 5


def test_run_key_covers_war_check_and_power():
    pk = compile_key(SRC, ENVIRONMENTS["wario"])
    base = run_key(pk, "continuous", False, 1000, "costs")
    assert base == run_key(pk, "continuous", False, 1000, "costs")
    assert base != run_key(pk, "continuous", True, 1000, "costs")
    assert base != run_key(pk, "fixed-50000", False, 1000, "costs")
    assert base != run_key(pk, "continuous", False, 2000, "costs")


def test_key_kind_prefixes():
    config = ENVIRONMENTS["wario"]
    assert compile_key(SRC, config).startswith("program-")
    assert run_key("p", "continuous", False, 1, "c").startswith("run-")
    assert lint_key(SRC, config).startswith("lint-")


def test_version_tag_mixes_manual_tag_and_fingerprint():
    tag = version_tag()
    assert tag.startswith(COMPILER_VERSION_TAG + "+")
    assert len(tag) > len(COMPILER_VERSION_TAG) + 1


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = CompileCache(str(tmp_path))
    assert cache.get("program-xyz") is None
    cache.put("program-xyz", {"payload": 1})
    assert cache.get("program-xyz") == {"payload": 1}
    assert cache.misses == 1
    assert cache.hits == 1
    assert cache.stores == 1


def test_cache_persists_across_instances(tmp_path):
    CompileCache(str(tmp_path)).put("run-abc", [1, 2, 3])
    fresh = CompileCache(str(tmp_path))
    assert fresh.get("run-abc") == [1, 2, 3]


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = CompileCache(str(tmp_path))
    cache.put("program-bad", "payload")
    path = os.path.join(str(tmp_path), "program-bad.pkl")
    with open(path, "wb") as handle:
        handle.write(b"not a pickle at all")
    fresh = CompileCache(str(tmp_path))
    assert fresh.get("program-bad") is None
    assert not os.path.exists(path)


def test_clear_removes_everything(tmp_path):
    cache = CompileCache(str(tmp_path))
    cache.put("program-a", 1)
    cache.put("run-b", 2)
    assert cache.clear() == 2
    assert CompileCache(str(tmp_path)).get("program-a") is None


def test_report_counts_kinds_and_staleness(tmp_path):
    cache = CompileCache(str(tmp_path))
    cache.put("program-a", 1)
    cache.put("run-b", 2)
    # forge an entry written by an older toolchain
    stale = {"tag": "old-toolchain", "kind": "program", "payload": 3}
    with open(os.path.join(str(tmp_path), "program-old.pkl"), "wb") as handle:
        handle.write(zlib.compress(pickle.dumps(stale)))
    report = cache.report()
    assert report.entries == 3
    assert report.stale == 1
    assert report.by_kind == {"program": 2, "run": 1}


def test_cache_enabled_env_switch(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert not cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert not cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert cache_enabled()
    monkeypatch.delenv("REPRO_CACHE")
    assert cache_enabled()


# ---------------------------------------------------------------------------
# integration with iclang
# ---------------------------------------------------------------------------


def test_iclang_round_trips_through_cache(tmp_path):
    cache = CompileCache(str(tmp_path))
    first = iclang(SRC, "wario", cache=cache)
    assert first.cache_key.startswith("program-")
    second = iclang(SRC, "wario", cache=cache)
    assert second is first            # in-memory layer returns the object
    fresh = CompileCache(str(tmp_path))
    third = iclang(SRC, "wario", cache=fresh)
    assert third is not first         # loaded from disk
    assert third.instrs is not first.instrs
    assert [str(i) for i in third.instrs] == [str(i) for i in first.instrs]
    assert third.text_size == first.text_size
    assert third.initial_memory == first.initial_memory
    assert third.cache_key == first.cache_key


def test_cached_program_runs_identically(tmp_path):
    from repro import Machine

    cache = CompileCache(str(tmp_path))
    original = iclang(SRC, "wario", cache=cache)
    reloaded = CompileCache(str(tmp_path)).get(original.cache_key)
    s1 = Machine(original, war_check=True).run()
    s2 = Machine(reloaded, war_check=True).run()
    assert (s1.instructions, s1.cycles, s1.checkpoints) == (
        s2.instructions, s2.cycles, s2.checkpoints
    )


def test_unroll_factor_changes_the_key(tmp_path):
    cache = CompileCache(str(tmp_path))
    a = iclang(SRC, "wario", unroll_factor=2, cache=cache)
    b = iclang(SRC, "wario", unroll_factor=4, cache=cache)
    assert a.cache_key != b.cache_key


def test_cache_false_bypasses_store(tmp_path):
    a = iclang(SRC, "wario", cache=False)
    b = iclang(SRC, "wario", cache=False)
    assert a is not b


def test_cross_process_reuse(tmp_path):
    """A program compiled here is a cache hit in a different process."""
    cache = CompileCache(str(tmp_path))
    program = iclang(SRC, "wario", name="xproc", cache=cache)
    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.cache import CompileCache\n"
        "cache = CompileCache(sys.argv[2])\n"
        "p = cache.get(sys.argv[3])\n"
        "assert p is not None, 'expected a cross-process cache hit'\n"
        "print(p.text_size)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, REPO_SRC, str(tmp_path), program.cache_key],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert int(proc.stdout.strip()) == program.text_size


def test_concurrent_writers_one_winner_no_torn_reads(tmp_path):
    """Processes racing on the same key: atomic replace means every
    reader observes one of the complete payloads byte-for-byte — never a
    torn or interleaved entry — and no temp files leak.

    This is the property the pipeline server's shared artifact layer
    leans on: its pool workers all write through one directory.
    """
    key = "program-race"
    writer = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.cache import CompileCache\n"
        "cache = CompileCache(sys.argv[2])\n"
        "tag = int(sys.argv[3])\n"
        "payload = bytes([tag]) * 65536\n"
        "for _ in range(25):\n"
        "    cache.put(sys.argv[4], payload)\n"
        "print('done')\n"
    )
    reader = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.cache import CompileCache\n"
        "ok = 0\n"
        "for _ in range(50):\n"
        "    cache = CompileCache(sys.argv[2])\n"   # no memo: disk every time
        "    payload = cache.get(sys.argv[3])\n"
        "    if payload is None:\n"
        "        continue\n"
        "    assert len(payload) == 65536, f'torn read: {len(payload)}'\n"
        "    assert len(set(payload)) == 1, 'interleaved writers'\n"
        "    ok += 1\n"
        "print(ok)\n"
    )
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", writer, REPO_SRC, str(tmp_path),
             str(tag), key],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for tag in (1, 2, 3)
    ]
    readers = [
        subprocess.Popen(
            [sys.executable, "-c", reader, REPO_SRC, str(tmp_path), key],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(2)
    ]
    for proc in writers + readers:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
    # one winner on disk, intact, from one of the writers
    final = CompileCache(str(tmp_path)).get(key)
    assert len(final) == 65536
    assert set(final) in ({1}, {2}, {3})
    # atomic replace cleaned up after itself
    leftovers = [f for f in os.listdir(str(tmp_path)) if f.endswith(".tmp")]
    assert leftovers == []


def test_live_counters_and_report_dict(tmp_path):
    cache = CompileCache(str(tmp_path))
    cache.get("program-absent")
    cache.put("program-a", 1)
    cache.get("program-a")
    report = cache.report()
    assert (report.hits, report.misses, report.stores) == (1, 1, 1)
    assert "1 hits, 1 misses, 1 stores" in report.render()
    payload = report.to_dict()
    assert payload["hits"] == 1
    assert payload["misses"] == 1
    assert payload["stores"] == 1
    assert payload["hit_rate"] == 0.5
    assert payload["by_kind"] == {"program": 1}
    assert payload["directory"] == cache.directory


def test_analyze_key_is_distinct_and_stable():
    from repro.cache import analyze_key

    config = ENVIRONMENTS["wario-summaries"]
    key = analyze_key(SRC, config)
    assert key.startswith("analyze-")
    assert key == analyze_key(SRC, config)
    assert key != analyze_key(SRC + " ", config)
    assert key != analyze_key(SRC, config, name="other")
    assert key != lint_key(SRC, config)


def test_lint_results_are_cached(tmp_path):
    from repro.core.lint import lint_sources

    cache = CompileCache(str(tmp_path))
    first = lint_sources(SRC, "wario", cache=cache)
    assert first.certified
    stores = cache.stores
    second = lint_sources(SRC, "wario", cache=cache)
    assert second is first
    assert cache.stores == stores     # pure hit, nothing re-verified
    reloaded = lint_sources(SRC, "wario", cache=CompileCache(str(tmp_path)))
    assert reloaded.certified == first.certified
    assert reloaded.name == first.name
