"""Tests for the volatile-data caching extension (§7): block-local
store-to-load forwarding and dead-store elimination."""

from dataclasses import replace

from repro import Machine, iclang
from repro.core import environment, insert_checkpoints
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.instructions import Load, Store
from repro.transforms import cache_volatile_data, optimize_module


def _counts(function):
    loads = sum(1 for i in function.instructions() if isinstance(i, Load))
    stores = sum(1 for i in function.instructions() if isinstance(i, Store))
    return loads, stores


# hand-unrolled scratch-buffer code: written then immediately re-read in
# the same straight-line region (classic fixed-point DSP style)
SCRATCH = """
unsigned int scratch[4];
unsigned int out;
int main(void) {
    unsigned int x = 17;
    scratch[0] = x * 3;
    scratch[1] = x * 5;
    scratch[2] = scratch[0] + scratch[1];
    scratch[3] = scratch[2] ^ x;
    out = scratch[2] + scratch[3];
    return 0;
}
"""
SCRATCH_EXPECTED = (17 * 3 + 17 * 5) + ((17 * 3 + 17 * 5) ^ 17)


class TestForwarding:
    def test_loads_forwarded(self):
        m = compile_source(SCRATCH)
        optimize_module(m)
        loads_before, _ = _counts(m.main)
        changed = cache_volatile_data(m)
        loads_after, _ = _counts(m.main)
        assert changed > 0
        assert loads_after < loads_before
        verify_module(m)

    def test_semantics_preserved(self):
        cfg = replace(environment("wario"), name="wario-vc", volatile_cache=True)
        machine = Machine(iclang(SCRATCH, cfg), war_check=True)
        machine.run()
        assert machine.read_global("out") == SCRATCH_EXPECTED
        assert machine.war.clean

    def test_forwarding_removes_war_material(self):
        # the scratch loads anchored WARs (read scratch[2] then... no:
        # forwarding removes loads entirely, so the checkpoint inserter
        # sees fewer violations)
        m1 = compile_source(SCRATCH)
        optimize_module(m1)
        base = insert_checkpoints(m1)
        m2 = compile_source(SCRATCH)
        optimize_module(m2)
        cache_volatile_data(m2)
        cached = insert_checkpoints(m2)
        assert cached <= base

    def test_aliasing_store_blocks_forwarding(self):
        src = """
        unsigned int a[8]; unsigned int out;
        void mix(unsigned int *p, int i, int j) {
            p[i] = 11;
            p[j] = 22;       /* may alias p[i]: kills the forward */
            out = p[i];
        }
        int main(void) { mix(a, 3, 3); return 0; }
        """
        m = compile_source(src)
        # no optimize: keep mix out-of-line and unsimplified
        cache_volatile_data(m)
        verify_module(m)
        machine = Machine(iclang(src, "plain"), war_check=False)
        machine.run()
        assert machine.read_global("out") == 22

    def test_checkpoint_is_a_region_boundary(self):
        from repro.ir.instructions import Checkpoint, CKPT_MIDDLE_END

        m = compile_source(SCRATCH)
        optimize_module(m)
        # place a checkpoint between every instruction: nothing forwards
        for block in m.main.blocks:
            for idx in range(len(block.instructions) - 1, 0, -1):
                block.insert(idx, Checkpoint(CKPT_MIDDLE_END))
        assert cache_volatile_data(m) == 0

    def test_narrow_store_not_forwarded_to_wide_load(self):
        src = """
        unsigned char b[4]; unsigned int out;
        int main(void) {
            b[0] = 0xAA;
            out = b[0] + b[1];
            return 0;
        }
        """
        m = compile_source(src)
        optimize_module(m)
        cache_volatile_data(m)
        verify_module(m)
        machine = Machine(iclang(src, "plain"), war_check=False)
        machine.run()
        assert machine.read_global("out") == 0xAA


class TestDeadStores:
    def test_overwritten_store_removed(self):
        src = """
        unsigned int g; unsigned int out;
        int main(void) {
            g = 1;
            g = 2;
            out = g;
            return 0;
        }
        """
        m = compile_source(src)
        optimize_module(m)
        _, stores_before = _counts(m.main)
        cache_volatile_data(m)
        _, stores_after = _counts(m.main)
        assert stores_after < stores_before
        machine = Machine(iclang(src, "plain"))
        machine.run()
        assert machine.read_global("g") == 2

    def test_read_between_keeps_store(self):
        src = """
        unsigned int g; unsigned int out;
        int main(void) {
            g = 1;
            out = g;
            g = 2;
            return 0;
        }
        """
        m = compile_source(src)
        optimize_module(m)
        cache_volatile_data(m)
        machine = Machine(iclang(src, "plain"))
        machine.run()
        assert machine.read_global("out") == 1
        assert machine.read_global("g") == 2

    def test_benchmarks_unaffected_by_vc(self):
        # the suite's hot loops keep data live across regions, so the
        # extension must be a safe no-op there
        from repro.benchsuite import BENCHMARKS, verify_outputs

        cfg = replace(environment("wario"), name="wario-vc2", volatile_cache=True)
        bench = BENCHMARKS["crc"]
        machine = Machine(iclang(bench.source, cfg, name="crc-vc"), war_check=True)
        machine.run(max_instructions=bench.max_instructions)
        verify_outputs(bench, machine)
        assert machine.war.clean
