"""Instruction-level emulator semantics, driven through tiny compiled
programs that isolate particular machine behaviours."""

import pytest

from helpers import compile_and_run

from repro import Machine, iclang
from repro.emulator import CostModel

M32 = 0xFFFFFFFF


class TestShifts:
    @pytest.mark.parametrize(
        "amount,expected",
        [(0, 1), (1, 2), (31, 0x80000000)],
    )
    def test_shift_left(self, amount, expected):
        src = f"""
        unsigned int r; unsigned int amt = {amount};
        int main(void) {{ r = 1 << (int)amt; return 0; }}
        """
        machine = compile_and_run(src)
        assert machine.read_global("r") == expected

    def test_variable_shift_uses_register(self):
        src = """
        unsigned int r; unsigned int v = 0xF0F0F0F0;
        int shifts[4] = { 1, 4, 8, 28 };
        int main(void) {
            int i; unsigned int acc = 0;
            for (i = 0; i < 4; i++) { acc = acc ^ (v >> shifts[i]); }
            r = acc;
            return 0;
        }
        """
        machine = compile_and_run(src)
        expected = 0
        for s in (1, 4, 8, 28):
            expected ^= 0xF0F0F0F0 >> s
        assert machine.read_global("r") == expected


class TestDivision:
    def test_division_by_zero_yields_zero(self):
        # ARM semantics (SDIV/UDIV with DIV_0_TRP clear): result is 0
        src = """
        unsigned int r; unsigned int q; unsigned int zero = 0;
        int main(void) {
            r = 100 / zero;
            q = 100 % (int)zero;
            return 0;
        }
        """
        machine = compile_and_run(src)
        assert machine.read_global("r") == 0
        assert machine.read_global("q") == 100  # 100 - 0*0

    def test_int_min_division(self):
        src = """
        unsigned int r; int big = -2147483647 - 1;
        int main(void) { r = (unsigned int)(big / 2); return 0; }
        """
        machine = compile_and_run(src)
        assert machine.read_global("r") == (-(1 << 30)) & M32


class TestMemoryWidths:
    def test_byte_halfword_word_stores(self):
        src = """
        unsigned char b; unsigned short h; unsigned int w;
        unsigned int rb; unsigned int rh; unsigned int rw;
        int main(void) {
            b = (unsigned char)0x1FF;
            h = (unsigned short)0x1FFFF;
            w = 0xDEADBEEF;
            rb = b; rh = h; rw = w;
            return 0;
        }
        """
        machine = compile_and_run(src)
        assert machine.read_global("rb") == 0xFF
        assert machine.read_global("rh") == 0xFFFF
        assert machine.read_global("rw") == 0xDEADBEEF

    def test_little_endian_layout(self):
        src = """
        unsigned int w = 0x04030201;
        unsigned int r;
        int main(void) {
            unsigned char *p = (unsigned char *)0;
            r = 0;
            return 0;
        }
        """
        machine = compile_and_run(src)
        addr = machine.program.global_addr["w"]
        assert machine.memory[addr : addr + 4] == bytes([1, 2, 3, 4])


class TestCheckpointRuntime:
    def test_double_buffering_survives_failure_right_after_checkpoint(self):
        # with instruction-granular failures, a checkpoint is atomic: the
        # active buffer always holds a complete snapshot
        src = """
        unsigned int g;
        int main(void) {
            int i;
            for (i = 0; i < 40; i++) { g = g + 1; }
            return 0;
        }
        """
        program = iclang(src, "ratchet")
        machine = Machine(program, cost_model=CostModel(boot_cycles=10))
        from repro.emulator import FixedPeriodPower
        stats = machine.run(power=FixedPeriodPower(200))
        assert machine.read_global("g") == 40
        assert stats.power_failures > 0

    def test_checkpoint_cost_charged(self):
        src = """
        unsigned int g;
        int main(void) { g = g + 1; return 0; }
        """
        cheap = Machine(
            iclang(src, "ratchet"), cost_model=CostModel(checkpoint_cycles=1)
        ).run()
        pricey = Machine(
            iclang(src, "ratchet"), cost_model=CostModel(checkpoint_cycles=500)
        ).run()
        assert pricey.cycles > cheap.cycles
        assert pricey.checkpoints == cheap.checkpoints

    def test_taken_branches_cost_refill(self):
        src = """
        unsigned int g;
        int main(void) {
            int i;
            for (i = 0; i < 100; i++) { g = g + 1; }
            return 0;
        }
        """
        no_refill = Machine(
            iclang(src, "plain"), cost_model=CostModel(pipeline_refill=0)
        ).run()
        refill = Machine(
            iclang(src, "plain"), cost_model=CostModel(pipeline_refill=5)
        ).run()
        assert refill.cycles > no_refill.cycles
        assert refill.instructions == no_refill.instructions


class TestStackDiscipline:
    def test_nested_calls_restore_registers(self):
        src = """
        unsigned int r;
        int leaf(int x) {
            int i; int acc = x;
            for (i = 0; i < 45; i++) { acc = acc * 5 + 3; acc = acc ^ (acc >> 7); }
            return acc;
        }
        int mid(int x) {
            int a = leaf(x);
            int b = leaf(x + 1);
            return a ^ b;
        }
        int main(void) {
            int keep = 1234567;
            int got = mid(3);
            r = (unsigned int)(keep + got);
            return 0;
        }
        """
        def leaf(x):
            acc = x
            for _ in range(45):
                acc = (acc * 5 + 3) & M32
                signed = acc - (1 << 32) if acc >= 1 << 31 else acc
                acc = (acc ^ (signed >> 7)) & M32  # C: int >> is arithmetic
            return acc

        expected = (1234567 + (leaf(3) ^ leaf(4))) & M32
        for env in ("plain", "wario"):
            machine = compile_and_run(src, env=env)
            assert machine.read_global("r") == expected, env

    def test_recursion_depth_stack(self):
        src = """
        unsigned int r;
        unsigned int down(int n) {
            if (n == 0) return 7;
            return down(n - 1) + 1;
        }
        int main(void) { r = down(60); return 0; }
        """
        machine = compile_and_run(src, env="wario", war_check=True)
        assert machine.read_global("r") == 67
        assert machine.war.clean
