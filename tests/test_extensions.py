"""Tests for the implemented §6 extensions: region-size bounding and
Just-In-Time checkpointing (with its failure mode)."""

from dataclasses import replace

import pytest

from repro import FixedPeriodPower, Machine, iclang
from repro.core import environment
from repro.core.region_bound import bound_region_sizes
from repro.emulator import CostModel, NoForwardProgress, SuddenDropPower
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.instructions import CKPT_REGION_BOUND

LONG_LOOP = """
unsigned int a[400]; unsigned int out;
int main(void) {
    int i; unsigned int s = 0;
    for (i = 0; i < 400; i++) { a[i] = (unsigned int)(i * 7); }
    for (i = 0; i < 400; i++) { s = s + a[i]; }
    out = s;
    return 0;
}
"""
LONG_EXPECTED = sum(i * 7 for i in range(400)) & 0xFFFFFFFF


class TestRegionBounding:
    def _bounded_config(self, budget):
        return replace(
            environment("wario"), name=f"wario-rb{budget}", max_region_cycles=budget
        )

    def test_pass_inserts_region_bound_checkpoints(self):
        module = compile_source(LONG_LOOP)
        from repro.transforms import optimize_module

        optimize_module(module)
        inserted = bound_region_sizes(module, 100)
        assert inserted > 0
        verify_module(module)

    def test_max_region_shrinks(self):
        base = Machine(iclang(LONG_LOOP, "wario")).run()
        bounded = Machine(iclang(LONG_LOOP, self._bounded_config(150))).run()
        assert bounded.region_max < base.region_max
        assert bounded.checkpoint_causes.get(CKPT_REGION_BOUND, 0) > 0

    def test_restores_forward_progress(self):
        cm = CostModel(boot_cycles=50)
        with pytest.raises(NoForwardProgress):
            Machine(iclang(LONG_LOOP, "wario"), cost_model=cm).run(
                power=FixedPeriodPower(400), max_instructions=5_000_000
            )
        machine = Machine(
            iclang(LONG_LOOP, self._bounded_config(150)), cost_model=cm
        )
        machine.run(power=FixedPeriodPower(400))
        assert machine.read_global("out") == LONG_EXPECTED

    def test_results_unchanged_and_war_free(self):
        machine = Machine(
            iclang(LONG_LOOP, self._bounded_config(200)), war_check=True
        )
        machine.run()
        assert machine.read_global("out") == LONG_EXPECTED
        assert machine.war.clean

    def test_tighter_budget_more_checkpoints(self):
        loose = Machine(iclang(LONG_LOOP, self._bounded_config(2000))).run()
        tight = Machine(iclang(LONG_LOOP, self._bounded_config(150))).run()
        assert tight.checkpoints > loose.checkpoints
        assert tight.region_max <= loose.region_max

    def test_invalid_budget_rejected(self):
        module = compile_source(LONG_LOOP)
        with pytest.raises(ValueError):
            bound_region_sizes(module, 0)


SIMPLE_INCREMENT = """
unsigned int a[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) { a[i] = a[i] + 1; }
    return 0;
}
"""


class TestJITCheckpointing:
    CM = CostModel(boot_cycles=50)

    def test_correct_on_predictable_power(self):
        machine = Machine(
            iclang(SIMPLE_INCREMENT, "plain"),
            cost_model=self.CM,
            jit_checkpoint_threshold=120,
        )
        stats = machine.run(power=FixedPeriodPower(400))
        assert machine.read_global("a", 64) == [1] * 64
        assert stats.checkpoint_causes.get("jit", 0) > 0

    def test_corrupts_on_unpredictable_power(self):
        """Paper §6: 'even one missed checkpoint can cause a WAR
        violation, corrupting the system's memory'."""
        machine = Machine(
            iclang(SIMPLE_INCREMENT, "plain"),
            cost_model=self.CM,
            jit_checkpoint_threshold=120,
        )
        machine.run(power=SuddenDropPower(400, drop_every=3, drop_cycles=160))
        values = machine.read_global("a", 64)
        assert values != [1] * 64
        assert max(values) > 1  # double increments: the WAR corruption

    def test_wario_survives_the_same_supply(self):
        machine = Machine(iclang(SIMPLE_INCREMENT, "wario"), cost_model=self.CM)
        machine.run(power=SuddenDropPower(400, drop_every=3, drop_cycles=160))
        assert machine.read_global("a", 64) == [1] * 64

    def test_sudden_drop_validation(self):
        with pytest.raises(ValueError):
            SuddenDropPower(100, drop_cycles=100)

    def test_no_jit_without_power_supply(self):
        machine = Machine(
            iclang(SIMPLE_INCREMENT, "plain"),
            jit_checkpoint_threshold=120,
        )
        stats = machine.run()  # continuous: the comparator never fires
        assert stats.checkpoint_causes.get("jit", 0) == 0
