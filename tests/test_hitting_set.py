"""Placement tie-breaking of the greedy hitting set (paper §3.1.2).

Pins the rule the PDG Checkpoint Inserter relies on: among candidate
positions with equal coverage-per-cost, the position *directly before a
WAR write* wins (Ratchet's natural location — usually the most rarely
executed choice when the write is guarded).  The rule is implemented as
a 0.999 cost scaling of write-adjacent positions in
``insert_function_checkpoints``; these tests pin both the mechanism and
the end-to-end placement it produces.
"""

import pytest

from repro.core import environment, greedy_hitting_set
from repro.core.pipeline import run_middle_end
from repro.frontend import compile_sources
from repro.ir.instructions import Checkpoint, Store
from repro.ir.values import GlobalVariable

#: the preference factor insert_function_checkpoints applies to the
#: position directly before each WAR write
PREFERRED_SCALE = 0.999


def _inserter_cost(preferred):
    """The inserter's cost function: loop-depth base (1.0 here — all
    positions at depth zero) scaled down for write-adjacent slots."""
    return lambda key: 1.0 * (PREFERRED_SCALE if key in preferred else 1.0)


class TestPreWriteTieBreak:
    def test_preferred_position_wins_among_equal_coverage(self):
        # One WAR, three same-depth candidate slots; the middle one is
        # directly before the write.  Coverage is equal (each slot hits
        # the single requirement), so only the 0.999 preference decides.
        reqs = [[("entry", 1), ("entry", 2), ("entry", 3)]]
        chosen = greedy_hitting_set(reqs, _inserter_cost({("entry", 2)}))
        assert chosen == [("entry", 2)]

    def test_without_preference_stable_order_decides(self):
        # Control: with a flat cost the deterministic tie-break (largest
        # stable key) picks the last slot instead — proving the
        # preference, not the tie-break, placed the checkpoint above.
        reqs = [[("entry", 1), ("entry", 2), ("entry", 3)]]
        assert greedy_hitting_set(reqs, _inserter_cost(set())) == [
            ("entry", 3)
        ]

    def test_preference_does_not_override_coverage(self):
        # Coverage-per-cost still dominates: a shared slot hitting both
        # WARs beats a preferred slot hitting only one (2/1.0 > 1/0.999).
        reqs = [
            [("entry", 1), ("entry", 4)],
            [("entry", 2), ("entry", 4)],
        ]
        chosen = greedy_hitting_set(
            reqs, _inserter_cost({("entry", 1), ("entry", 2)})
        )
        assert chosen == [("entry", 4)]

    def test_preference_does_not_override_loop_depth(self):
        # A write-adjacent slot inside a loop (cost 10 * 0.999) still
        # loses to an equal-coverage slot outside it (cost 1).
        reqs = [[("loop", 7), ("exit", 0)]]
        cost = lambda key: (
            10.0 * PREFERRED_SCALE if key == ("loop", 7) else 1.0
        )
        assert greedy_hitting_set(reqs, cost) == [("exit", 0)]


SINGLE_WAR_SRC = """
unsigned int g;
int main(void) {
    unsigned int t = g;
    unsigned int a = t + 1;
    unsigned int b = a * 2;
    unsigned int c = b + t;
    g = c;
    return 0;
}
"""


def _stores_to(block, name):
    return [
        i for i, instr in enumerate(block.instructions)
        if isinstance(instr, Store)
        and isinstance(instr.pointer, GlobalVariable)
        and instr.pointer.name == name
    ]


def test_checkpoint_lands_directly_before_war_write():
    """End-to-end: a straight-line read-modify-write of @g admits every
    slot between the load and the store at equal depth; the inserter
    must pick the slot immediately before the store."""
    module = compile_sources([SINGLE_WAR_SRC], "prog")
    run_middle_end(module, environment("r-pdg"))
    (main,) = [f for f in module.defined_functions() if f.name == "main"]
    placements = []
    for block in main.blocks:
        instrs = block.instructions
        for idx, instr in enumerate(instrs):
            if isinstance(instr, Checkpoint):
                placements.append((block, idx))
    assert len(placements) == 1, "one WAR, one checkpoint"
    block, idx = placements[0]
    store_indices = _stores_to(block, "g")
    assert store_indices, "the WAR store must share the checkpoint's block"
    assert idx + 1 in store_indices, (
        "checkpoint must sit directly before the store to @g, not at "
        f"index {idx} with stores at {store_indices}"
    )
