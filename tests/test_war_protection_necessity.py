"""Negative tests: the protection mechanisms are *necessary*, not just
present.  Each test removes one ingredient of the WARio/Ratchet scheme
and shows the emulator's verifier catching the resulting corruption
hazard — mirroring how the paper's emulator validated the system
(§5.1.1, WAR Violation Absence Verification).
"""

from dataclasses import replace

from repro import Machine, iclang
from repro.core import compile_ir, environment, run_middle_end
from repro.backend import compile_to_program
from repro.frontend import compile_source

SRC = """
unsigned int a[24]; unsigned int total;
int main(void) {
    int i; unsigned int t = 0;
    for (i = 0; i < 24; i++) {
        a[i] = a[i] + 3;
        t = t + a[i];
    }
    total = t;
    return 0;
}
"""

SRC_CALLS = """
unsigned int g;
unsigned int churn(unsigned int x) {
    int i;
    for (i = 0; i < 30; i++) { x = x * 3 + 1; x = x ^ (x >> 4); }
    return x;
}
int main(void) {
    int k;
    for (k = 0; k < 8; k++) { g = churn(g + (unsigned int)k); }
    return 0;
}
"""


def test_middle_end_checkpoints_are_necessary():
    """Without the checkpoint inserter, the loop's WARs are naked."""
    machine = Machine(iclang(SRC, "plain"), war_check=True)
    machine.run()
    assert not machine.war.clean
    assert len(machine.war.violations) >= 24


def test_full_instrumentation_is_sufficient():
    for env in ("ratchet", "wario"):
        machine = Machine(iclang(SRC, env), war_check=True)
        machine.run()
        assert machine.war.clean, env


def test_unprotected_epilogue_is_a_hazard_under_interrupts():
    """Middle-end checkpoints alone do not protect the epilogue: an
    interrupt arriving after the pop-reads writes the just-read stack
    slots.  The pop converter / epilog optimizer close exactly this."""
    module = compile_source(SRC_CALLS)
    config = environment("r-pdg")
    run_middle_end(module, config)
    # Lower with middle-end checkpoints and entry checkpoints, but a
    # *plain* (unprotected) epilogue.
    program = compile_to_program(
        module,
        spill_checkpoint_mode="basic",
        epilogue_style="plain",
        entry_checkpoints=True,
    )
    machine = Machine(program, war_check=True, interrupt_interval=37)
    machine.run()
    assert not machine.war.clean, (
        "an unprotected epilogue must be flagged under interrupt pressure"
    )


def test_protected_epilogues_survive_interrupts():
    for env in ("ratchet", "wario"):
        machine = Machine(iclang(SRC_CALLS, env), war_check=True, interrupt_interval=37)
        machine.run()
        assert machine.war.clean, env


def test_entry_checkpoints_are_necessary():
    """The middle end skips WARs whose read and write are separated by a
    call, because the callee's entry checkpoint breaks them.  Removing
    the entry checkpoints reopens exactly those cross-call WARs."""
    src = """
    unsigned int g; unsigned int out;
    void poke(void) {
        /* write-only on g: no internal WAR, hence no internal
           checkpoint precedes the store */
        int i;
        unsigned int acc = 0;
        for (i = 0; i < 30; i++) {
            acc = acc * 5 + 7;
            acc = acc ^ (acc >> 3);
            acc = acc - (acc >> 5);
            acc = acc | 1;
            acc = acc + (acc % 13);
            acc = acc ^ 0xABCD;
        }
        g = acc;
    }
    int main(void) {
        unsigned int x = g;    /* read g ... */
        poke();                /* ... callee writes g: WAR across the call */
        out = x + 1;
        return 0;
    }
    """
    module = compile_source(src)
    config = environment("r-pdg")
    run_middle_end(module, config)
    program = compile_to_program(
        module,
        spill_checkpoint_mode="basic",
        epilogue_style="ratchet",
        entry_checkpoints=False,   # <- removed ingredient
    )
    machine = Machine(program, war_check=True)
    machine.run()
    assert not machine.war.clean

    # with the entry checkpoints restored, the same build is clean
    program = compile_to_program(
        module,
        spill_checkpoint_mode="basic",
        epilogue_style="ratchet",
        entry_checkpoints=True,
    )
    machine = Machine(program, war_check=True)
    machine.run()
    assert machine.war.clean


def test_results_correct_even_when_unprotected_under_continuous_power():
    """The hazards above only bite on power failure/interrupts; under
    continuous power the unprotected build still computes correctly —
    which is exactly why WAR bugs are so easy to ship."""
    machine = Machine(iclang(SRC, "plain"), war_check=False)
    machine.run()
    assert machine.read_global("a", 24) == [3] * 24
    assert machine.read_global("total") == 72
