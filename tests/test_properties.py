"""Property-based tests (hypothesis): randomly generated programs are
compiled under multiple environments and must (a) agree with a Python
model, (b) agree with each other, and (c) be WAR-free when instrumented."""

from hypothesis import given, settings, strategies as st

from repro import Machine, iclang
from repro.core import greedy_hitting_set

M32 = 0xFFFFFFFF

# ---------------------------------------------------------------------------
# random straight-line expression programs
# ---------------------------------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def straightline_program(draw):
    """A random sequence of unsigned scalar assignments over 4 globals."""
    names = ["g0", "g1", "g2", "g3"]
    lines = []
    model_lines = []
    for _ in range(draw(st.integers(2, 10))):
        target = draw(st.sampled_from(names))
        a = draw(st.sampled_from(names + [str(draw(st.integers(0, 1000)))]))
        b = draw(st.sampled_from(names + [str(draw(st.integers(1, 255)))]))
        op = draw(st.sampled_from(_BINOPS))
        lines.append(f"{target} = {a} {op} {b};")
        model_lines.append((target, a, op, b))
    decls = "".join(f"unsigned int {n};" for n in names)
    init = "".join(f"{n} = {i * 17 + 1};" for i, n in enumerate(names))
    src = f"""
    {decls}
    int main(void) {{
        {init}
        {" ".join(lines)}
        return 0;
    }}
    """
    return src, model_lines


def _model_eval(model_lines):
    env = {f"g{i}": i * 17 + 1 for i in range(4)}

    def value(token):
        return env[token] if token in env else int(token)

    ops = {
        "+": lambda a, b: (a + b) & M32,
        "-": lambda a, b: (a - b) & M32,
        "*": lambda a, b: (a * b) & M32,
        "&": lambda a, b: a & b,
        "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
    }
    for target, a, op, b in model_lines:
        env[target] = ops[op](value(a), value(b))
    return env


@settings(max_examples=40, deadline=None)
@given(straightline_program())
def test_straightline_matches_model(case):
    src, model_lines = case
    expected = _model_eval(model_lines)
    machine = Machine(iclang(src, "plain"), war_check=False)
    machine.run()
    for name, want in expected.items():
        assert machine.read_global(name) == want


@settings(max_examples=15, deadline=None)
@given(straightline_program(), st.sampled_from(["ratchet", "wario"]))
def test_straightline_environment_equivalence(case, env):
    src, model_lines = case
    expected = _model_eval(model_lines)
    machine = Machine(iclang(src, env), war_check=True)
    machine.run()
    assert machine.war.clean
    for name, want in expected.items():
        assert machine.read_global(name) == want


# ---------------------------------------------------------------------------
# random in-place array loops (the Loop Write Clusterer's habitat)
# ---------------------------------------------------------------------------


@st.composite
def array_loop_program(draw):
    n = draw(st.integers(3, 40))
    mul = draw(st.integers(1, 7))
    add = draw(st.integers(0, 100))
    shift = draw(st.integers(0, 3))
    factor = draw(st.sampled_from([2, 3, 4, 8]))
    src = f"""
    unsigned int a[64];
    unsigned int total;
    int main(void) {{
        int i;
        unsigned int t = 0;
        for (i = 0; i < {n}; i++) {{
            a[i] = a[i] * {mul} + {add} + (unsigned int)(i >> {shift});
            t = t + a[i];
        }}
        total = t;
        return 0;
    }}
    """
    expected = []
    t = 0
    for i in range(n):
        v = (0 * mul + add + (i >> shift)) & M32
        expected.append(v)
        t = (t + v) & M32
    expected += [0] * (64 - n)
    return src, expected, t, factor


@settings(max_examples=20, deadline=None)
@given(array_loop_program())
def test_clustered_loops_preserve_semantics(case):
    src, expected, total, factor = case
    machine = Machine(iclang(src, "wario", unroll_factor=factor), war_check=True)
    machine.run()
    assert machine.war.clean
    assert machine.read_global("a", 64) == expected
    assert machine.read_global("total") == total


@settings(max_examples=10, deadline=None)
@given(array_loop_program())
def test_clustered_loops_never_increase_checkpoints(case):
    src, _expected, _total, factor = case
    base = Machine(iclang(src, "r-pdg"))
    base.run()
    clustered = Machine(iclang(src, "wario", unroll_factor=factor))
    clustered.run()
    assert clustered.stats.checkpoints <= base.stats.checkpoints


# ---------------------------------------------------------------------------
# stencil loops with loop-carried dependences (dependent-read forwarding)
# ---------------------------------------------------------------------------


@st.composite
def stencil_program(draw):
    n = draw(st.integers(5, 48))
    lag = draw(st.integers(1, 4))
    add = draw(st.integers(1, 50))
    src = f"""
    unsigned int c[64];
    int main(void) {{
        int i;
        c[0] = 1;
        for (i = {lag}; i < {n}; i++) {{
            c[i] = c[i - {lag}] + {add};
        }}
        return 0;
    }}
    """
    expected = [0] * 64
    expected[0] = 1
    for i in range(lag, n):
        expected[i] = (expected[i - lag] + add) & M32
    return src, expected


@settings(max_examples=20, deadline=None)
@given(stencil_program(), st.sampled_from([2, 4, 8]))
def test_stencil_forwarding_correct(case, factor):
    src, expected = case
    machine = Machine(iclang(src, "wario", unroll_factor=factor), war_check=True)
    machine.run()
    assert machine.war.clean
    assert machine.read_global("c", 64) == expected


# ---------------------------------------------------------------------------
# hitting set invariants
# ---------------------------------------------------------------------------


@st.composite
def requirement_sets(draw):
    universe = [("b", i) for i in range(12)]
    count = draw(st.integers(1, 8))
    reqs = []
    for _ in range(count):
        size = draw(st.integers(1, 5))
        reqs.append(draw(st.lists(st.sampled_from(universe), min_size=size, max_size=size)))
    return reqs


@settings(max_examples=100, deadline=None)
@given(requirement_sets())
def test_hitting_set_hits_everything(reqs):
    chosen = set(greedy_hitting_set(reqs))
    for req in reqs:
        assert chosen & set(req)


@settings(max_examples=100, deadline=None)
@given(requirement_sets())
def test_hitting_set_no_larger_than_requirements(reqs):
    chosen = greedy_hitting_set(reqs)
    assert len(chosen) <= len(reqs)
    assert len(set(chosen)) == len(chosen)  # no duplicates


# ---------------------------------------------------------------------------
# random switch dispatch programs
# ---------------------------------------------------------------------------


@st.composite
def switch_program(draw):
    n_cases = draw(st.integers(2, 6))
    values = draw(
        st.lists(st.integers(0, 20), min_size=n_cases, max_size=n_cases, unique=True)
    )
    increments = [draw(st.integers(1, 100)) for _ in range(n_cases)]
    has_default = draw(st.booleans())
    default_inc = draw(st.integers(1, 100))
    modulus = draw(st.integers(2, 23))
    cases_src = "\n".join(
        f"case {v}: acc = acc + {inc}; break;" for v, inc in zip(values, increments)
    )
    default_src = f"default: acc = acc + {default_inc}; break;" if has_default else ""
    src = f"""
    unsigned int acc_out;
    int main(void) {{
        int i; unsigned int acc = 0;
        for (i = 0; i < 60; i++) {{
            switch (i % {modulus}) {{
                {cases_src}
                {default_src}
            }}
        }}
        acc_out = acc;
        return 0;
    }}
    """
    expected = 0
    table = dict(zip(values, increments))
    for i in range(60):
        key = i % modulus
        if key in table:
            expected += table[key]
        elif has_default:
            expected += default_inc
    return src, expected & M32


@settings(max_examples=25, deadline=None)
@given(switch_program(), st.sampled_from(["plain", "wario"]))
def test_switch_programs_match_model(case, env):
    src, expected = case
    machine = Machine(iclang(src, env), war_check=(env != "plain"))
    machine.run()
    assert machine.read_global("acc_out") == expected
    if env != "plain":
        assert machine.war.clean


# ---------------------------------------------------------------------------
# random call graphs (non-recursive) over scalar state
# ---------------------------------------------------------------------------


@st.composite
def call_program(draw):
    n_funcs = draw(st.integers(1, 4))
    muls = [draw(st.integers(1, 9)) for _ in range(n_funcs)]
    adds = [draw(st.integers(0, 99)) for _ in range(n_funcs)]
    calls = draw(st.integers(2, 10))
    funcs = "\n".join(
        f"unsigned int f{i}(unsigned int x) {{ return x * {muls[i]} + {adds[i]}; }}"
        for i in range(n_funcs)
    )
    sequence = [draw(st.integers(0, n_funcs - 1)) for _ in range(calls)]
    body = "\n".join(f"v = f{idx}(v);" for idx in sequence)
    src = f"""
    unsigned int out;
    {funcs}
    int main(void) {{
        unsigned int v = 1;
        {body}
        out = v;
        return 0;
    }}
    """
    v = 1
    for idx in sequence:
        v = (v * muls[idx] + adds[idx]) & M32
    return src, v


@settings(max_examples=25, deadline=None)
@given(call_program(), st.sampled_from(["plain", "ratchet", "wario"]))
def test_call_programs_match_model(case, env):
    src, expected = case
    machine = Machine(iclang(src, env), war_check=(env != "plain"))
    machine.run()
    assert machine.read_global("out") == expected
    if env != "plain":
        assert machine.war.clean
