"""The parallel evaluation engine: deterministic merging, cell plumbing,
and fast-interpreter parity with the reference loop."""

import pytest

from repro import Machine
from repro.benchsuite import BENCHMARKS, compile_benchmark
from repro.emulator import FixedPeriodPower, trace_a, trace_b
from repro.eval import Cell, ExperimentRunner, cells_for, power_from_key
from repro.eval.figures import render_figure4, render_table1
from repro.eval.runner import default_jobs

PARITY_CELLS = [
    Cell(bench, env)
    for bench in ("crc", "sha")
    for env in ("plain", "ratchet", "wario")
] + [Cell("crc", "wario", 0, "fixed-50000"), Cell("crc", "wario", 0, "trace-a")]


# ---------------------------------------------------------------------------
# cell plumbing
# ---------------------------------------------------------------------------


def test_power_from_key_round_trips():
    assert power_from_key("continuous") is None
    assert power_from_key(None) is None
    assert power_from_key("fixed-50000").cycles == FixedPeriodPower(50_000).cycles
    assert power_from_key("trace-a").sample(5) == trace_a().sample(5)
    assert power_from_key("trace-b").sample(5) == trace_b().sample(5)
    with pytest.raises(ValueError):
        power_from_key("solar")


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1


def test_cells_for_deduplicates():
    cells = cells_for()
    assert len(cells) == len(set(cells))
    assert cells_for("fig4")[0] == Cell("coremark", "plain")


def test_war_check_distinguishes_runner_results():
    """Satellite: war_check is part of the result identity — two runners
    with different settings must not share results (regression: the old
    single-process memo keyed only on the cell)."""
    relaxed = ExperimentRunner(war_check=False, cache=False)
    checking = ExperimentRunner(war_check=True, cache=False)
    a = relaxed.run("crc", "wario")
    b = checking.run("crc", "wario")
    # same deterministic execution, but independently produced results
    assert a.stats.cycles == b.stats.cycles
    assert a is not b


def test_runner_compiles_each_cell_once():
    """Satellite: the result's program is the same object the emulator
    ran (no second compile behind the runner's back)."""
    runner = ExperimentRunner(cache=False)
    result = runner.run("crc", "wario")
    memoed = compile_benchmark(BENCHMARKS["crc"], "wario")
    assert result.program is memoed


# ---------------------------------------------------------------------------
# parallel == serial
# ---------------------------------------------------------------------------


def test_parallel_prefetch_matches_serial():
    serial = ExperimentRunner(jobs=1, cache=False)
    serial.prefetch(PARITY_CELLS)
    parallel = ExperimentRunner(jobs=4, cache=False)
    parallel.prefetch(PARITY_CELLS)
    for cell in PARITY_CELLS:
        s = serial.run(cell.bench, cell.env, cell.unroll or None,
                       power_key=cell.power_key)
        p = parallel.run(cell.bench, cell.env, cell.unroll or None,
                         power_key=cell.power_key)
        assert s.stats.instructions == p.stats.instructions, cell
        assert s.stats.cycles == p.stats.cycles, cell
        assert s.stats.checkpoints == p.stats.checkpoints, cell
        assert dict(s.stats.checkpoint_causes) == dict(p.stats.checkpoint_causes), cell
        assert s.stats.power_failures == p.stats.power_failures, cell
        assert s.program.text_size == p.program.text_size, cell


def test_parallel_figures_byte_identical():
    """The acceptance bar: rendered figures from a 4-worker run are
    byte-identical to a serial run."""
    cells = cells_for("fig4", "table1")
    serial = ExperimentRunner(jobs=1, cache=False)
    serial.prefetch(cells)
    parallel = ExperimentRunner(jobs=4, cache=False)
    parallel.prefetch(cells)
    assert render_figure4(serial) == render_figure4(parallel)
    assert render_table1(serial) == render_table1(parallel)


def test_prefetch_skips_already_done_cells():
    runner = ExperimentRunner(jobs=1, cache=False)
    runner.prefetch([Cell("crc", "plain")])
    first = runner.run("crc", "plain")
    runner.prefetch([Cell("crc", "plain")])
    assert runner.run("crc", "plain") is first


def test_run_cache_reuses_stats_across_runners(tmp_path):
    """Emulation results persist: a second runner on the same directory
    serves stats from disk without re-emulating."""
    from repro.benchsuite import clear_program_memo
    from repro.cache import CompileCache

    clear_program_memo()              # make the cold compile really cold
    cold = ExperimentRunner(cache=CompileCache(str(tmp_path)))
    first = cold.run("crc", "wario")
    clear_program_memo()              # force the warm path through the disk
    warm_store = CompileCache(str(tmp_path))
    warm = ExperimentRunner(cache=warm_store)
    second = warm.run("crc", "wario")
    assert second.stats.cycles == first.stats.cycles
    assert second.stats is not first.stats        # loaded, not shared
    assert warm_store.hits >= 2                    # program + run entries


# ---------------------------------------------------------------------------
# fast interpreter == reference interpreter
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
def test_fast_interpreter_matches_reference(bench_name):
    """The predecoded loop must be observationally identical to the
    original instruction-by-instruction loop on every benchmark."""
    bench = BENCHMARKS[bench_name]
    program = compile_benchmark(bench, "wario")
    fast = Machine(program, war_check=False, fast_interp=True)
    s1 = fast.run(max_instructions=bench.max_instructions)
    ref = Machine(program, war_check=False, fast_interp=False)
    s2 = ref.run(max_instructions=bench.max_instructions)
    assert s1.instructions == s2.instructions
    assert s1.cycles == s2.cycles
    assert s1.checkpoints == s2.checkpoints
    assert dict(s1.checkpoint_causes) == dict(s2.checkpoint_causes)
    assert s1.region_sizes == s2.region_sizes
    assert s1.call_counts == s2.call_counts
    assert fast.memory == ref.memory
    assert fast.regs == ref.regs


def test_fast_interpreter_matches_reference_under_power_failures():
    bench = BENCHMARKS["sha"]
    program = compile_benchmark(bench, "wario")
    runs = []
    for fast in (True, False):
        machine = Machine(program, war_check=False, fast_interp=fast)
        stats = machine.run(
            power=FixedPeriodPower(20_000),
            max_instructions=bench.max_instructions,
        )
        runs.append((stats.instructions, stats.cycles, stats.power_failures,
                     stats.reexecuted_cycles, stats.boot_cycles))
    assert runs[0] == runs[1]
    assert runs[0][2] > 0


def test_fast_interpreter_matches_reference_with_war_checking():
    bench = BENCHMARKS["crc"]
    program = compile_benchmark(bench, "wario")
    s1 = Machine(program, war_check=True, fast_interp=True).run()
    s2 = Machine(program, war_check=True, fast_interp=False).run()
    assert (s1.instructions, s1.cycles) == (s2.instructions, s2.cycles)
