"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Optional

from repro import Machine, iclang
from repro.emulator import PowerSupply


def compile_and_run(
    source: str,
    env: str = "plain",
    power: Optional[PowerSupply] = None,
    war_check: bool = False,
    unroll_factor: Optional[int] = None,
    max_instructions: int = 5_000_000,
):
    """Compile mini-C, run to completion, return the machine."""
    program = iclang(source, env, unroll_factor=unroll_factor)
    machine = Machine(program, war_check=war_check)
    machine.run(power=power, max_instructions=max_instructions)
    return machine


def run_main(source: str, env: str = "plain", **globals_spec) -> Dict[str, object]:
    """Compile + run and read back the requested globals.

    ``globals_spec`` maps a global name to either ``1`` (scalar) or a
    ``(count, size)`` tuple.
    """
    machine = compile_and_run(source, env)
    out = {}
    for name, spec in globals_spec.items():
        if spec == 1:
            out[name] = machine.read_global(name)
        else:
            count, size = spec
            out[name] = machine.read_global(name, count, size)
    return out


def expr_program(expression: str, declarations: str = "") -> str:
    """A program computing one integer expression into @result."""
    return f"""
    unsigned int result;
    {declarations}
    int main(void) {{
        result = (unsigned int)({expression});
        return 0;
    }}
    """


def eval_expr(expression: str, declarations: str = "", env: str = "plain") -> int:
    """Compile-and-run a single expression, returning @result."""
    machine = compile_and_run(expr_program(expression, declarations), env)
    return machine.read_global("result")


ALL_ENVIRONMENTS = (
    "plain",
    "ratchet",
    "r-pdg",
    "epilog-optimizer",
    "write-clusterer",
    "loop-write-clusterer",
    "wario",
    "wario-expander",
    "wario-summaries",
    "ratchet-summaries",
    "wario-opt",
    "ratchet-opt",
)

INSTRUMENTED = tuple(e for e in ALL_ENVIRONMENTS if e != "plain")
