"""Tests for the profile-guided Expander (§6 "Code Profiling",
implemented)."""

from repro import Machine, iclang
from repro.core import collect_call_profile, iclang_pgo, profile_guided_expand
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.instructions import Call
from repro.transforms import optimize_module

HOT_HELPER = """
unsigned int data[96]; unsigned int out;
void scale(unsigned int *p, int i) {
    p[i] = p[i] * 3 + 1;
    p[i] = p[i] ^ (p[i] >> 3);
    p[i] = p[i] + (p[i] & 0xFF);
    p[i] = p[i] * 5;
    p[i] = p[i] - (p[i] >> 7);
    p[i] = p[i] | 1;
    p[i] = p[i] + (p[i] % 13);
    p[i] = p[i] ^ 0x1234;
}
int main(void) {
    int r, i;
    for (r = 0; r < 2; r++) {
        for (i = 0; i < 96; i++) { scale(data, i); }
    }
    out = data[7];
    return 0;
}
"""


def test_profile_counts_calls():
    profile = collect_call_profile(HOT_HELPER)
    assert profile.get("scale") == 192


def test_profile_guided_expand_inlines_hot_candidates():
    module = compile_source(HOT_HELPER)
    optimize_module(module)
    calls_before = sum(
        1 for i in module.main.instructions() if isinstance(i, Call)
    )
    assert calls_before >= 1
    inlined = profile_guided_expand(module, {"scale": 192})
    assert inlined >= 1
    verify_module(module)


def test_cold_functions_left_alone():
    module = compile_source(HOT_HELPER)
    optimize_module(module)
    inlined = profile_guided_expand(module, {"scale": 1}, min_calls=100)
    assert inlined == 0


def test_pgo_build_correct_and_cheaper():
    base = Machine(iclang(HOT_HELPER, "wario"), war_check=True)
    base_stats = base.run()
    pgo = Machine(iclang_pgo(HOT_HELPER, "wario"), war_check=True)
    pgo_stats = pgo.run()
    assert pgo.read_global("out") == base.read_global("out")
    assert pgo.war.clean
    # the hot pointer helper is inlined: fewer forced call checkpoints
    assert pgo_stats.checkpoints < base_stats.checkpoints
    assert pgo_stats.cycles < base_stats.cycles


def test_pgo_on_call_free_program_is_noop_safe():
    src = """
    unsigned int out;
    int main(void) {
        int i; unsigned int s = 0;
        for (i = 0; i < 50; i++) { s += (unsigned int)i; }
        out = s;
        return 0;
    }
    """
    machine = Machine(iclang_pgo(src, "wario"), war_check=True)
    machine.run()
    assert machine.read_global("out") == sum(range(50))
    assert machine.war.clean
