"""Certificate-guided checkpoint elision (repro.core.checkpoint_elim +
repro.analysis.redundancy): elision counts and report shape, the
monotone fixpoint, dynamic executed-checkpoint reduction, certificate
auditing, the force_unsafe_elision seeding knob, and the shared
points-to solve the pipeline threads through inserter and eliser."""

from dataclasses import replace

import pytest

from repro.analysis.idempotence import CERTIFIED, VIOLATED
from repro.analysis.redundancy import (
    DEFAULT_ELISION_BUDGET,
    SUBPROOF_KINDS,
)
from repro.benchsuite import BENCHMARKS, get_benchmark
from repro.benchsuite.common import run_benchmark
from repro.core import environment
from repro.core.checkpoint_elim import (
    PLACEMENT_FORCED,
    PLACEMENT_UNSAFE,
    ElisionReport,
    audit_elisions,
    elide_redundant_checkpoints,
)
from repro.core.lint import lint_sources
from repro.core.pipeline import run_middle_end
from repro.frontend import compile_sources


def _middle_end(source, env, name="prog"):
    module = compile_sources([source], name)
    config = environment(env) if isinstance(env, str) else env
    run_middle_end(module, config)
    return module


@pytest.fixture(scope="module")
def sha_opt_module():
    """sha through the wario-opt middle end (shared: compiling it is the
    expensive part of this file)."""
    return _middle_end(BENCHMARKS["sha"].source, "wario-opt", name="sha")


class TestEnvironmentWiring:
    def test_opt_environments_enable_elision(self):
        for name in ("wario-opt", "ratchet-opt"):
            config = environment(name)
            assert config.checkpoint_elim, name
            assert config.call_summaries, name
            assert config.instrument, name

    def test_baselines_do_not_elide(self):
        for name in ("wario", "ratchet", "wario-summaries"):
            assert not environment(name).checkpoint_elim, name


class TestElisionReport:
    def test_sha_elides_at_least_one_checkpoint(self, sha_opt_module):
        report = sha_opt_module.elision_report
        assert report.elided >= 1
        assert report.examined >= report.elided
        assert len(report.certificates) == report.elided

    def test_all_certificates_fully_discharged(self, sha_opt_module):
        report = sha_opt_module.elision_report
        assert report.verdict == CERTIFIED
        for cert in report.certificates:
            assert not cert["forced"]
            assert cert["verdict"] == CERTIFIED
            kinds = [sub["kind"] for sub in cert["subproofs"]]
            assert kinds == list(SUBPROOF_KINDS)
            for sub in cert["subproofs"]:
                assert sub["status"] == "discharged"
                assert sub["discharged_by"]

    def test_budget_defaults_below_ci_machine_budget(self, sha_opt_module):
        # The elision budget must leave headroom for back-end expansion
        # under the 40k-cycle machine-level progress gate in CI.
        report = sha_opt_module.elision_report
        assert report.budget == DEFAULT_ELISION_BUDGET
        assert DEFAULT_ELISION_BUDGET < 40_000

    def test_report_to_dict_shape(self, sha_opt_module):
        payload = sha_opt_module.elision_report.to_dict()
        assert set(payload) == {
            "budget", "examined", "elided", "verdict", "certificates",
        }
        assert payload["elided"] == len(payload["certificates"])

    def test_second_pass_is_a_fixpoint(self, sha_opt_module):
        # Redundancy is monotonically lost, never gained: re-running the
        # pass on the already-elided module must elide nothing.
        config = environment("wario-opt")
        from repro.analysis.summaries import compute_summaries

        summaries = compute_summaries(
            sha_opt_module, alias_mode=config.alias_mode
        )
        second = elide_redundant_checkpoints(
            sha_opt_module, alias_mode=config.alias_mode, summaries=summaries
        )
        assert second.elided == 0
        assert second.examined >= 1  # surviving candidates re-checked


class TestDynamicReduction:
    @pytest.mark.parametrize("base_env,opt_env", [
        ("wario", "wario-opt"), ("ratchet", "ratchet-opt"),
    ])
    def test_fewer_executed_checkpoints_same_outputs(self, base_env, opt_env):
        bench = BENCHMARKS["sha"]
        # run_benchmark verifies outputs and dynamic WAR-cleanliness, so
        # the optimised build must stay correct, not just cheaper.
        _, base = run_benchmark(bench, base_env)
        _, opt = run_benchmark(bench, opt_env)
        assert opt.checkpoints < base.checkpoints

    def test_lint_full_certifies_and_reports_elisions(self):
        result = lint_sources(
            BENCHMARKS["sha"].source, "wario-opt", name="sha",
            cache=False, level="full", budget=40_000,
        )
        assert result.certified, result.engine.summary()
        assert result.placement, "elisions must surface as placement certs"
        assert result.progress_bound is not None
        assert result.progress_bound <= 40_000


class TestAudit:
    def _certificate(self, subproofs, forced=False):
        verdict = (
            CERTIFIED
            if all(s["status"] == "discharged" for s in subproofs)
            else VIOLATED
        )
        return {
            "function": "main",
            "checkpoint": {"block": "entry", "index": 3,
                           "cause": "middle-end-war"},
            "verdict": verdict,
            "forced": forced,
            "weight": 1.0,
            "subproofs": subproofs,
        }

    def test_undischarged_subproof_is_an_error(self):
        report = ElisionReport(budget=DEFAULT_ELISION_BUDGET, examined=1,
                               elided=1)
        report.certificates.append(self._certificate([
            {"kind": "placement-war", "status": "violated"},
            {"kind": "placement-idempotence", "status": "discharged"},
        ], forced=True))
        engine = audit_elisions(report)
        assert engine.has_errors
        assert any(d.code == PLACEMENT_UNSAFE for d in engine.diagnostics)
        assert report.verdict == VIOLATED

    def test_forced_but_provably_safe_is_only_a_warning(self):
        report = ElisionReport(budget=DEFAULT_ELISION_BUDGET, examined=1,
                               elided=1)
        report.certificates.append(self._certificate([
            {"kind": kind, "status": "discharged"}
            for kind in SUBPROOF_KINDS
        ], forced=True))
        engine = audit_elisions(report)
        assert not engine.has_errors
        assert any(d.code == PLACEMENT_FORCED for d in engine.diagnostics)
        assert report.verdict == CERTIFIED


class TestForceUnsafeElision:
    def test_seeded_elision_detected_statically(self):
        # xcall's live middle-end checkpoint (index 1) is provably
        # non-redundant; forcing it out must fail the certificate audit
        # AND the independent end-to-end re-certification.
        config = replace(
            environment("wario-opt"),
            name="wario-opt+force-unsafe-elision",
            force_unsafe_elision=1,
        )
        result = lint_sources(
            get_benchmark("xcall").source, config, name="xcall",
            cache=False, level="full",
        )
        assert not result.certified
        codes = {d.code for d in result.engine.diagnostics}
        assert PLACEMENT_UNSAFE in codes
        forced = [c for c in result.placement if c["forced"]]
        assert forced and forced[0]["verdict"] == VIOLATED
        assert any(
            sub["status"] == "violated" for sub in forced[0]["subproofs"]
        )

    def test_out_of_range_index_rejected(self):
        config = replace(environment("wario-opt"), force_unsafe_elision=999)
        module = compile_sources([get_benchmark("xcall").source], "xcall")
        with pytest.raises(ValueError, match="middle-end checkpoints"):
            run_middle_end(module, config)

    def test_force_requires_checkpoint_elim(self):
        config = replace(environment("wario"), force_unsafe_elision=0)
        module = compile_sources([get_benchmark("xcall").source], "xcall")
        with pytest.raises(ValueError, match="requires checkpoint_elim"):
            run_middle_end(module, config)


def test_points_to_solved_once_for_inserter_and_eliser(monkeypatch):
    """The pipeline computes one whole-program Andersen solve and
    threads it through both the checkpoint inserter and the elision
    pass (neither falls back to a private recompute)."""
    import repro.analysis.pointsto as pointsto

    calls = []
    real = pointsto.compute_points_to

    def counting(module, *a, **k):
        calls.append(module)
        return real(module, *a, **k)

    monkeypatch.setattr(pointsto, "compute_points_to", counting)
    # r-pdg has no clusterer passes (each of those legitimately re-solves
    # on the IR it just mutated), so the only expected solve is the one
    # the pipeline shares between insertion and elision.
    config = replace(
        environment("r-pdg"), name="r-pdg-elim",
        call_summaries=False, checkpoint_elim=True,
    )
    module = _middle_end(get_benchmark("xcall").source, config, name="xcall")
    assert getattr(module, "elision_report", None) is not None
    assert len(calls) == 1, (
        f"expected exactly one whole-program points-to solve, saw "
        f"{len(calls)}"
    )
